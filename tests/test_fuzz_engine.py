"""Property-based churn fuzzing of the compiled RBAC engine (PR 8).

Hypothesis drives arbitrary interleavings of grant/assign/revoke and
hierarchy edge addition/removal against a compiled policy, then asserts
the bitset engine, the retained set-based path, and the naive PR 5
:class:`RBACOracle` all agree on every decision surface — both at the
end of the interleaving and (PR 10) after EVERY single operation, while
the engine absorbs hierarchy edge changes as O(delta) cone updates
rather than closure rebuilds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy

_USERS = [f"u{i}" for i in range(6)]
_ROLES = [DomainRole("d", f"r{i}") for i in range(5)]
_OBJECTS = ["invoice", "queue"]
_PERMS = ["read", "write"]

_OPS = st.one_of(
    st.tuples(st.just("grant"), st.sampled_from(_ROLES),
              st.sampled_from(_OBJECTS), st.sampled_from(_PERMS)),
    st.tuples(st.just("revoke_grant"), st.sampled_from(_ROLES),
              st.sampled_from(_OBJECTS), st.sampled_from(_PERMS)),
    st.tuples(st.just("assign"), st.sampled_from(_USERS),
              st.sampled_from(_ROLES)),
    st.tuples(st.just("unassign"), st.sampled_from(_USERS),
              st.sampled_from(_ROLES)),
    st.tuples(st.just("revoke_user"), st.sampled_from(_USERS)),
    st.tuples(st.just("add_edge"), st.sampled_from(_ROLES),
              st.sampled_from(_ROLES)),
    st.tuples(st.just("remove_edge"), st.sampled_from(_ROLES),
              st.sampled_from(_ROLES)),
)


def _apply(policy: RBACPolicy, op: tuple) -> None:
    kind = op[0]
    if kind == "grant":
        policy.grant(op[1].domain, op[1].role, op[2], op[3])
    elif kind == "revoke_grant":
        policy.revoke_grant(op[1].domain, op[1].role, op[2], op[3])
    elif kind == "assign":
        policy.assign(op[1], op[2].domain, op[2].role)
    elif kind == "unassign":
        policy.unassign(op[1], op[2].domain, op[2].role)
    elif kind == "revoke_user":
        policy.revoke_user(op[1])
    elif kind == "add_edge":
        try:
            policy.hierarchy.add_inheritance(op[1], op[2])
        except HierarchyError:
            pass  # self-loop or cycle: legitimately rejected
    else:
        policy.hierarchy.remove_inheritance(op[1], op[2])


class TestEngineChurnProperties:
    @given(ops=st.lists(_OPS, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_three_way_agreement(self, ops):
        policy = RBACPolicy("fuzz", compiled=True)
        policy.check_access(_USERS[0], _OBJECTS[0], _PERMS[0])  # build early
        for op in ops:
            _apply(policy, op)
        oracle = RBACOracle.from_policy(policy)
        plain = policy.copy()
        plain.compiled = False
        requests = [(u, o, p)
                    for u in _USERS for o in _OBJECTS for p in _PERMS]
        batch = policy.check_access_many(requests)
        assert batch == plain.check_access_many(requests)
        assert batch == [oracle.check_access(u, o, p)
                         for u, o, p in requests]
        for user in _USERS:
            compiled_roles = {(dr.domain, dr.role)
                              for dr in policy.roles_of(user)}
            assert compiled_roles == oracle.roles_of(user)
        for obj in _OBJECTS:
            for perm in _PERMS:
                assert (policy.authorised_users(obj, perm)
                        == oracle.authorised_users(obj, perm)
                        == plain.authorised_users(obj, perm))
        stats = policy.engine_stats()
        assert stats is not None and stats["builds"] == 1

    @given(ops=st.lists(_OPS, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_rebuilt(self, ops):
        """A policy maintained by deltas answers like one rebuilt from
        scratch over the same final relations."""
        policy = RBACPolicy("fuzz", compiled=True)
        policy.check_access(_USERS[0], _OBJECTS[0], _PERMS[0])
        for op in ops:
            _apply(policy, op)
        rebuilt = RBACPolicy("rebuilt", hierarchy=policy.hierarchy.copy(),
                             compiled=True)
        for grant in policy.grants:
            rebuilt.add_grant(grant)
        for assignment in policy.assignments:
            rebuilt.add_assignment(assignment)
        for user in _USERS:
            assert policy.roles_of(user) == rebuilt.roles_of(user)
            for obj in _OBJECTS:
                for perm in _PERMS:
                    assert (policy.check_access(user, obj, perm)
                            == rebuilt.check_access(user, obj, perm))

    @given(ops=st.lists(_OPS, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_every_intermediate_state_agrees_without_rebuilds(self, ops):
        """The PR 10 incremental-maintenance property: after EVERY
        mutation — including hierarchy edge add/remove — the
        delta-maintained engine agrees with a from-scratch rebuild and
        with the naive oracle, and the whole interleaving is absorbed
        without a single closure rebuild (``hierarchy_rebuilds`` stays at
        its initial value; edge changes surface as ``edge_deltas``)."""
        policy = RBACPolicy("fuzz", compiled=True)
        policy.check_access(_USERS[0], _OBJECTS[0], _PERMS[0])  # build
        stats = policy.engine_stats()
        assert stats is not None
        rebuilds0 = stats["hierarchy_rebuilds"]
        requests = [(u, o, p)
                    for u in _USERS for o in _OBJECTS for p in _PERMS]
        for op in ops:
            _apply(policy, op)
            batch = policy.check_access_many(requests)
            rebuilt = RBACPolicy("rebuilt",
                                 hierarchy=policy.hierarchy.copy(),
                                 compiled=True)
            for grant in policy.grants:
                rebuilt.add_grant(grant)
            for assignment in policy.assignments:
                rebuilt.add_assignment(assignment)
            assert batch == rebuilt.check_access_many(requests)
            oracle = RBACOracle.from_policy(policy)
            assert batch == [oracle.check_access(u, o, p)
                             for u, o, p in requests]
        stats = policy.engine_stats()
        assert stats is not None
        assert stats["builds"] == 1
        assert stats["hierarchy_rebuilds"] == rebuilds0

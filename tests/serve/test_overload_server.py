"""Overload behaviour of the daemon itself: admission refusals on the
wire, deadline propagation, brownout tiers, the bounded reply cache and
the reaper's interaction with in-flight work.

Real loopback sockets; planes run on the simulated clock wherever timing
matters, so every deadline and hysteresis assertion is exact.
"""

import asyncio

import pytest

from repro.serve.admission import AdmissionController, BrownoutController
from repro.serve.client import ServeCallError, ServeClient
from repro.serve.plane import ServePolicyPlane
from repro.serve.server import ReproServer
from repro.util.clock import SimulatedClock

MEDIATE = {"user": "alice", "user_key": "Kuser", "object_type": "graph",
           "operation": "run", "attributes": {"app_domain": "WebCom"}}


def _plane(clock=None, **kwargs):
    plane = ServePolicyPlane(clock=clock, **kwargs)
    plane.keystore.create("KWebCom")
    plane.keystore.create("Kuser")
    plane.session.add_policy(
        'Authorizer: POLICY\nLicensees: "Kuser"\n'
        'Conditions: app_domain=="WebCom" && op=="run";')
    return plane


async def _boot(plane, **server_kwargs):
    server = await ReproServer(plane, **server_kwargs).start()
    client = await ServeClient("t").connect(server.host, server.port)
    return server, client


def _escalate(server, level):
    """Feed sustained synthetic pressure until the brownout reaches
    ``level`` (simulated clock only)."""
    brownout = server.admission.brownout
    clock = brownout.clock
    while brownout.level < level:
        for _ in range(10):
            brownout.record(shed=True, utilization=1.0)
        clock.advance(0.2)
        brownout.poll()


class TestAdmissionOnTheWire:
    def test_overloaded_mediate_is_refused_but_control_is_not(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            admission = AdmissionController(clock=clock, max_inflight=0)
            server, client = await _boot(plane, admission=admission)
            outcomes = {}
            try:
                await client.call("mediate", MEDIATE)
            except ServeCallError as exc:
                outcomes["error_type"] = exc.error_type
                outcomes["retry_after"] = exc.retry_after
                outcomes["retryable"] = exc.retryable
            outcomes["ping"] = (await client.call("ping"))["pong"]
            status = await client.call("status")
            outcomes["shed"] = status["admission"]["shed"]
            await client.close()
            await server.shutdown()
            return outcomes

        outcomes = asyncio.run(scenario())
        assert outcomes["error_type"] == "OverloadedError"
        assert outcomes["retry_after"] > 0
        assert outcomes["retryable"]
        assert outcomes["ping"] is True  # CONTROL rides through
        assert outcomes["shed"]["overloaded"] == 1
        assert outcomes["shed"]["by_priority"]["control"] == 0

    def test_rate_limited_peer_gets_hint_and_other_peer_rides(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            admission = AdmissionController(clock=clock, max_inflight=16,
                                            peer_rate=1.0, peer_burst=1.0)
            server, client = await _boot(plane, admission=admission)
            other = await ServeClient("o").connect(server.host, server.port)
            first = await client.call("mediate", MEDIATE)
            with pytest.raises(ServeCallError) as excinfo:
                await client.call("mediate", MEDIATE)
            fresh_peer = await other.call("mediate", MEDIATE)
            await client.close()
            await other.close()
            await server.shutdown()
            return first, excinfo.value, fresh_peer

        first, error, fresh_peer = asyncio.run(scenario())
        assert first["allowed"] and fresh_peer["allowed"]
        assert error.error_type == "RateLimitedError"
        assert error.retry_after == pytest.approx(1.0)

    def test_refusals_are_not_cached_for_replay(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            admission = AdmissionController(clock=clock, max_inflight=16,
                                            peer_rate=1.0, peer_burst=1.0)
            server, client = await _boot(plane, admission=admission)
            await client.call("mediate", MEDIATE)
            request_id = client.next_request_id()
            refused = None
            try:
                await client.call("mediate", MEDIATE,
                                  request_id=request_id)
            except ServeCallError as exc:
                refused = exc.error_type
            # The bucket refills; the *same id* must be re-admitted and
            # executed, not replayed from the reply cache as a refusal.
            clock.advance(2.0)
            retried = await client.call("mediate", MEDIATE,
                                        request_id=request_id)
            duplicates = server.duplicates_served
            await client.close()
            await server.shutdown()
            return refused, retried, duplicates

        refused, retried, duplicates = asyncio.run(scenario())
        assert refused == "RateLimitedError"
        assert retried["allowed"]
        assert duplicates == 0


class TestDeadlinePropagation:
    def test_expired_deadline_is_dropped_before_dispatch(self):
        async def scenario():
            clock = SimulatedClock(start=100.0)
            plane = _plane(clock=clock)
            server, client = await _boot(plane)
            mediations_before = plane.mediations
            with pytest.raises(ServeCallError) as excinfo:
                await client.call("mediate", MEDIATE, deadline=99.0)
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return (excinfo.value, plane.mediations - mediations_before,
                    status["deadlines"])

        error, mediations, deadlines = asyncio.run(scenario())
        assert error.error_type == "DeadlineExceededError"
        assert mediations == 0  # never dispatched
        assert deadlines["expired_pre_dispatch"] == 1
        assert deadlines["expired_before_write"] == 0

    def test_deadline_passing_mid_dispatch_refuses_but_caches_result(self):
        async def scenario():
            clock = SimulatedClock(start=0.0)
            plane = _plane(clock=clock)
            server, client = await _boot(plane)
            # A handler that takes 10 simulated seconds to run.
            server._methods["slow"] = (
                lambda peer, p: {"done": clock.advance(10.0) > 0})
            request_id = client.next_request_id()
            refused = None
            try:
                await client.call("slow", {}, request_id=request_id,
                                  deadline=5.0)
            except ServeCallError as exc:
                refused = exc.error_type
            # An idempotent retry under the same id replays the *real*
            # recorded response — the work was done, only its first
            # delivery was refused.
            replay = await client.call("slow", {}, request_id=request_id)
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return refused, replay, status["deadlines"]

        refused, replay, deadlines = asyncio.run(scenario())
        assert refused == "DeadlineExceededError"
        assert replay == {"done": True}
        assert deadlines["expired_before_write"] == 1
        assert deadlines["expired_pre_dispatch"] == 0

    def test_fresh_deadline_is_honoured(self):
        async def scenario():
            clock = SimulatedClock(start=100.0)
            plane = _plane(clock=clock)
            server, client = await _boot(plane)
            result = await client.call("mediate", MEDIATE, deadline=200.0)
            await client.close()
            await server.shutdown()
            return result

        assert asyncio.run(scenario())["allowed"]


class TestBrownoutOnTheServer:
    def test_tier1_sheds_decision_broadcasts_counted(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            admission = AdmissionController(
                clock=clock, max_inflight=64,
                brownout=BrownoutController(clock=clock, window=1.0,
                                            sustain=0.5, cool=1.0))
            server, client = await _boot(plane, admission=admission)
            observer = await ServeClient("obs").connect(server.host,
                                                        server.port)
            await observer.subscribe("decision", "server")
            before = await client.call("mediate", MEDIATE)
            decision_event = await observer.next_event(timeout=5.0)
            _escalate(server, 1)
            await client.call("mediate",
                              {**MEDIATE, "attributes":
                               {"app_domain": "WebCom", "n": "2"}})
            # The brownout transition itself is announced on "server".
            server_event = await observer.next_event(timeout=5.0)
            status = await client.call("status")
            await client.close()
            await observer.close()
            await server.shutdown()
            return before, decision_event, server_event, status

        before, decision_event, server_event, status = asyncio.run(scenario())
        assert before["allowed"]
        assert decision_event["event"] == "decision"
        assert server_event["event"] == "server"
        assert server_event["data"]["state"] == "brownout"
        assert server_event["data"]["to_level"] == 1
        assert status["events_shed"] >= 1
        assert status["brownout"]["level"] == 1

    def test_tier2_serves_ttl_stale_decisions_with_disclosure(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock, cache_ttl=1.0)
            admission = AdmissionController(
                clock=clock, max_inflight=64,
                brownout=BrownoutController(clock=clock, window=1.0,
                                            sustain=0.5, cool=1.0,
                                            stale_ttl=60.0))
            server, client = await _boot(plane, admission=admission)
            fresh = await client.call("mediate", MEDIATE)
            clock.advance(5.0)  # the cached decision is now past its TTL
            _escalate(server, 2)
            stale = await client.call("mediate", MEDIATE)
            # Probes never take the stale path: the oracle comparison
            # stays honest under brownout.
            probe = await client.call("probe", MEDIATE)
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return fresh, stale, probe, status

        fresh, stale, probe, status = asyncio.run(scenario())
        assert fresh["allowed"] and not fresh["stale"]
        assert stale["allowed"] and stale["stale"]  # disclosed, never silent
        assert probe["agree"] and not probe["stale"]
        assert status["plane"]["stale_mediations"] == 1

    def test_tier3_sheds_bulk_but_not_data(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            admission = AdmissionController(
                clock=clock, max_inflight=64,
                brownout=BrownoutController(clock=clock, window=1.0,
                                            sustain=0.5, cool=1.0))
            server, client = await _boot(plane, admission=admission)
            _escalate(server, 3)
            bulk_error = None
            try:
                await client.call("spans", {"correlation_id": "corr-1"})
            except ServeCallError as exc:
                bulk_error = exc
            data = await client.call("mediate", MEDIATE)
            await client.close()
            await server.shutdown()
            return bulk_error, data

        bulk_error, data = asyncio.run(scenario())
        assert bulk_error is not None
        assert bulk_error.error_type == "OverloadedError"
        assert bulk_error.retry_after > 0
        assert data["allowed"]  # DATA still served at tier 3


class TestReplyCacheBound:
    def test_lru_eviction_keeps_recent_ids_replayable(self):
        async def scenario():
            plane = _plane(clock=SimulatedClock())
            server, client = await _boot(plane, reply_cache_limit=3)
            ids = [client.next_request_id() for _ in range(4)]
            for request_id in ids:
                await client.call("ping", {}, request_id=request_id)
            # The three newest ids replay from the cache...
            for request_id in ids[1:]:
                await client.call("ping", {}, request_id=request_id)
            replayed = server.duplicates_served
            # ...but the evicted oldest id is re-executed, not replayed.
            await client.call("ping", {}, request_id=ids[0])
            replayed_after_evicted = server.duplicates_served
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return replayed, replayed_after_evicted, status["reply_cache"]

        replayed, after, cache = asyncio.run(scenario())
        assert replayed == 3
        assert after == 3  # the evicted id was handled fresh
        assert cache["limit"] == 3
        assert cache["evictions"] >= 2
        assert cache["entries"] <= 3

    def test_reply_cache_limit_validated(self):
        with pytest.raises(Exception):
            ReproServer(_plane(clock=SimulatedClock()), reply_cache_limit=0)


class TestReaperVersusInflight:
    def test_dead_marked_peer_still_gets_responses(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            server, client = await _boot(plane, heartbeat_timeout=1.0,
                                         max_missed=2)
            await client.hello()
            # Silence long past the allowed windows: the reaper marks the
            # peer dead...
            clock.advance(10.0)
            reaped = server.reap_once()
            dead = {p.peer_id: p.alive for p in server.registry.values()}
            # ...but an in-flight request from that very peer must still
            # be answered (a response, never a torn socket), and answering
            # proves liveness again.
            result = await client.call("mediate", MEDIATE)
            alive = {p.peer_id: p.alive for p in server.registry.values()}
            await client.close()
            await server.shutdown()
            return reaped, dead, result, alive

        reaped, dead, result, alive = asyncio.run(scenario())
        assert len(reaped) == 1
        assert dead[reaped[0]] is False
        assert result["allowed"]
        assert alive[reaped[0]] is True

    def test_reconnect_does_not_resurrect_old_reply_cache(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            server = await ReproServer(plane).start()
            first = await ServeClient("t").connect(server.host, server.port)
            await first.call("ping", {}, request_id="shared-id")
            await first.close()
            await asyncio.sleep(0.05)  # let the disconnect finalise
            stale_caches = len(server._replies)
            # A new connection re-using the same request id is a *new*
            # request for a new peer — the old peer's cache (and its
            # admission bucket) died with its connection.
            second = await ServeClient("t").connect(server.host, server.port)
            await second.call("ping", {}, request_id="shared-id")
            duplicates = server.duplicates_served
            await second.close()
            await server.shutdown()
            return stale_caches, duplicates

        stale_caches, duplicates = asyncio.run(scenario())
        assert stale_caches == 0
        assert duplicates == 0

"""The serve daemon: registry, dispatch, dedup, pub/sub, drain, liveness.

Tests drive a real asyncio server over real loopback sockets (the harness
has no pytest-asyncio; each test wraps its scenario in ``asyncio.run``).
"""

import asyncio

import pytest

from repro.errors import AlreadyRunningError
from repro.keynote.credential import Credential
from repro.serve.client import ServeCallError, ServeClient
from repro.serve.plane import ServePolicyPlane
from repro.serve.server import ReproServer
from repro.store.durable import DurablePolicyNode
from repro.middleware.corba import CorbaOrb
from repro.translate.to_keynote import membership_conditions
from repro.util.clock import SimulatedClock

TRUST_ROOT = ('Authorizer: POLICY\nLicensees: "KWebCom"\n'
              'Conditions: app_domain=="WebCom";')


def _plane(**kwargs):
    plane = ServePolicyPlane(**kwargs)
    plane.keystore.create("KWebCom")
    plane.keystore.create("Kuser")
    return plane


def _grant(plane, operations=("run",)):
    plane.session.add_policy(
        'Authorizer: POLICY\nLicensees: "Kuser"\n'
        'Conditions: app_domain=="WebCom" && ('
        + " || ".join(f'op=="{op}"' for op in operations) + ');')


MEDIATE = {"user": "alice", "user_key": "Kuser", "object_type": "graph",
           "operation": "run", "attributes": {"app_domain": "WebCom"}}


async def _boot(plane, **server_kwargs):
    server = await ReproServer(plane, **server_kwargs).start()
    client = await ServeClient("t").connect(server.host, server.port)
    return server, client


class TestServerCore:
    def test_hello_registers_and_status_reports(self):
        async def scenario():
            server, client = await _boot(_plane())
            hello = await client.hello(role="tester")
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return hello, status

        hello, status = asyncio.run(scenario())
        assert hello["protocol_version"] == 1
        assert hello["timescale"] == "wall"
        peers = {p["name"]: p for p in status["peers"]}
        assert peers["t"]["role"] == "tester"
        assert status["plane"]["durable"] is False

    def test_mediate_allows_and_denies_per_policy(self):
        async def scenario():
            plane = _plane()
            _grant(plane)
            server, client = await _boot(plane)
            allowed = await client.call("mediate", MEDIATE)
            denied = await client.call("mediate",
                                       {**MEDIATE, "operation": "drop"})
            await client.close()
            await server.shutdown()
            return allowed, denied

        allowed, denied = asyncio.run(scenario())
        assert allowed["allowed"] and not denied["allowed"]
        assert denied["denied_by"] == "TRUST_MANAGEMENT"
        assert allowed["correlation_id"]

    def test_probe_agrees_with_oracle_both_ways(self):
        async def scenario():
            plane = _plane()
            _grant(plane)
            server, client = await _boot(plane)
            results = [await client.call("probe", MEDIATE),
                       await client.call("probe",
                                         {**MEDIATE, "operation": "drop"})]
            await client.close()
            await server.shutdown()
            return results

        allow, deny = asyncio.run(scenario())
        assert allow["agree"] and allow["allowed"] and allow["oracle_allowed"]
        assert deny["agree"] and not deny["allowed"] \
            and not deny["oracle_allowed"]

    def test_malformed_and_unknown_requests_get_error_responses(self):
        async def scenario():
            server, client = await _boot(_plane())
            outcomes = {}
            try:
                await client.call("frobnicate")
            except ServeCallError as exc:
                outcomes["unknown"] = exc.error_type
            try:
                await client.call("mediate", {"user": "alice"})
            except ServeCallError as exc:
                outcomes["missing"] = exc.error_type
            # The connection survived both errors.
            outcomes["alive"] = (await client.call("ping"))["pong"]
            await client.close()
            await server.shutdown()
            return outcomes

        outcomes = asyncio.run(scenario())
        assert outcomes["unknown"] == "ProtocolError"
        assert outcomes["missing"] == "ServeError"
        assert outcomes["alive"] is True

    def test_decision_events_carry_span_trees(self):
        async def scenario():
            plane = _plane()
            _grant(plane)
            server, client = await _boot(plane)
            observer = await ServeClient("obs").connect(server.host,
                                                        server.port)
            await observer.hello(role="observer")
            await observer.subscribe("decision")
            await client.call("mediate", MEDIATE)
            event = await observer.next_event()
            await observer.close()
            await client.close()
            await server.shutdown()
            return event

        event = asyncio.run(scenario())
        assert event["event"] == "decision"
        assert event["data"]["allowed"] is True
        names = {span["name"] for span in event["data"]["spans"]}
        assert "stack.mediate" in names
        assert any(name.startswith("stack.layer.") for name in names)


class TestSelectiveInvalidationOverTheWire:
    def test_unrelated_revocation_keeps_warm_mediations(self, monkeypatch):
        """PR 10, over the serve plane: revoking one principal's credential
        invalidates exactly that principal's warm mediation entry; other
        clients keep their cache hits (counted as ``survived_churn``) and
        nobody is ever served a stale ALLOW."""
        # The property under test is the selective path — pin the mode on
        # even when the suite runs under the generation-flush ablation.
        monkeypatch.setenv("REPRO_INCREMENTAL_INVALIDATION", "1")

        async def scenario():
            plane = _plane(cache_ttl=60.0)
            plane.keystore.create("Kother")
            plane.session.add_policy(TRUST_ROOT)
            signer = plane.keystore.pair("KWebCom").private
            # Bob's credential first: his fixpoint short-circuits at max
            # before reading Alice's, so her revocation is outside his cone.
            plane.session.add_credential(Credential.build(
                "KWebCom", '"Kother"',
                'app_domain=="WebCom" && op=="run"').sign(signer))
            alice_cred = Credential.build(
                "KWebCom", '"Kuser"',
                'app_domain=="WebCom" && op=="run"').sign(signer)
            plane.session.add_credential(alice_cred)
            server, client = await _boot(plane)
            bob = {**MEDIATE, "user": "bob", "user_key": "Kother"}
            first_bob = await client.call("mediate", bob)
            first_alice = await client.call("mediate", MEDIATE)
            revoked = await client.call("revoke",
                                        {"text": alice_cred.to_text()})
            warm_bob = await client.call("mediate", bob)
            cold_alice = await client.call("mediate", MEDIATE)
            status = await client.call("status")
            await client.close()
            await server.shutdown()
            return (first_bob, first_alice, revoked, warm_bob, cold_alice,
                    status)

        (first_bob, first_alice, revoked, warm_bob, cold_alice,
         status) = asyncio.run(scenario())
        assert first_bob["allowed"] and first_alice["allowed"]
        assert revoked["revoked"]
        assert warm_bob["allowed"]
        assert not cold_alice["allowed"]
        assert cold_alice["denied_by"] == "TRUST_MANAGEMENT"
        cache = status["plane"]["cache"]
        assert cache["survived_churn"] >= 1   # Bob's entry outlived the churn
        assert cache["invalidated"] >= 1      # Alice's did not
        tm_cache = status["plane"]["tm_cache"]
        assert tm_cache["incremental"] == 1
        assert tm_cache["selective_evictions"] >= 1
        assert tm_cache["full_flushes"] == 0


class TestRequestIdDedup:
    def test_duplicate_update_is_replayed_not_reapplied(self):
        async def scenario():
            plane = _plane()
            plane.session.add_policy(TRUST_ROOT)
            membership = Credential.build(
                "KWebCom", '"Kuser"',
                membership_conditions(plane.middleware.domain, "Clerk"),
            ).sign(plane.keystore.pair("KWebCom").private)
            server, client = await _boot(plane)
            params = {"user": "alice", "user_key": "Kuser",
                      "domain": plane.middleware.domain, "role": "Clerk",
                      "credentials": [membership.to_text()],
                      "request_id": "install-1"}
            first = await client.call("update", params,
                                      request_id="wire-1")
            # The retry reuses the *wire* id: the server must replay the
            # recorded response without re-executing the handler.
            second = await client.call("update", params,
                                       request_id="wire-1")
            await client.close()
            await server.shutdown()
            return first, second, server, plane

        first, second, server, plane = asyncio.run(scenario())
        assert first == second
        assert server.duplicates_served == 1
        assert len(plane.keycom.processed) == 1

    def test_application_level_request_id_also_dedups(self):
        async def scenario():
            plane = _plane()
            plane.session.add_policy(TRUST_ROOT)
            membership = Credential.build(
                "KWebCom", '"Kuser"',
                membership_conditions(plane.middleware.domain, "Clerk"),
            ).sign(plane.keystore.pair("KWebCom").private)
            server, client = await _boot(plane)
            params = {"user": "alice", "user_key": "Kuser",
                      "domain": plane.middleware.domain, "role": "Clerk",
                      "credentials": [membership.to_text()],
                      "request_id": "install-1"}
            # Distinct wire ids (a reconnecting client), same KeyCom
            # request id: the service's idempotency layer catches it.
            first = await client.call("update", params)
            second = await client.call("update", params)
            await client.close()
            await server.shutdown()
            return first, second, plane

        first, second, plane = asyncio.run(scenario())
        assert first["applied"] and second["applied"]
        assert not first["duplicate"] and second["duplicate"]
        assert plane.keycom.duplicates == 1


class TestDurabilityAndDrain:
    def test_shutdown_drains_and_flushes_the_wal(self, tmp_path):
        async def scenario():
            plane = _plane(root=tmp_path)
            _grant(plane)
            server, client = await _boot(plane)
            await client.call("add_credential", {"text": Credential.build(
                "Kuser", '"Kuser"', "false").sign(
                    plane.keystore.pair("Kuser").private).to_text()})
            await client.call("mediate", MEDIATE)
            ack = await client.call("shutdown", {"reason": "test"})
            report = await server.serve_until_shutdown()
            await client.close()
            return ack, report

        ack, report = asyncio.run(scenario())
        assert ack["draining"] is True
        assert report["wal_flushed"] is True
        assert report["inflight_after_drain"] == 0
        assert report["snapshot"]
        # The daemon's acknowledged trust state survives a restart.
        node = DurablePolicyNode.recover(
            tmp_path, keycom_middleware=CorbaOrb("serve", "orb"),
            verify_signatures=False)
        try:
            assert len(node.session.policies) == 1
            assert len(node.session.credentials) == 1
        finally:
            node.close()

    def test_draining_server_refuses_new_work(self):
        async def scenario():
            plane = _plane()
            _grant(plane)
            server, client = await _boot(plane)
            server.draining = True
            try:
                await client.call("mediate", MEDIATE)
                refused = None
            except ServeCallError as exc:
                refused = str(exc)
            status = await client.call("status")
            await client.close()
            server.draining = False
            await server.shutdown()
            return refused, status

        refused, status = asyncio.run(scenario())
        assert refused is not None and "draining" in refused
        assert status["draining"] is True

    def test_pidfile_blocks_a_second_daemon(self, tmp_path):
        pidfile = tmp_path / "serve.pid"
        pidfile.write_text("1\n")  # PID 1: alive, not us

        async def scenario():
            server = ReproServer(_plane(), pidfile=str(pidfile))
            with pytest.raises(AlreadyRunningError):
                await server.start()

        asyncio.run(scenario())


class TestLiveness:
    def test_simulated_clock_plane_heartbeats_at_simulated_scale(self):
        async def scenario():
            clock = SimulatedClock()
            plane = _plane(clock=clock)
            server, client = await _boot(plane)
            await client.hello()
            # Defaults resolved from the simulated clock's schedule.
            assert server.heartbeat_interval == 15.0
            assert server.heartbeat_timeout == 5.0
            peer = next(iter(server.registry.values()))
            assert peer.alive
            # Silence past timeout x max_missed: the reaper marks it dead.
            clock.advance(16.0)
            reaped = server.reap_once()
            assert reaped == [peer.peer_id]
            assert not peer.alive
            # Any request revives it.
            await client.call("ping")
            assert peer.alive
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_wall_clock_plane_resolves_subsecond_defaults(self):
        async def scenario():
            server, client = await _boot(_plane())
            hello = await client.hello()
            await client.close()
            await server.shutdown()
            return hello, server

        hello, server = asyncio.run(scenario())
        assert server.heartbeat_interval == 5.0
        assert server.heartbeat_timeout == 1.0
        assert hello["heartbeat_interval"] == 5.0


class TestTranslateApi:
    def test_translate_comprehends_credentials_over_the_wire(self):
        async def scenario():
            plane = _plane()
            membership = Credential.build(
                "KWebCom", '"Kuser"',
                membership_conditions("Payroll", "Clerk"),
            ).sign(plane.keystore.pair("KWebCom").private)
            server, client = await _boot(plane)
            result = await client.call(
                "translate", {"credentials": [membership.to_text()]})
            await client.close()
            await server.shutdown()
            return result

        result = asyncio.run(scenario())
        assert result["assignments"] == 1
        assert result["policy"]["user_assignment"]

"""The NDJSON wire protocol: framing, shapes, malformed-frame rejection."""

import json

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    classify,
    decode_frame,
    encode_frame,
    error_response,
    make_event,
    make_request,
    ok_response,
    refusal_response,
)


class TestFraming:
    def test_round_trip(self):
        message = make_request("c-1", "mediate", {"user": "alice"})
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message

    def test_frames_are_single_lines(self):
        data = encode_frame(make_event("decision", {"allowed": True}))
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_deterministic_encoding(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_oversized_frame_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * MAX_LINE_BYTES})
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_LINE_BYTES + 1))

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json at all")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(json.dumps([1, 2, 3]).encode())


class TestShapes:
    def test_classify_the_three_shapes(self):
        assert classify(make_request("r-1", "ping")) == "request"
        assert classify(ok_response("r-1", {})) == "response"
        assert classify(error_response("r-1", "ServeError", "no")) \
            == "response"
        assert classify(make_event("server", {})) == "event"

    def test_request_needs_nonempty_id(self):
        with pytest.raises(ProtocolError):
            classify({"id": "", "method": "ping"})
        with pytest.raises(ProtocolError):
            classify({"id": 7, "method": "ping"})

    def test_request_params_must_be_object(self):
        with pytest.raises(ProtocolError):
            classify({"id": "r-1", "method": "ping", "params": [1]})

    def test_unclassifiable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            classify({"hello": "world"})

    def test_error_response_carries_the_type(self):
        response = error_response("r-9", "KeyComError", "denied")
        assert response["error"]["type"] == "KeyComError"
        assert not response["ok"]


class TestDeadlines:
    def test_deadline_travels_on_the_request(self):
        message = make_request("r-1", "mediate", {"user": "a"},
                               deadline=123.5)
        assert message["deadline"] == 123.5
        assert classify(message) == "request"
        # No deadline, no field — old peers see the old wire format.
        assert "deadline" not in make_request("r-2", "ping")

    def test_deadline_must_be_a_real_number(self):
        with pytest.raises(ProtocolError):
            classify({"id": "r-1", "method": "ping", "deadline": "soon"})
        with pytest.raises(ProtocolError):
            classify({"id": "r-1", "method": "ping", "deadline": True})


class TestRefusals:
    def test_refusal_is_an_error_response_with_backoff_hint(self):
        response = refusal_response("r-3", "OverloadedError", "shed",
                                    retry_after=0.123456789,
                                    kind="overloaded")
        assert classify(response) == "response"
        assert not response["ok"]
        assert response["error"]["type"] == "OverloadedError"
        assert response["error"]["retry_after"] == 0.123457  # rounded
        assert response["error"]["kind"] == "overloaded"

    def test_refusal_detail_merges_and_hint_is_optional(self):
        response = refusal_response("r-4", "DeadlineExceededError",
                                    "too late", phase="pre_dispatch")
        assert "retry_after" not in response["error"]
        assert response["error"]["phase"] == "pre_dispatch"

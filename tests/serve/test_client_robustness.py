"""Client-side robustness: the bounded event queue, surfaced decode
failures, and the budgeted retry loop — all against a scripted fake
server so every hostile frame is exact."""

import asyncio
import json

import pytest

import repro.serve.client as client_module
from repro.errors import ServeError
from repro.serve.admission import RetryBudget
from repro.serve.client import ServeCallError, ServeClient


def _ok(request, result=None):
    return (json.dumps({"id": request["id"], "ok": True,
                        "result": result if result is not None
                        else {"pong": True}}) + "\n").encode()


def _refusal(request, error_type="OverloadedError", retry_after=0.7):
    return (json.dumps({"id": request["id"], "ok": False,
                        "error": {"type": error_type,
                                  "message": "shed",
                                  "retry_after": retry_after,
                                  "kind": "overloaded"}}) + "\n").encode()


class _ScriptedServer:
    """A wire-level stand-in: replies come from a scriptable responder,
    so tests can send exactly the broken frames they want."""

    def __init__(self, responder=None):
        self.responder = responder or _ok
        self.received = []
        self._writer = None
        self._ready = asyncio.Event()

    async def start(self):
        self._server = await asyncio.start_server(self._handle,
                                                  "127.0.0.1", 0)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def _handle(self, reader, writer):
        self._writer = writer
        self._ready.set()
        while True:
            line = await reader.readline()
            if not line:
                break
            request = json.loads(line)
            self.received.append(request)
            reply = self.responder(request)
            if reply is not None:
                writer.write(reply)
                await writer.drain()

    async def push(self, raw: bytes):
        """Write an unsolicited frame (events, garbage) to the client."""
        await self._ready.wait()
        self._writer.write(raw)
        await self._writer.drain()

    async def close(self):
        self._server.close()
        await self._server.wait_closed()


async def _settle():
    """Give the client's reader task a few loop turns to drain frames."""
    for _ in range(5):
        await asyncio.sleep(0)


class TestBoundedEventQueue:
    def test_drop_oldest_beyond_the_bound(self):
        async def scenario():
            server = await _ScriptedServer().start()
            client = await ServeClient("t", event_limit=3).connect(
                server.host, server.port)
            for n in range(5):
                await server.push(
                    (json.dumps({"event": "decision",
                                 "data": {"n": n}}) + "\n").encode())
            await _settle()
            kept = [client.events.get_nowait()["data"]["n"]
                    for _ in range(client.events.qsize())]
            dropped = client.events_dropped
            await client.close()
            await server.close()
            return kept, dropped

        kept, dropped = asyncio.run(scenario())
        assert kept == [2, 3, 4]  # newest survive; oldest were dropped
        assert dropped == 2

    def test_event_limit_validated(self):
        with pytest.raises(ServeError):
            ServeClient("t", event_limit=0)


class TestDecodeFailureSurfacing:
    def test_classify_failure_fails_the_matching_pending_call_fast(self):
        async def scenario():
            # A frame that *parses* but is neither request, response nor
            # event — the reader must fail the waiting caller now, not
            # leave it to a timeout.
            server = await _ScriptedServer(
                responder=lambda req: (json.dumps({"id": req["id"]})
                                       + "\n").encode()).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            error = None
            try:
                await client.call("ping", {}, timeout=5.0)
            except ServeError as exc:
                error = exc
            failures = client.decode_failures
            await client.close()
            await server.close()
            return error, failures

        error, failures = asyncio.run(scenario())
        assert error is not None and "malformed" in str(error)
        assert failures == 1

    def test_undecodable_frame_with_recoverable_id_fails_the_call(self):
        async def scenario():
            # Invalid UTF-8 inside the frame: decode_frame rejects it, but
            # a lossy re-parse still recovers the request id.
            server = await _ScriptedServer(
                responder=lambda req: (
                    b'{"id": "' + req["id"].encode() +
                    b'", "ok": false, "error": {"type": "X", '
                    b'"message": "\xff"}}\n')).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            error = None
            try:
                await client.call("ping", {}, timeout=5.0)
            except ServeError as exc:
                error = exc
            failures = client.decode_failures
            await client.close()
            await server.close()
            return error, failures

        error, failures = asyncio.run(scenario())
        assert error is not None and "undecodable" in str(error)
        assert failures == 1

    def test_garbage_frames_are_counted_and_skipped(self):
        async def scenario():
            server = await _ScriptedServer(
                responder=lambda req: b"this is not json\n" + _ok(req)
            ).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            result = await client.call("ping", {})
            failures = client.decode_failures
            await client.close()
            await server.close()
            return result, failures

        result, failures = asyncio.run(scenario())
        assert result["pong"] is True  # the real reply still lands
        assert failures == 1


class TestCallWithRetry:
    def _patch_sleep(self, monkeypatch, sleeps):
        async def fake_sleep(delay):
            sleeps.append(delay)
        monkeypatch.setattr(client_module, "_sleep", fake_sleep)

    def test_retries_honour_hint_and_reuse_one_request_id(self, monkeypatch):
        sleeps = []
        self._patch_sleep(monkeypatch, sleeps)

        def responder(request):
            if len([r for r in _seen if r == request["id"]]) < 2:
                _seen.append(request["id"])
                return _refusal(request, retry_after=0.7)
            return _ok(request)

        _seen = []

        async def scenario():
            server = await _ScriptedServer(responder=responder).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            result = await client.call_with_retry("ping", {})
            ids = [r["id"] for r in server.received]
            snapshot = client.retry_budget.snapshot()
            refusals = client.refusals_seen
            await client.close()
            await server.close()
            return result, ids, snapshot, refusals

        result, ids, snapshot, refusals = asyncio.run(scenario())
        assert result["pong"] is True
        assert len(ids) == 3 and len(set(ids)) == 1  # one id, 3 attempts
        assert len(sleeps) == 2
        for delay in sleeps:
            assert delay >= 0.7  # retry_after is a floor, never undercut
        assert snapshot["retries"] == 2
        assert refusals == 2

    def test_budget_exhaustion_propagates_the_refusal(self, monkeypatch):
        sleeps = []
        self._patch_sleep(monkeypatch, sleeps)

        async def scenario():
            server = await _ScriptedServer(responder=_refusal).start()
            budget = RetryBudget(capacity=1.0, refill=0.5)
            client = await ServeClient("t", retry_budget=budget).connect(
                server.host, server.port)
            error = None
            try:
                await client.call_with_retry("ping", {}, max_attempts=6)
            except ServeCallError as exc:
                error = exc
            attempts = len(server.received)
            exhausted = budget.exhausted
            await client.close()
            await server.close()
            return error, attempts, exhausted

        error, attempts, exhausted = asyncio.run(scenario())
        assert error is not None
        assert error.error_type == "OverloadedError"
        assert attempts == 2  # initial + the single budgeted retry
        assert exhausted >= 1

    def test_non_retryable_errors_raise_immediately(self, monkeypatch):
        sleeps = []
        self._patch_sleep(monkeypatch, sleeps)

        async def scenario():
            server = await _ScriptedServer(
                responder=lambda req: _refusal(
                    req, error_type="MediationError")).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            error = None
            try:
                await client.call_with_retry("ping", {}, max_attempts=6)
            except ServeCallError as exc:
                error = exc
            attempts = len(server.received)
            await client.close()
            await server.close()
            return error, attempts

        error, attempts = asyncio.run(scenario())
        assert error.error_type == "MediationError"
        assert attempts == 1
        assert sleeps == []  # no backoff for an error a retry cannot fix


class TestServerTimeSync:
    def test_deadline_requires_a_sync_and_tracks_server_clock(self):
        async def scenario():
            server = await _ScriptedServer(
                responder=lambda req: _ok(req, {"pong": True,
                                                "now": 5000.0})).start()
            client = await ServeClient("t").connect(server.host,
                                                    server.port)
            before = client.deadline(10.0)
            await client.call("ping", {})
            after = client.deadline(10.0)
            await client.close()
            await server.close()
            return before, after

        before, after = asyncio.run(scenario())
        assert before is None  # no sync yet: caller must not guess
        assert after == pytest.approx(5010.0, abs=1.0)

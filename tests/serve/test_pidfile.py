"""The PID-file singleton guard."""

import os

import pytest

from repro.errors import AlreadyRunningError
from repro.serve.pidfile import PidFile


class TestPidFile:
    def test_acquire_writes_our_pid(self, tmp_path):
        path = tmp_path / "serve.pid"
        guard = PidFile(path).acquire()
        assert int(path.read_text()) == os.getpid()
        guard.release()
        assert not path.exists()

    def test_live_foreign_pid_blocks_acquisition(self, tmp_path):
        path = tmp_path / "serve.pid"
        # PID 1 is always alive (and never us).
        path.write_text("1\n")
        with pytest.raises(AlreadyRunningError) as excinfo:
            PidFile(path).acquire()
        assert excinfo.value.pid == 1

    def test_stale_pid_is_reclaimed(self, tmp_path):
        path = tmp_path / "serve.pid"
        # A PID far beyond pid_max: certainly dead.
        path.write_text("99999999\n")
        guard = PidFile(path).acquire()
        assert int(path.read_text()) == os.getpid()
        guard.release()

    def test_garbage_content_is_reclaimed(self, tmp_path):
        path = tmp_path / "serve.pid"
        path.write_text("not-a-pid\n")
        PidFile(path).acquire().release()

    def test_release_is_idempotent_and_respects_takeover(self, tmp_path):
        path = tmp_path / "serve.pid"
        guard = PidFile(path).acquire()
        # Another daemon took the file over (e.g. we were deemed stale):
        # our release must not delete their claim.
        path.write_text("1\n")
        guard.release()
        assert path.read_text() == "1\n"
        guard.release()  # idempotent

    def test_context_manager(self, tmp_path):
        path = tmp_path / "serve.pid"
        with PidFile(path):
            assert path.exists()
        assert not path.exists()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "run" / "serve.pid"
        with PidFile(path):
            assert path.exists()

"""The OVERLOAD_9 hostile-traffic chaos pack, end to end: a full seeded
run against the real daemon must pass its own acceptance gates."""

import pytest

from repro.report import overload_bench_report
from repro.serve.overload import SCENARIOS, check_overload, run_overload_bench


@pytest.mark.slow
class TestOverloadBench:
    def test_full_run_passes_its_own_gates(self, tmp_path):
        report = run_overload_bench(seed=9, root=tmp_path)
        failures = check_overload(report)
        assert failures == []

        # Structure the CI artifact and renderer depend on.
        assert set(report["scenarios"]) == set(SCENARIOS)
        for scenario in report["scenarios"].values():
            accounting = scenario["accounting"]
            assert accounting["refusals_match_sheds"]
            assert scenario["traffic"]["lost"] == 0
            assert scenario["traffic"]["disagreements"] == 0
            assert scenario["server"]["admission"]["shed"]["by_priority"][
                "control"] == 0
        # The flash crowd must actually hurt: sheds flowed and the
        # brownout engaged — otherwise the bench proves nothing.
        flash = report["scenarios"]["flash_crowd"]
        assert flash["server"]["admission"]["shed"]["total"] > 0
        assert flash["server"]["brownout"]["max_level"] >= 1
        assert report["scenarios"]["revocation_storm"]["storm"]["cycles"] > 0
        deadlines = report["deadlines"]
        assert deadlines["expired_refused"] == deadlines["sent_expired"]
        assert deadlines["generous_answered"] == deadlines["sent_generous"]

        rendered = overload_bench_report(report)
        assert "goodput" in rendered and "flash_crowd" in rendered

"""Admission control, brownout hysteresis and retry budgets — all on the
simulated clock, testable to the exact second."""

import pytest

from repro.serve.admission import (
    ADMIN,
    BULK,
    CONTROL,
    DATA,
    DEFAULT_TIERS,
    AdmissionController,
    BrownoutController,
    Refusal,
    RetryBudget,
    Ticket,
    TokenBucket,
    backoff_delay,
    method_priority,
)
from repro.util.clock import SimulatedClock
from repro.webcom.health import PressureWindow


class TestPriorities:
    def test_control_plane_methods_are_control_class(self):
        for method in ("hello", "ping", "status", "shutdown", "revoke",
                       "sweep", "subscribe", "unsubscribe"):
            assert method_priority(method) == CONTROL

    def test_data_and_admin_and_bulk(self):
        assert method_priority("mediate") == DATA
        assert method_priority("probe") == DATA
        assert method_priority("update") == ADMIN
        assert method_priority("translate") == BULK

    def test_unknown_methods_sort_with_bulk(self):
        assert method_priority("frobnicate") == BULK


class TestTokenBucket:
    def test_burst_then_refill_on_the_clock(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert [bucket.take() for _ in range(5)] == [True] * 4 + [False]
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.take()
        assert not bucket.take()

    def test_refill_caps_at_burst(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.take() for _ in range(3)] == [True, True, False]

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_control_is_always_admitted_and_never_counted(self):
        admission = AdmissionController(clock=SimulatedClock(),
                                        max_inflight=0)
        ticket = admission.admit("peer-1", "ping")
        assert isinstance(ticket, Ticket)
        assert ticket.priority == CONTROL and not ticket.counted
        assert admission.inflight == 0

    def test_inflight_budget_refuses_with_retry_after(self):
        admission = AdmissionController(clock=SimulatedClock(),
                                        max_inflight=2)
        tickets = [admission.admit("p", "mediate") for _ in range(2)]
        refusal = admission.admit("p", "mediate")
        assert isinstance(refusal, Refusal)
        assert refusal.kind == "overloaded"
        assert refusal.error_type == "OverloadedError"
        assert refusal.retry_after > 0
        admission.release(tickets[0])
        assert isinstance(admission.admit("p", "mediate"), Ticket)

    def test_release_is_idempotent_per_ticket(self):
        admission = AdmissionController(clock=SimulatedClock(),
                                        max_inflight=4)
        ticket = admission.admit("p", "mediate")
        admission.release(ticket)
        admission.release(ticket)
        assert admission.inflight == 0

    def test_per_peer_rate_limit_isolates_peers(self):
        clock = SimulatedClock()
        admission = AdmissionController(clock=clock, max_inflight=100,
                                        peer_rate=1.0, peer_burst=1.0)
        first = admission.admit("noisy", "mediate")
        admission.release(first)
        refusal = admission.admit("noisy", "mediate")
        assert isinstance(refusal, Refusal)
        assert refusal.kind == "rate_limited"
        assert refusal.error_type == "RateLimitedError"
        assert refusal.retry_after == pytest.approx(1.0)
        # A different peer is untouched by the noisy one's bucket.
        assert isinstance(admission.admit("quiet", "mediate"), Ticket)

    def test_forget_peer_drops_bucket_state(self):
        admission = AdmissionController(clock=SimulatedClock(),
                                        max_inflight=10, peer_rate=1.0)
        admission.release(admission.admit("p", "mediate"))
        admission.forget_peer("p")
        assert admission.snapshot()["peers_tracked"] == 0

    def test_snapshot_counts_sheds_by_kind_and_priority(self):
        admission = AdmissionController(clock=SimulatedClock(),
                                        max_inflight=0)
        admission.admit("p", "mediate")
        admission.admit("p", "translate")
        snap = admission.snapshot()
        assert snap["shed"]["overloaded"] == 2
        assert snap["shed"]["total"] == admission.sheds_total == 2
        assert snap["shed"]["by_priority"]["data"] == 1
        assert snap["shed"]["by_priority"]["bulk"] == 1
        assert snap["shed"]["by_priority"]["control"] == 0


def _hot_brownout(clock, **kwargs):
    return BrownoutController(clock=clock, window=1.0, sustain=0.5,
                              cool=1.0, **kwargs)


def _push_pressure(brownout, clock, shed_ratio, seconds, step=0.1):
    """Feed a steady mix of sheds/admits for ``seconds``."""
    per_step = 10
    sheds = int(per_step * shed_ratio)
    elapsed = 0.0
    while elapsed < seconds:
        for n in range(per_step):
            brownout.record(shed=n < sheds, utilization=0.1)
        clock.advance(step)
        elapsed += step
    brownout.poll()


class TestBrownoutController:
    def test_escalates_only_after_sustained_pressure(self):
        clock = SimulatedClock()
        brownout = _hot_brownout(clock)
        # A single hot sample is not sustained pressure.
        brownout.record(shed=True, utilization=1.0)
        assert brownout.level == 0
        _push_pressure(brownout, clock, shed_ratio=0.7, seconds=0.6)
        assert brownout.level == 1
        assert brownout.shed_broadcast()
        assert not brownout.serve_stale()

    def test_steps_through_all_tiers_and_back_down(self):
        clock = SimulatedClock()
        brownout = _hot_brownout(clock)
        _push_pressure(brownout, clock, shed_ratio=1.0, seconds=2.0)
        assert brownout.level == 3
        assert brownout.shed_bulk() and brownout.serve_stale()
        assert brownout.max_level == 3
        # Pressure collapses: the window drains, tiers step down one per
        # cool period (never a cliff).
        for expected in (2, 1, 0):
            clock.advance(1.2)
            brownout.poll()
            clock.advance(1.2)
            brownout.poll()
            assert brownout.level == expected
        assert brownout.max_level == 3

    def test_hysteresis_holds_between_exit_and_enter(self):
        clock = SimulatedClock()
        brownout = _hot_brownout(clock)
        _push_pressure(brownout, clock, shed_ratio=0.7, seconds=0.6)
        assert brownout.level == 1
        # 0.5 pressure is between tier 1's exit (0.30) and enter (0.60):
        # the controller holds its level indefinitely.
        _push_pressure(brownout, clock, shed_ratio=0.5, seconds=3.0)
        assert brownout.level == 1

    def test_transitions_are_recorded_and_reported(self):
        clock = SimulatedClock()
        seen = []
        brownout = _hot_brownout(
            clock, on_transition=lambda old, new, p: seen.append((old, new)))
        _push_pressure(brownout, clock, shed_ratio=0.9, seconds=0.6)
        assert seen and seen[0] == (0, 1)
        snap = brownout.snapshot()
        assert snap["transitions"][0]["tier"] == "shed_broadcast"
        assert snap["max_level"] >= 1
        assert [t["name"] for t in snap["tiers"]] == \
            [t.name for t in DEFAULT_TIERS]

    def test_rejects_non_consecutive_tiers(self):
        with pytest.raises(ValueError):
            BrownoutController(tiers=(DEFAULT_TIERS[1],))


class TestPressureWindow:
    def test_pressure_is_max_of_shed_ratio_and_peak_utilization(self):
        clock = SimulatedClock()
        window = PressureWindow(clock=clock, window=1.0)
        window.record(shed=True, utilization=0.2)
        window.record(shed=False, utilization=0.9)
        assert window.pressure() == pytest.approx(0.9)
        window.record(shed=True, utilization=0.1)
        window.record(shed=True, utilization=0.1)
        assert window.pressure() == pytest.approx(max(3 / 4, 0.9))

    def test_old_samples_age_out(self):
        clock = SimulatedClock()
        window = PressureWindow(clock=clock, window=1.0)
        window.record(shed=True, utilization=1.0)
        clock.advance(1.5)
        assert window.pressure() == 0.0
        assert window.snapshot()["samples"] == 0


class TestRetryBudget:
    def test_retries_spend_and_successes_refill(self):
        budget = RetryBudget(capacity=2.0, refill=0.5)
        assert budget.allow_retry()
        budget.on_retry()
        budget.on_retry()
        assert not budget.allow_retry()
        assert budget.exhausted == 1
        for _ in range(2):
            budget.on_success()
        assert budget.allow_retry()
        assert budget.snapshot()["retries"] == 2

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=1.0, refill=5.0)
        budget.on_success()
        assert budget.tokens == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.0)


class _FixedRng:
    def __init__(self, roll):
        self._roll = roll

    def random(self):
        return self._roll


class TestBackoffDelay:
    def test_exponential_with_jitter_in_upper_half(self):
        lo = backoff_delay(2, base=0.1, cap=10.0, rng=_FixedRng(0.0))
        hi = backoff_delay(2, base=0.1, cap=10.0, rng=_FixedRng(1.0))
        assert lo == pytest.approx(0.4 * 0.5)
        assert hi == pytest.approx(0.4)

    def test_cap_bounds_the_exponent(self):
        assert backoff_delay(50, base=0.1, cap=2.0,
                             rng=_FixedRng(1.0)) == pytest.approx(2.0)

    def test_retry_after_hint_is_a_jittered_floor(self):
        delay = backoff_delay(0, base=0.01, cap=2.0, rng=_FixedRng(0.0),
                              retry_after=1.0)
        assert delay == pytest.approx(1.0)
        delay = backoff_delay(0, base=0.01, cap=2.0, rng=_FixedRng(1.0),
                              retry_after=1.0)
        assert delay == pytest.approx(1.25)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)

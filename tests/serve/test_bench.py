"""The serve benchmark harness and its acceptance gates."""

import pytest

from repro.serve.bench import check_bench, percentile, run_serve_bench


class TestPercentile:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 0.99) == 5.0
        assert percentile(samples, 0.0) == 1.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == \
            percentile([1.0, 2.0, 3.0], 0.5)

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0


@pytest.mark.slow
class TestServeBench:
    def test_small_bench_passes_its_own_gates(self, tmp_path):
        report = run_serve_bench(clients=6, requests=4, probe_every=2,
                                 root=tmp_path)
        assert check_bench(report, min_clients=6) == []
        assert report["bench"] == "BENCH_7"
        assert report["timescale"] == "wall"
        assert report["oracle"]["probes"] > 0
        assert report["oracle"]["disagreements"] == 0
        assert report["drain"]["lost"] == 0
        assert report["drain"]["wal_flushed"] is True
        assert report["cold"]["requests"] == report["warm"]["requests"] > 0

    def test_check_bench_catches_regressions(self, tmp_path):
        report = run_serve_bench(clients=4, requests=4, probe_every=2,
                                 root=tmp_path)
        assert check_bench(report, min_clients=4) == []
        # Too few clients for the gate.
        assert check_bench(report, min_clients=32)
        # A disagreement or a lost in-flight call must fail the gate.
        broken = {**report, "oracle": {**report["oracle"],
                                       "disagreements": 1}}
        assert any("disagree" in failure for failure in check_bench(
            broken, min_clients=4))
        dropped = {**report, "drain": {**report["drain"], "lost": 2}}
        assert any("lost" in failure for failure in check_bench(
            dropped, min_clients=4))

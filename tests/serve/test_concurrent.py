"""Satellite harness: >=32 concurrent clients hammering the serve plane.

Clients interleave mediations, oracle probes, KeyCom installs and
revocations against one daemon.  The properties pinned here are the
concurrency bugs this PR fixes:

- **no lost updates** — every distinct KeyCom request id the clients
  submitted is recorded in ``applied_ids`` and every assignment landed in
  the ORB's RBAC policy;
- **no stale-fresh cache confusion** — after the final revocation wave,
  every client observes DENY (no stale cached ALLOW survives);
- **oracle-identical decisions** — every probe agrees with the PR-5
  conformance oracle, under full concurrency.
"""

import asyncio

from repro.keynote.credential import Credential
from repro.serve.client import ServeClient
from repro.serve.plane import ServePolicyPlane
from repro.serve.server import ReproServer
from repro.translate.to_keynote import membership_conditions

CLIENTS = 32
ROUNDS = 6

TRUST_ROOT = ('Authorizer: POLICY\nLicensees: "KWebCom"\n'
              'Conditions: app_domain=="WebCom";')


def _build_plane():
    plane = ServePolicyPlane(cache_ttl=30.0)
    plane.keystore.create("KWebCom")
    for index in range(CLIENTS):
        plane.keystore.create(f"Kuser{index:02d}")
    plane.session.add_policy(TRUST_ROOT)
    licensees = " || ".join(f'"Kuser{index:02d}"' for index in range(CLIENTS))
    plane.session.add_policy(
        f'Authorizer: POLICY\nLicensees: {licensees}\n'
        'Conditions: app_domain=="WebCom" && op=="run";')
    return plane


def _membership(plane, key, role):
    return Credential.build(
        "KWebCom", f'"{key}"',
        membership_conditions(plane.middleware.domain, role),
    ).sign(plane.keystore.pair("KWebCom").private)


def _grant_text(plane, key):
    return Credential.build(
        "KWebCom", f'"{key}"', 'app_domain=="WebCom" && op=="push"',
    ).sign(plane.keystore.pair("KWebCom").private).to_text()


async def _worker(index, host, port, plane, log):
    user = f"user{index:02d}"
    key = f"Kuser{index:02d}"
    base = {"user": user, "user_key": key, "object_type": "graph",
            "attributes": {"app_domain": "WebCom"}}
    grant = _grant_text(plane, key)
    async with await ServeClient(user).connect(host, port) as client:
        await client.hello(role="harness")
        for round_no in range(ROUNDS):
            # A probe every round: production decision vs oracle.
            probe = await client.call("probe", {**base, "operation": "run"})
            log["probes"].append(probe["agree"])
            # A KeyCom install with a client-unique request id.
            request_id = f"{user}-install-{round_no}"
            update = await client.call("update", {
                "user": user, "user_key": key,
                "domain": plane.middleware.domain, "role": "Clerk",
                "credentials": [_membership(plane, key, "Clerk").to_text()],
                "request_id": request_id})
            assert update["applied"]
            log["installed"].append(request_id)
            # Interleave a grant / revoke cycle on the TM plane: other
            # clients' mediations race these mutations.
            await client.call("add_credential", {"text": grant})
            push = await client.call("probe", {**base, "operation": "push"})
            log["probes"].append(push["agree"])
            await client.call("revoke", {"text": grant})
        # Final revocation done: "push" must now deny for this client, and
        # it must not be served from a cache entry that predates the
        # revocation (stale-fresh confusion).
        final = await client.call("mediate", {**base, "operation": "push"})
        log["final_push_allowed"].append(final["allowed"])
        still = await client.call("mediate", {**base, "operation": "run"})
        log["final_run_allowed"].append(still["allowed"])


async def _scenario():
    plane = _build_plane()
    server = await ReproServer(plane).start()
    log = {"probes": [], "installed": [], "final_push_allowed": [],
           "final_run_allowed": []}
    try:
        await asyncio.gather(*[
            _worker(index, server.host, server.port, plane, log)
            for index in range(CLIENTS)])
    finally:
        report = await server.shutdown(reason="harness done")
    return plane, server, log, report


class TestConcurrentClients:
    def test_32_clients_interleaving_mediate_update_revoke(self):
        plane, server, log, report = asyncio.run(_scenario())

        # Oracle-identical decisions under full concurrency.
        assert log["probes"] and all(log["probes"])
        assert plane.oracle_disagreements == 0

        # No lost updates: every distinct KeyCom request id was applied
        # exactly once, and every client's assignment is in the RBAC policy.
        assert len(log["installed"]) == CLIENTS * ROUNDS
        assert set(log["installed"]) <= plane.keycom.applied_ids
        assigned = {a.user
                    for a in plane.middleware.extract_rbac().assignments}
        assert {f"user{i:02d}" for i in range(CLIENTS)} <= assigned

        # No stale-fresh confusion: the revoked grant denies everywhere,
        # while the unrevoked baseline policy still allows.
        assert log["final_push_allowed"] == [False] * CLIENTS
        assert log["final_run_allowed"] == [True] * CLIENTS

        # Clean drain underneath it all.
        assert report["inflight_after_drain"] == 0
        assert server.requests_served >= CLIENTS * ROUNDS * 5

"""Span nesting, correlation inheritance and remote parenting."""

import pytest

from repro.obs.trace import Tracer
from repro.util.clock import SimulatedClock


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def tracer(clock: SimulatedClock) -> Tracer:
    return Tracer(clock)


class TestNesting:
    def test_inner_span_parents_onto_outer(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id
        assert inner.correlation_id == outer.correlation_id

    def test_roots_get_fresh_correlations(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.correlation_id != second.correlation_id
        assert tracer.correlations() == [first.correlation_id,
                                         second.correlation_id]

    def test_siblings_share_parent_and_correlation(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == outer.span_id
        assert a.correlation_id == b.correlation_id == outer.correlation_id

    def test_ids_are_deterministic(self):
        first = Tracer()
        second = Tracer()
        for tr in (first, second):
            with tr.span("x"):
                with tr.span("y"):
                    pass
        assert [s.span_id for s in first.spans] == \
               [s.span_id for s in second.spans]
        assert [s.correlation_id for s in first.spans] == \
               [s.correlation_id for s in second.spans]


class TestTiming:
    def test_span_bounds_track_the_clock(self, tracer, clock):
        clock.advance(5.0)
        with tracer.span("work") as span:
            clock.advance(2.5)
        assert span.start == 5.0
        assert span.end == 7.5
        assert span.duration == 2.5

    def test_open_span_has_no_duration(self, tracer):
        span = tracer.start("open")
        assert span.end is None
        assert span.duration is None
        tracer.finish(span)
        assert span.duration == 0.0


class TestRemoteParenting:
    def test_explicit_ids_stitch_processes_together(self, tracer):
        # The "master" side opens a span and ships its ids in a payload...
        with tracer.span("master.schedule") as schedule:
            payload = {"correlation_id": schedule.correlation_id,
                       "span_id": schedule.span_id}
        # ... and the "client" side (no shared stack) parents onto it.
        with tracer.span("client.execute",
                         correlation_id=payload["correlation_id"],
                         parent_id=payload["span_id"]) as execute:
            pass
        assert execute.parent_id == schedule.span_id
        assert execute.correlation_id == schedule.correlation_id

    def test_record_captures_elapsed_flight(self, tracer):
        flight = tracer.record("net.execute", 1.0, 3.5,
                               correlation_id="corr-x", parent_id="span-x",
                               status="ok", sender="master")
        assert flight.duration == 2.5
        assert flight.correlation_id == "corr-x"
        assert flight.attributes["sender"] == "master"
        assert tracer.current() is None  # record never opens a stack frame


class TestStatusAndQueries:
    def test_escaping_exception_marks_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert "boom" in span.attributes["error"]
        assert span.end is not None

    def test_explicit_status_survives_finish(self, tracer):
        with tracer.span("mediation") as span:
            span.status = "deny"
        assert span.status == "deny"

    def test_attributes_and_set_chaining(self, tracer):
        with tracer.span("op", node="n0") as span:
            span.set(verdict="allow").set(layer="L3")
        assert span.attributes == {"node": "n0", "verdict": "allow",
                                   "layer": "L3"}

    def test_find_filters_by_name_and_correlation(self, tracer):
        with tracer.span("a") as a:
            with tracer.span("b"):
                pass
        with tracer.span("b") as other_b:
            pass
        assert len(tracer.find("b")) == 2
        assert tracer.find("b", a.correlation_id)[0].parent_id == a.span_id
        assert tracer.find(correlation_id=other_b.correlation_id) == [other_b]

    def test_reset_keeps_open_spans(self, tracer):
        open_span = tracer.start("still-running")
        with tracer.span("done"):
            pass
        tracer.reset()
        assert len(tracer) == 1
        assert tracer.current() is open_span

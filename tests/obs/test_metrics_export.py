"""Metrics instruments, the registry and the export renderers."""

import json
import math

import pytest

from repro.obs import Observability
from repro.obs.export import (
    export_bundle,
    export_json,
    metrics_to_dict,
    render_metrics,
    render_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.util.clock import SimulatedClock


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("hits")
        assert c.inc() == 1
        assert c.inc(4) == 5
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_updates_are_timestamped(self):
        clock = SimulatedClock()
        c = Counter("hits", clock)
        assert c.updated_at is None
        clock.advance(3.0)
        c.inc()
        assert c.updated_at == 3.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("queue.depth")
        g.set(4)
        assert g.add(-1.5) == 2.5
        assert g.as_dict()["value"] == 2.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("latency")
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.total() == 10.0
        assert (h.minimum(), h.maximum(), h.mean()) == (1.0, 4.0, 2.5)
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        summary = h.as_dict()
        assert summary["p95"] == 4.0
        assert summary["p99"] == 4.0

    def test_empty_histogram_is_nan(self):
        h = Histogram("latency")
        assert math.isnan(h.mean())
        assert math.isnan(h.percentile(95))
        assert h.as_dict() == {"type": "histogram", "name": "latency",
                               "count": 0}

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(101)

    def test_samples_carry_observation_times(self):
        clock = SimulatedClock()
        h = Histogram("latency", clock)
        h.observe(1.0)
        clock.advance(2.0)
        h.observe(3.0)
        assert h.samples == [(0.0, 1.0), (2.0, 3.0)]


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_timer_observes_simulated_duration(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock)
        with registry.time("op.latency"):
            clock.advance(4.0)
        with registry.time("op.latency"):
            pass  # nothing advanced the clock
        assert registry.histogram("op.latency").samples == [(4.0, 4.0),
                                                            (4.0, 0.0)]

    def test_names_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1)
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"]["type"] == "counter"
        registry.reset()
        assert len(registry) == 0


def observed_run() -> Observability:
    """A tiny two-correlation run to exercise the renderers."""
    obs = Observability()
    with obs.tracer.span("master.schedule", node="n0") as schedule:
        obs.clock.advance(1.0)
        obs.tracer.record("net.execute", 0.0, 1.0,
                          correlation_id=schedule.correlation_id,
                          parent_id=schedule.span_id)
        with obs.tracer.span("stack.mediate") as mediate:
            mediate.status = "deny"
    with obs.tracer.span("unrelated"):
        pass
    obs.metrics.counter("stack.mediate.deny").inc()
    obs.metrics.histogram("net.latency").observe(1.0)
    return obs


class TestRenderTrace:
    def test_tree_structure_per_correlation(self):
        obs = observed_run()
        text = render_trace(obs.tracer.spans)
        assert text.count("trace corr-") == 2
        # Children are indented under the schedule root.
        root_line = next(l for l in text.splitlines()
                         if "master.schedule" in l)
        child_line = next(l for l in text.splitlines()
                          if "stack.mediate" in l)
        assert child_line.index("stack.mediate") > \
               root_line.index("master.schedule")
        assert "deny" in child_line

    def test_correlation_filter(self):
        obs = observed_run()
        corr = obs.tracer.spans[0].correlation_id
        text = render_trace(obs.tracer.spans, corr)
        assert "unrelated" not in text
        assert "master.schedule" in text

    def test_orphans_become_roots_not_dropped(self):
        obs = observed_run()
        only_net = [s for s in obs.tracer.spans if s.name == "net.execute"]
        text = render_trace(only_net)
        assert "net.execute" in text

    def test_no_spans(self):
        assert render_trace([]) == "(no spans)"


class TestRenderMetrics:
    def test_table_has_one_row_per_instrument(self):
        obs = observed_run()
        text = render_metrics(obs.metrics)
        assert "stack.mediate.deny" in text
        assert "net.latency" in text
        assert "histogram" in text

    def test_empty_registry(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics)"


class TestJsonExport:
    def test_bundle_round_trips_through_json(self):
        obs = observed_run()
        bundle = json.loads(export_json(obs))
        assert bundle == export_bundle(obs)
        assert bundle["clock"] == 1.0
        assert len(bundle["trace"]) == len(obs.tracer.spans)
        by_name = {s["name"]: s for s in bundle["trace"]}
        assert by_name["net.execute"]["duration"] == 1.0
        assert by_name["stack.mediate"]["status"] == "deny"
        assert bundle["metrics"] == metrics_to_dict(obs.metrics)
        assert bundle["metrics"]["stack.mediate.deny"]["value"] == 1

    def test_observability_reset(self):
        obs = observed_run()
        obs.reset()
        assert len(obs.tracer) == 0
        assert len(obs.metrics) == 0
        assert obs.clock.now() == 1.0  # the clock runs on

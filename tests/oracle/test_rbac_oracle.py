"""The naive RBAC oracle against handcrafted cases and the production
:class:`~repro.rbac.policy.RBACPolicy` (hierarchy included)."""

import random

import pytest

from repro.oracle.gen import ROLES, gen_probes, gen_relations
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy


class TestHandcrafted:
    def test_direct_grant(self):
        oracle = RBACOracle(
            grants=[("Finance", "Clerk", "SalariesDB", "read")],
            assignments=[("Alice", "Finance", "Clerk")])
        assert oracle.check_access("Alice", "SalariesDB", "read")
        assert not oracle.check_access("Alice", "SalariesDB", "write")
        assert not oracle.check_access("Bob", "SalariesDB", "read")

    def test_senior_inherits_junior_permission(self):
        oracle = RBACOracle(
            grants=[("Finance", "Clerk", "SalariesDB", "read")],
            assignments=[("Alice", "Finance", "Manager")],
            hierarchy=[(("Finance", "Manager"), ("Finance", "Clerk"))])
        assert oracle.check_access("Alice", "SalariesDB", "read")
        assert oracle.roles_of("Alice") == {("Finance", "Manager"),
                                            ("Finance", "Clerk")}

    def test_junior_does_not_inherit_upward(self):
        oracle = RBACOracle(
            grants=[("Finance", "Manager", "SalariesDB", "write")],
            assignments=[("Bob", "Finance", "Clerk")],
            hierarchy=[(("Finance", "Manager"), ("Finance", "Clerk"))])
        assert not oracle.check_access("Bob", "SalariesDB", "write")

    def test_transitive_hierarchy(self):
        oracle = RBACOracle(
            grants=[("D", "C", "T", "p")],
            assignments=[("Alice", "D", "A")],
            hierarchy=[(("D", "A"), ("D", "B")), (("D", "B"), ("D", "C"))])
        assert oracle.juniors_of("D", "A") == {("D", "B"), ("D", "C")}
        assert oracle.seniors_of("D", "C") == {("D", "A"), ("D", "B")}
        assert oracle.check_access("Alice", "T", "p")

    def test_cyclic_edges_terminate(self):
        # The production hierarchy refuses cycles; the oracle must stay
        # total (and sane) on any edge set the differ could construct.
        oracle = RBACOracle(
            grants=[("D", "B", "T", "p")],
            assignments=[("Alice", "D", "A")],
            hierarchy=[(("D", "A"), ("D", "B")), (("D", "B"), ("D", "A"))])
        assert oracle.check_access("Alice", "T", "p")
        assert oracle.juniors_of("D", "A") == {("D", "B")}

    def test_members_of_includes_seniors(self):
        oracle = RBACOracle(
            assignments=[("Alice", "D", "Manager"), ("Bob", "D", "Clerk")],
            hierarchy=[(("D", "Manager"), ("D", "Clerk"))])
        assert oracle.members_of("D", "Clerk") == {"Alice", "Bob"}
        assert oracle.members_of("D", "Manager") == {"Alice"}

    def test_role_has_permission_via_junior(self):
        oracle = RBACOracle(
            grants=[("D", "Clerk", "T", "p")],
            hierarchy=[(("D", "Manager"), ("D", "Clerk"))])
        assert oracle.role_has_permission("D", "Manager", "T", "p")
        assert not oracle.role_has_permission("D", "Clerk", "T", "q")

    def test_authorised_users(self):
        oracle = RBACOracle(
            grants=[("D", "Clerk", "T", "p")],
            assignments=[("Alice", "D", "Clerk"), ("Bob", "D", "Auditor")])
        assert oracle.authorised_users("T", "p") == {"Alice"}


def _policy_with_hierarchy(rng: random.Random) -> RBACPolicy:
    domains = ["Finance", "Engineering"]
    grants, assignments = gen_relations(rng, domains)
    policy = RBACPolicy.from_relations(
        "seeded", [tuple(g) for g in grants], [tuple(a) for a in assignments])
    # A random forest of acyclic edges over the role vocabulary.
    pairs = [DomainRole(d, r) for d in domains for r in ROLES]
    for _ in range(rng.randint(0, 4)):
        senior, junior = rng.sample(pairs, 2)
        if junior not in policy.hierarchy.seniors(senior) | {senior}:
            policy.hierarchy.add_inheritance(senior, junior)
    return policy


@pytest.mark.parametrize("seed", range(12))
def test_from_policy_agrees_with_production(seed):
    """Every (user, object, permission) decision, membership set and role
    set must agree between RBACPolicy and its flattened oracle."""
    rng = random.Random(f"rbac-oracle:{seed}")
    policy = _policy_with_hierarchy(rng)
    oracle = RBACOracle.from_policy(policy)
    probes = gen_probes(rng, [[g.domain, g.role, g.object_type, g.permission]
                              for g in policy.sorted_grants()],
                        [[a.user, a.domain, a.role]
                         for a in policy.sorted_assignments()], count=15)
    for user, object_type, permission in probes:
        assert (policy.check_access(user, object_type, permission)
                == oracle.check_access(user, object_type, permission))
    for user in {a.user for a in policy.assignments}:
        assert ({(dr.domain, dr.role) for dr in policy.roles_of(user)}
                == oracle.roles_of(user))
    for grant in policy.sorted_grants():
        assert (policy.members_of(grant.domain, grant.role)
                == oracle.members_of(grant.domain, grant.role))

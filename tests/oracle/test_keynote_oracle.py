"""The brute-force KeyNote oracle against handcrafted delegation shapes and
the production :class:`~repro.keynote.compliance.ComplianceChecker`."""

import random

import pytest

from repro.errors import ComplianceError
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.keynote.values import ComplianceValueSet
from repro.oracle.gen import gen_compliance_case
from repro.oracle.keynote_oracle import (
    oracle_authorises,
    oracle_compliance_value,
)


def policy(licensees: str, conditions: str) -> Credential:
    return Credential.build("POLICY", licensees, conditions)


def cred(authorizer: str, licensees: str, conditions: str) -> Credential:
    return Credential.build(authorizer, licensees, conditions)


class TestHandcrafted:
    def test_direct_policy_grant(self):
        assertions = [policy('"Ka"', 'op=="read"')]
        assert oracle_compliance_value(assertions, {"op": "read"},
                                       ["Ka"]) == "true"
        assert oracle_compliance_value(assertions, {"op": "write"},
                                       ["Ka"]) == "false"
        assert oracle_compliance_value(assertions, {"op": "read"},
                                       ["Kb"]) == "false"

    def test_delegation_chain(self):
        assertions = [policy('"Ka"', "true"), cred("Ka", '"Kb"', "true"),
                      cred("Kb", '"Kc"', 'op=="read"')]
        assert oracle_authorises(assertions, {"op": "read"}, ["Kc"])
        assert not oracle_authorises(assertions, {"op": "write"}, ["Kc"])

    def test_cycle_grants_nothing(self):
        # Kx and Ky license each other but nothing connects them to POLICY:
        # the least fixpoint leaves both at bottom.
        assertions = [policy('"Ka"', "true"),
                      cred("Kx", '"Ky"', "true"), cred("Ky", '"Kx"', "true")]
        assert not oracle_authorises(assertions, {}, ["Kx"])
        assert not oracle_authorises(assertions, {}, ["Ky"])
        assert oracle_authorises(assertions, {}, ["Ka"])

    def test_cycle_on_the_path_still_authorises_through_it(self):
        # A cycle hanging off an otherwise valid chain must not poison it.
        assertions = [policy('"Ka"', "true"), cred("Ka", '"Kb"', "true"),
                      cred("Kb", '"Ka"', "true")]
        assert oracle_authorises(assertions, {}, ["Kb"])

    def test_threshold_licensees(self):
        assertions = [policy('2-of("Ka", "Kb", "Kc")', "true")]
        assert oracle_authorises(assertions, {}, ["Ka", "Kb"])
        assert not oracle_authorises(assertions, {}, ["Ka"])

    def test_policy_requester_is_max_trust(self):
        assert oracle_compliance_value([], {}, ["POLICY"]) == "true"

    def test_no_authorizer_raises(self):
        with pytest.raises(ComplianceError):
            oracle_compliance_value([], {}, [])

    def test_multi_valued_chain_takes_weakest_link(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        assertions = [policy('"Ka"', 'true -> "approve"'),
                      cred("Ka", '"Kb"', 'true -> "log"')]
        assert oracle_compliance_value(assertions, {}, ["Kb"],
                                       values=tri) == "log"
        assert oracle_compliance_value(assertions, {}, ["Ka"],
                                       values=tri) == "approve"

    def test_multi_valued_join_over_parallel_paths(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        assertions = [policy('"Ka"', 'true -> "log"'),
                      policy('"Ka"', 'risk=="low" -> "approve"')]
        assert oracle_compliance_value(assertions, {"risk": "low"}, ["Ka"],
                                       values=tri) == "approve"
        assert oracle_compliance_value(assertions, {"risk": "hi"}, ["Ka"],
                                       values=tri) == "log"

    def test_authorises_threshold(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        assertions = [policy('"Ka"', 'true -> "log"')]
        assert not oracle_authorises(assertions, {}, ["Ka"], values=tri)
        assert oracle_authorises(assertions, {}, ["Ka"], values=tri,
                                 threshold="log")


@pytest.mark.parametrize("seed", range(15))
def test_agrees_with_production_checker(seed):
    """Seeded delegation graphs (chains, cycles, thresholds): the memoised
    DFS and the Kleene iteration must compute the same value for every
    query."""
    rng = random.Random(f"keynote-oracle:{seed}")
    case = gen_compliance_case(rng)
    assertions = [Credential.from_text(t) for t in case["credentials"]]
    checker = ComplianceChecker(list(assertions), verify_signatures=False)
    for attributes, authorizers in case["queries"]:
        assert (checker.query(attributes, authorizers)
                == oracle_compliance_value(assertions, attributes,
                                           authorizers))

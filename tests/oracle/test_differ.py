"""The differential harness: per-family conformance, shrinking, replay."""

import json
import random

import pytest

from repro.oracle import differ
from repro.oracle.differ import (
    evaluate_case,
    replay_case,
    run_conformance,
    shrink_case,
)
from repro.oracle.gen import GENERATORS


class TestPerFamilyConformance:
    @pytest.mark.parametrize("check", sorted(GENERATORS))
    def test_family_has_no_counterexamples(self, check):
        for seed in range(4):
            rng = random.Random(f"differ:{check}:{seed}")
            case = GENERATORS[check](rng, label=f"{check}-{seed}")
            result = evaluate_case(case)
            assert result["comparisons"] > 0
            real = [d for d in result["disagreements"] if not d["lossy"]]
            assert real == []

    def test_run_conformance_report_shape(self):
        report = run_conformance(seed=0, cases=8)
        assert report["report"] == "CONFORMANCE_5"
        assert report["cases"] == 8
        assert report["counterexamples"] == []
        assert set(report["per_check"]) == set(GENERATORS)
        for stats in report["per_check"].values():
            assert stats["cases"] == 2
            assert (stats["agreements"] + stats["known_lossy"]
                    == stats["comparisons"])
        assert report["comparisons"] == sum(
            s["comparisons"] for s in report["per_check"].values())

    def test_report_is_json_serialisable(self):
        report = run_conformance(seed=3, cases=4)
        assert json.loads(json.dumps(report)) == report


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1, 5))
def test_multi_seed_sweep(seed):
    report = run_conformance(seed=seed, cases=40)
    assert report["counterexamples"] == []


class TestShrinker:
    """A synthetic check whose failure is caused by exactly one element
    lets us pin the shrinker's minimality."""

    @pytest.fixture
    def synthetic(self):
        def evaluator(case):
            disagreements = []
            if ["poison"] in case["grants"]:
                disagreements.append({
                    "comparison": "synthetic", "expected": False,
                    "actual": True, "lossy": False})
            return {"comparisons": len(case["grants"]) + len(case["probes"]),
                    "disagreements": disagreements}
        differ.EVALUATORS["synthetic"] = evaluator
        yield
        del differ.EVALUATORS["synthetic"]

    def test_shrinks_to_the_single_cause(self, synthetic):
        case = {"check": "synthetic",
                "grants": [["a"], ["b"], ["poison"], ["c"], ["d"]],
                "probes": [["p1"], ["p2"], ["p3"]]}
        minimal = shrink_case(case)
        assert minimal["grants"] == [["poison"]]
        assert minimal["probes"] == []

    def test_shrinking_leaves_passing_cases_alone(self, synthetic):
        case = {"check": "synthetic", "grants": [["a"]], "probes": [["p"]]}
        assert shrink_case(case) == case

    def test_shrink_does_not_mutate_the_input(self, synthetic):
        case = {"check": "synthetic", "grants": [["poison"], ["a"]],
                "probes": []}
        snapshot = json.loads(json.dumps(case))
        shrink_case(case)
        assert case == snapshot

    def test_crashing_candidate_is_not_taken(self, synthetic):
        # Removing "keep" makes the evaluator crash; the shrinker must treat
        # that as "removal not allowed", not as a smaller counterexample.
        def fragile(case):
            if ["keep"] not in case["grants"]:
                raise RuntimeError("unbuildable case")
            return {"comparisons": 1, "disagreements": [
                {"comparison": "x", "expected": 0, "actual": 1,
                 "lossy": False}]}
        differ.EVALUATORS["synthetic"] = fragile
        minimal = shrink_case({"check": "synthetic",
                               "grants": [["keep"], ["a"]], "probes": []})
        assert ["keep"] in minimal["grants"]


class TestReplay:
    def test_serialised_case_replays_identically(self):
        rng = random.Random("replay:0")
        case = GENERATORS["middleware"](rng, label="replay")
        first = evaluate_case(case)
        wire = json.dumps(case)
        second = replay_case(json.loads(wire))
        assert first == second

    def test_counterexample_entries_carry_replayable_cases(self, monkeypatch):
        # Force a disagreement by breaking the oracle for one probe, then
        # check the report's counterexample replays under the real differ.
        real_eval = differ.EVALUATORS["middleware"]

        def broken(case):
            result = real_eval(case)
            result["disagreements"].append({
                "comparison": "injected", "expected": True, "actual": False,
                "lossy": False})
            return result

        monkeypatch.setitem(differ.EVALUATORS, "middleware", broken)
        report = run_conformance(seed=0, cases=1, shrink=False)
        assert len(report["counterexamples"]) == 1
        entry = report["counterexamples"][0]
        assert entry["check"] == "middleware"
        assert entry["disagreements"]
        monkeypatch.undo()
        clean = replay_case(entry["case"])
        assert [d for d in clean["disagreements"] if not d["lossy"]] == []

"""Checked-in counterexample fixtures replay clean against every path.

Each JSON file under ``cases/`` is a shrunk or synthetic case dict exactly
as the differ serialises counterexamples; replaying one re-runs every
subject the case describes (backends, checkers, translators, the stack).
A fixture that starts producing a non-lossy disagreement means a
regression escaped somewhere in the authorisation plane.
"""

import json
from pathlib import Path

import pytest

from repro.oracle.differ import replay_case, shrink_case

CASES_DIR = Path(__file__).parent / "cases"
CASE_FILES = sorted(CASES_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def test_fixture_directory_is_populated():
    assert len(CASE_FILES) >= 3


@pytest.mark.parametrize("path", CASE_FILES, ids=lambda p: p.stem)
def test_fixture_replays_without_non_lossy_disagreement(path):
    result = replay_case(_load(path))
    assert result["comparisons"] > 0
    real = [d for d in result["disagreements"] if not d["lossy"]]
    assert real == []


def test_ejb_unchecked_fixture_pins_the_lossy_classification():
    """The <unchecked/> fixture must keep producing exactly its documented
    known-lossy mismatch: the roleless principal is allowed by the backend
    but denied by the RBAC reading."""
    result = replay_case(_load(CASES_DIR / "ejb_unchecked_lossy.json"))
    lossy = [d for d in result["disagreements"] if d["lossy"]]
    assert len(lossy) == 1
    assert lossy[0]["comparison"] == "backend-vs-oracle"
    assert lossy[0]["probe"] == ["Mallory", "SalariesDB", "read"]
    assert lossy[0]["actual"] is True and lossy[0]["expected"] is False


def test_cycle_fixture_exercises_revocation_churn():
    case = _load(CASES_DIR / "delegation_cycle.json")
    assert case["churn"], "fixture must keep its churn phase"
    assert replay_case(case)["disagreements"] == []


def test_stack_fixture_survives_shrinking():
    """A passing fixture is already minimal for the shrinker: no element
    can be dropped to *create* a disagreement."""
    case = _load(CASES_DIR / "stack_static_stale.json")
    assert shrink_case(case) == case

"""Small-branch coverage: representation helpers and defensive paths."""

import pytest

from repro.errors import ReproError, WebComError
from repro.rbac.policy import RBACPolicy
from repro.translate.consistency import ConsistencyReport
from repro.util.text import unquote


class TestErrorHierarchy:
    def test_every_domain_error_is_a_repro_error(self):
        import repro.errors as errors

        exception_types = [obj for obj in vars(errors).values()
                           if isinstance(obj, type)
                           and issubclass(obj, Exception)]
        assert len(exception_types) > 25
        for exc_type in exception_types:
            assert issubclass(exc_type, ReproError)

    def test_webcom_family(self):
        from repro.errors import AuthorisationError, SchedulingError

        assert issubclass(SchedulingError, WebComError)
        assert issubclass(AuthorisationError, WebComError)

    def test_syntax_error_position_rendering(self):
        from repro.errors import KeyNoteSyntaxError

        err = KeyNoteSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(err)
        assert str(KeyNoteSyntaxError("plain")) == "plain"


class TestPolicyDunder:
    def test_eq_against_foreign_type(self):
        assert RBACPolicy("p").__eq__(42) is NotImplemented
        assert RBACPolicy("p") != 42

    def test_policies_usable_as_dict_keys(self):
        a, b = RBACPolicy("a"), RBACPolicy("b")
        table = {a: 1, b: 2}
        assert table[a] == 1


class TestConsistencyReportRendering:
    def test_empty_report(self):
        assert str(ConsistencyReport()) == "(no systems)"
        assert ConsistencyReport().is_consistent()


class TestTextEdge:
    def test_unquote_empty_quoted(self):
        assert unquote('""') == ""

    def test_unquote_too_short(self):
        with pytest.raises(ValueError):
            unquote('"')


class TestPackageSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.keynote as keynote
        import repro.middleware as middleware
        import repro.rbac as rbac
        import repro.spki as spki
        import repro.translate as translate
        import repro.webcom as webcom

        for module in (core, keynote, middleware, rbac, spki, translate,
                       webcom):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)

"""Parser robustness: arbitrary input must fail *cleanly*.

The KeyNote credential parser, the expression parser and the S-expression
parser all face untrusted network input in the paper's architecture.  These
properties assert they either parse or raise their documented exception —
never an unrelated crash (IndexError, RecursionError within reason, ...).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNoteSyntaxError, SExpressionError
from repro.keynote.credential import Credential
from repro.keynote.licensees import parse_licensees
from repro.keynote.parser import parse_conditions, parse_expression
from repro.keynote.tokens import tokenize
from repro.spki.sexp import parse_sexp

# Characters that exercise every token class plus pure noise.
EXPR_ALPHABET = 'abcxyz_0129. "\\=<>!&|()+-*/%^;,#\n\t$~{}'
SEXP_ALPHABET = 'abc012 ()"\\\n\t'
CRED_ALPHABET = ('abcxyzABC_0129. ":=<>!&|()\n\t-')


class TestTokenizerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=EXPR_ALPHABET, max_size=60))
    def test_tokenize_total(self, text):
        try:
            tokens = tokenize(text)
            assert tokens  # at least EOF
        except KeyNoteSyntaxError:
            pass


class TestExpressionParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=EXPR_ALPHABET, max_size=60))
    def test_parse_expression_clean_failure(self, text):
        try:
            parse_expression(text)
        except KeyNoteSyntaxError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=EXPR_ALPHABET, max_size=60))
    def test_parse_conditions_clean_failure(self, text):
        try:
            parse_conditions(text)
        except KeyNoteSyntaxError:
            pass


class TestLicenseeParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet='abcK019 "&|()-,of', max_size=40))
    def test_parse_licensees_clean_failure(self, text):
        try:
            parse_licensees(text)
        except KeyNoteSyntaxError:
            pass


class TestCredentialParserFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=CRED_ALPHABET, max_size=120))
    def test_from_text_clean_failure(self, text):
        try:
            Credential.from_text(text)
        except KeyNoteSyntaxError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet=CRED_ALPHABET, max_size=60))
    def test_field_injection_resistant(self, payload):
        """A hostile Comment body must not smuggle in other fields."""
        flattened = payload.replace("\n", " ")
        text = (f"Comment: {flattened}\n"
                "Authorizer: POLICY\n"
                'Licensees: "K"\n'
                'Conditions: x=="1";\n')
        try:
            credential = Credential.from_text(text)
        except KeyNoteSyntaxError:
            return
        assert credential.is_policy
        assert credential.principals() == {"K"}


class TestSExpressionFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=SEXP_ALPHABET, max_size=60))
    def test_parse_sexp_clean_failure(self, text):
        try:
            parse_sexp(text)
        except SExpressionError:
            pass

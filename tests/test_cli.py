"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.scenarios import salaries_policy
from repro.crypto import Keystore
from repro.rbac.serialize import policy_from_json, policy_to_json
from repro.translate.to_keynote import encode_full


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "salaries.json"
    path.write_text(policy_to_json(salaries_policy()))
    return str(path)


@pytest.fixture
def credentials_file(tmp_path):
    keystore = Keystore()
    policy_cred, memberships = encode_full(salaries_policy(), "KWebCom",
                                           keystore)
    blob = policy_cred.to_text() + "\n" + "\n".join(
        c.to_text() for c in memberships)
    path = tmp_path / "creds.kn"
    path.write_text(blob)
    return str(path)


class TestTables:
    def test_renders_tables(self, policy_file, capsys):
        assert main(["tables", "--policy", policy_file]) == 0
        out = capsys.readouterr().out
        assert "HasPermission:" in out
        assert "Finance" in out
        assert "Elaine" in out

    def test_missing_file(self, capsys):
        assert main(["tables", "--policy", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestEncodeComprehend:
    def test_encode_prints_credentials(self, policy_file, capsys):
        assert main(["encode", "--policy", policy_file]) == 0
        out = capsys.readouterr().out
        assert "Authorizer: POLICY" in out
        assert 'Licensees: "KWebCom"' in out
        assert out.count("KeyNote-Version") == 6  # 1 policy + 5 memberships

    def test_comprehend_recovers_policy(self, credentials_file, capsys):
        assert main(["comprehend", "--credentials", credentials_file]) == 0
        out = capsys.readouterr().out
        recovered = policy_from_json(out)
        assert recovered == salaries_policy()

    def test_encode_comprehend_pipeline(self, policy_file, tmp_path, capsys):
        main(["encode", "--policy", policy_file])
        creds = capsys.readouterr().out
        path = tmp_path / "pipeline.kn"
        path.write_text(creds)
        assert main(["comprehend", "--credentials", str(path)]) == 0
        recovered = policy_from_json(capsys.readouterr().out)
        assert recovered == salaries_policy()


class TestQuery:
    def test_allowed_query_exits_zero(self, credentials_file, capsys):
        code = main(["query", "--credentials", credentials_file,
                     "--authorizer", "Kbob",
                     "--attr", "app_domain=WebCom",
                     "--attr", "Domain=Finance", "--attr", "Role=Manager",
                     "--attr", "ObjectType=SalariesDB",
                     "--attr", "Permission=read"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_denied_query_exits_one(self, credentials_file, capsys):
        code = main(["query", "--credentials", credentials_file,
                     "--authorizer", "Kdave",
                     "--attr", "app_domain=WebCom",
                     "--attr", "Domain=Sales", "--attr", "Role=Assistant",
                     "--attr", "ObjectType=SalariesDB",
                     "--attr", "Permission=read"])
        assert code == 1
        assert capsys.readouterr().out.strip() == "false"

    def test_bad_attr_syntax(self, credentials_file, capsys):
        code = main(["query", "--credentials", credentials_file,
                     "--authorizer", "Kbob", "--attr", "no-equals-sign"])
        assert code == 2


class TestCheck:
    def test_allow(self, policy_file, capsys):
        code = main(["check", "--policy", policy_file, "--user", "Bob",
                     "--object-type", "SalariesDB", "--permission", "read"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "allow"

    def test_deny(self, policy_file, capsys):
        code = main(["check", "--policy", policy_file, "--user", "Dave",
                     "--object-type", "SalariesDB", "--permission", "read"])
        assert code == 1
        assert capsys.readouterr().out.strip() == "deny"


class TestDemo:
    def test_demo_round_trip(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "round-trip exact: True" in out

    def test_demo_emit_policy(self, capsys):
        assert main(["demo", "--emit-policy"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["has_permission"]) == 4


class TestTrace:
    def test_trace_renders_correlated_tree(self, capsys):
        assert main(["trace", "--depth", "2", "--clients", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace corr-")
        for name in ("master.run_graph", "master.schedule", "net.execute",
                     "client.execute", "stack.mediate",
                     "stack.layer.TRUST_MANAGEMENT"):
            assert name in out

    def test_trace_json_bundle(self, capsys):
        assert main(["trace", "--depth", "2", "--clients", "1",
                     "--json"]) == 0
        bundle = json.loads(capsys.readouterr().out)
        assert set(bundle) == {"clock", "trace", "metrics"}
        assert any(s["name"] == "master.schedule" for s in bundle["trace"])

    def test_trace_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["trace", "--depth", "2", "--clients", "1", "--json",
                     "--out", str(target)]) == 0
        assert f"wrote {target}" in capsys.readouterr().out
        assert json.loads(target.read_text())["trace"]


class TestMetrics:
    def test_metrics_table(self, capsys):
        assert main(["metrics", "--depth", "2", "--clients", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("master.schedule.ok", "keynote.memo.miss",
                     "net.latency", "stack.mediate.allow"):
            assert name in out

    def test_metrics_json(self, capsys):
        assert main(["metrics", "--depth", "2", "--clients", "1",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["master.schedule.ok"]["value"] == 2
        assert data["keynote.memo.miss"]["value"] > 0

    def test_metrics_summary_header(self, capsys):
        assert main(["metrics", "--depth", "2", "--clients", "1",
                     "--summary"]) == 0
        out = capsys.readouterr().out
        assert "spans across" in out

    def test_faulted_run_reports_retries(self, capsys):
        assert main(["metrics", "--faults", "--seed", "7", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["master.retries"]["value"] > 0
        assert data["net.dropped"]["value"] > 0


class TestDurability:
    def test_renders_site_table(self, capsys):
        assert main(["durability", "--seeds", "2", "--ops", "18"]) == 0
        out = capsys.readouterr().out
        assert "injected crashes recovered" in out
        assert "write site" in out
        assert "wal.append.synced" in out
        assert "snapshot.renamed" in out
        assert "acknowledged updates lost: 0" in out

    def test_json_report_shape(self, capsys):
        assert main(["durability", "--seeds", "2", "--ops", "18",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["report"] == "DURABILITY_6"
        assert report["ok"] is True
        assert report["seeds"] == 2
        assert report["crashes"] == report["crash_runs"] > 0
        assert "wal.append.body" in report["sites"]

    def test_check_passes_on_clean_sweep(self, capsys):
        assert main(["durability", "--seeds", "2", "--ops", "18",
                     "--check"]) == 0
        assert capsys.readouterr().err == ""

    def test_check_fails_on_lossy_sweep(self, monkeypatch, capsys):
        import repro.store.harness as harness
        real_sweep = harness.run_durability_sweep

        def lossy(seeds, ops, base_dir=None):
            report = real_sweep(1, 18, base_dir=base_dir)
            report["ok"] = False
            report["acked_loss_total"] = 3
            return report

        monkeypatch.setattr(harness, "run_durability_sweep", lossy)
        assert main(["durability", "--seeds", "1", "--json",
                     "--check"]) == 1
        err = capsys.readouterr().err
        assert "durability check failed" in err
        assert "3 acknowledged update(s) lost" in err

    def test_out_writes_report_file(self, tmp_path, capsys):
        target = tmp_path / "DURABILITY_6.json"
        assert main(["durability", "--seeds", "2", "--ops", "18", "--json",
                     "--out", str(target)]) == 0
        assert f"wrote {target}" in capsys.readouterr().out
        assert json.loads(target.read_text())["report"] == "DURABILITY_6"


class TestBenchEngine:
    _SMALL = ["bench-engine", "--users", "2000", "--roles", "200",
              "--batch", "500", "--set-based-sample", "20"]

    def test_text_report(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "bench-engine: 2000 users" in out
        assert "cold speedup" in out

    def test_check_passes_at_small_scale(self, capsys):
        assert main(self._SMALL + ["--check"]) == 0
        assert capsys.readouterr().err == ""

    def test_check_fails_on_disagreement(self, monkeypatch, capsys):
        import repro.rbac.bench as bench
        real_run = bench.run_engine_bench

        def disagreeing(**kwargs):
            report = real_run(**kwargs)
            report["oracle"]["disagreements"] = 2
            return report

        monkeypatch.setattr(bench, "run_engine_bench", disagreeing)
        assert main(self._SMALL + ["--json", "--check"]) == 1
        assert "oracle disagreement" in capsys.readouterr().err

    def test_out_writes_json_artifact(self, tmp_path, capsys):
        target = tmp_path / "BENCH_8.json"
        assert main(self._SMALL + ["--json", "--out", str(target)]) == 0
        assert f"wrote {target}" in capsys.readouterr().out
        report = json.loads(target.read_text())
        assert report["bench"] == "BENCH_8"
        assert report["oracle"]["disagreements"] == 0

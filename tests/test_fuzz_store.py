"""Property-based tests for the durable store's codec and recovery.

Two families:

- **codec round-trips**: arbitrary JSON-able payloads survive
  ``encode_record`` / ``scan_records`` and a WAL append/reopen cycle
  byte-exactly;
- **damage tolerance**: for *any* single truncation or byte corruption of
  a valid log file, recovery either returns a clean prefix of the original
  records or refuses with :class:`~repro.errors.CorruptLogError` — it
  never crashes with an unrelated exception and never invents or reorders
  records (silent divergence).
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptLogError
from repro.store.wal import (HEADER_SIZE, WriteAheadLog, encode_header,
                             encode_record, scan_records)

# JSON-able payload objects (records are always dicts at the top level).
SCALARS = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20))
VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(st.lists(children, max_size=4),
                               st.dictionaries(st.text(max_size=8),
                                               children, max_size=4)),
    max_leaves=10)
PAYLOADS = st.dictionaries(st.text(max_size=10), VALUES, max_size=5)


class TestCodecRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(PAYLOADS, max_size=6))
    def test_encode_scan_roundtrip(self, payloads):
        data = b"".join(encode_record(p) for p in payloads)
        result = scan_records(data)
        # canonical-JSON comparison: scan returns exactly what went in
        # (floats round-trip through json.dumps/loads identically)
        expected = [json.loads(json.dumps(p)) for p in payloads]
        assert result.records == expected
        assert result.clean_length == len(data)
        assert result.truncated_bytes == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(PAYLOADS, min_size=1, max_size=5))
    def test_wal_append_reopen_roundtrip(self, tmp_path_factory, payloads):
        root = tmp_path_factory.mktemp("wal")
        wal = WriteAheadLog(root / "wal.log").open()
        for payload in payloads:
            wal.append(payload)
        wal.close()
        again = WriteAheadLog(root / "wal.log").open()
        expected = [json.loads(json.dumps(p)) for p in payloads]
        assert [p for _l, p in again.records()] == expected
        again.close()


def _valid_log(payloads):
    return encode_header(0) + b"".join(encode_record(p) for p in payloads)


def _recover(root, data):
    """Open a WAL over ``data``; returns (records, error)."""
    path = root / "wal.log"
    path.write_bytes(data)
    wal = WriteAheadLog(path)
    try:
        wal.open()
    except CorruptLogError as exc:
        return None, exc
    try:
        return [p for _l, p in wal.records()], None
    finally:
        wal.close()


SMALL_PAYLOADS = st.lists(
    st.dictionaries(st.text(max_size=6), st.integers(0, 999), min_size=1,
                    max_size=3),
    min_size=1, max_size=4)


class TestDamageTolerance:
    @settings(max_examples=150, deadline=None)
    @given(SMALL_PAYLOADS, st.data())
    def test_any_truncation_recovers_clean_prefix(self, tmp_path_factory,
                                                  payloads, data):
        original = _valid_log(payloads)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(original) - 1))
        records, error = _recover(tmp_path_factory.mktemp("t"),
                                  original[:cut])
        expected = [json.loads(json.dumps(p)) for p in payloads]
        if error is not None:
            # truncation inside the header with records after it cannot
            # happen (we cut the tail), so refusal is never the outcome
            raise AssertionError(f"truncation refused: {error}")
        assert records == expected[:len(records)], "not a clean prefix"

    @settings(max_examples=200, deadline=None)
    @given(SMALL_PAYLOADS, st.data())
    def test_any_single_byte_corruption_is_contained(self, tmp_path_factory,
                                                     payloads, data):
        original = _valid_log(payloads)
        index = data.draw(st.integers(min_value=0,
                                      max_value=len(original) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        damaged = bytearray(original)
        damaged[index] ^= flip
        records, error = _recover(tmp_path_factory.mktemp("c"),
                                  bytes(damaged))
        if error is not None:
            return  # structured refusal is a correct outcome
        expected = [json.loads(json.dumps(p)) for p in payloads]
        # Never silent divergence: whatever survives is a clean prefix of
        # the original history, possibly with the damaged record dropped.
        assert records == expected[:len(records)] or (
            index < HEADER_SIZE and records == []), (
            f"diverged after flipping byte {index}")

    @settings(max_examples=100, deadline=None)
    @given(SMALL_PAYLOADS, st.binary(max_size=30))
    def test_arbitrary_garbage_tail_never_crashes(self, tmp_path_factory,
                                                  payloads, garbage):
        original = _valid_log(payloads)
        records, error = _recover(tmp_path_factory.mktemp("g"),
                                  original + garbage)
        if error is None:
            expected = [json.loads(json.dumps(p)) for p in payloads]
            assert records[:len(payloads)] == expected, \
                "acknowledged records must survive a garbage tail"

"""Tests for the SPKI delegation backend and backend agreement (footnote 1)."""

import pytest

from repro.core.decentralisation import DelegationService
from repro.core.spki_backend import SPKIDelegationService
from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.spki.cert import Validity


@pytest.fixture
def spki() -> SPKIDelegationService:
    return SPKIDelegationService(Keystore(), "KWebCom")


class TestSPKIBackend:
    def test_grant_and_check(self, spki):
        spki.grant_role("Kclaire", "Sales", "Manager")
        assert spki.holds_role("Kclaire", "Sales", "Manager")
        assert not spki.holds_role("Kclaire", "Finance", "Manager")

    def test_delegation_chain(self, spki):
        spki.grant_role("Kclaire", "Sales", "Manager")
        spki.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        assert spki.holds_role("Kfred", "Sales", "Manager")

    def test_figure67_literal_chain_dead(self, spki):
        spki.grant_role("Kclaire", "Finance", "Manager")
        spki.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        assert not spki.holds_role("Kfred", "Sales", "Manager")

    def test_propagate_bit_gates_redelegation(self, spki):
        spki.grant_role("Kclaire", "Sales", "Manager")
        spki.delegate_role("Kclaire", "Kfred", "Sales", "Manager",
                           delegatable=False)
        spki.delegate_role("Kfred", "Kgina", "Sales", "Manager")
        assert spki.holds_role("Kfred", "Sales", "Manager")
        # Fred's cert has no propagate bit, so Gina's chain is dead.
        assert not spki.holds_role("Kgina", "Sales", "Manager")

    def test_revocation(self, spki):
        grant = spki.grant_role("Kclaire", "Sales", "Manager")
        delegation = spki.delegate_role("Kclaire", "Kfred", "Sales",
                                        "Manager")
        assert spki.revoke(delegation)
        assert not spki.holds_role("Kfred", "Sales", "Manager")
        assert spki.holds_role("Kclaire", "Sales", "Manager")
        assert spki.revoke(grant)
        assert not spki.holds_role("Kclaire", "Sales", "Manager")
        assert not spki.revoke(grant)

    def test_validity_expiry(self):
        spki = SPKIDelegationService(Keystore(), "KWebCom",
                                     validity=Validity(0.0, 100.0))
        spki.grant_role("Kclaire", "Sales", "Manager")
        assert spki.holds_role("Kclaire", "Sales", "Manager", at_time=50.0)
        assert not spki.holds_role("Kclaire", "Sales", "Manager",
                                   at_time=150.0)

    def test_members_of_name_audit(self, spki):
        spki.grant_role("Kclaire", "Sales", "Manager")
        spki.grant_role("Kelaine", "Sales", "Manager")
        assert spki.members_of("Sales", "Manager") == {"Kclaire", "Kelaine"}


class TestBackendAgreement:
    """The footnote-1 claim, executed: KeyNote and SPKI backends answer the
    same delegation scenarios identically."""

    SCENARIOS = [
        # (grants, delegations, queries)
        ([("Kclaire", "Sales", "Manager")],
         [("Kclaire", "Kfred", "Sales", "Manager")],
         [("Kfred", "Sales", "Manager", True),
          ("Kfred", "Finance", "Manager", False)]),
        ([("Kclaire", "Finance", "Manager")],
         [("Kclaire", "Kfred", "Sales", "Manager")],
         [("Kfred", "Sales", "Manager", False),
          ("Kclaire", "Finance", "Manager", True)]),
        ([("Ka", "D", "R"), ("Kb", "D", "R")],
         [("Ka", "Kc", "D", "R"), ("Kc", "Kd", "D", "R")],
         [("Kc", "D", "R", True), ("Kd", "D", "R", True)]),
        ([],
         [("Kx", "Ky", "D", "R")],
         [("Ky", "D", "R", False)]),
    ]

    @pytest.mark.parametrize("grants,delegations,queries", SCENARIOS)
    def test_backends_agree(self, grants, delegations, queries):
        keystore_kn = Keystore()
        keynote = DelegationService(KeyNoteSession(keystore=keystore_kn),
                                    keystore_kn, "KWebCom")
        keynote.admit_administrator()
        spki = SPKIDelegationService(Keystore(), "KWebCom")

        for user_key, domain, role in grants:
            keynote.grant_role(user_key, domain, role)
            spki.grant_role(user_key, domain, role)
        for from_key, to_key, domain, role in delegations:
            # Make sure the issuer key exists in both keystores even when
            # it was never granted anything.
            keystore_kn.create(from_key)
            spki.keystore.create(from_key)
            keynote.delegate_role(from_key, to_key, domain, role)
            spki.delegate_role(from_key, to_key, domain, role,
                               delegatable=True)
        for user_key, domain, role, expected in queries:
            assert keynote.holds_role(user_key, domain, role) == expected
            assert spki.holds_role(user_key, domain, role) == expected

"""Tests for the framework facade and its five policy services."""

import pytest

from repro.core.framework import HeterogeneousSecurityFramework
from repro.core.scenarios import salaries_policy
from repro.errors import KeyComError
from repro.middleware.complus import COM_PERMISSIONS, ComPlusCatalogue
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.diff import PolicyDelta
from repro.rbac.model import Assignment, Grant
from repro.translate.migrate import DomainMapping
from repro.webcom.keycom import PolicyUpdateRequest


@pytest.fixture
def framework() -> HeterogeneousSecurityFramework:
    return HeterogeneousSecurityFramework()


@pytest.fixture
def ejb() -> EJBServer:
    return EJBServer(host="hostx", server_name="ejb1")


EJB_DOMAIN = "hostx:ejb1/Payroll"


def ejb_policy():
    """The salaries policy addressed to the EJB server's domain scheme."""
    source = salaries_policy()
    remapped = type(source)("ejb-salaries")
    for grant in source.grants:
        remapped.grant(EJB_DOMAIN, grant.role, grant.object_type,
                       grant.permission)
    for assignment in source.assignments:
        remapped.assign(assignment.user, EJB_DOMAIN, assignment.role)
    return remapped


class TestConfiguration:
    def test_configure_pushes_to_middleware(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        report = framework.configure(ejb_policy())
        assert report.is_consistent()
        assert ejb.invoke("Alice", "SalariesDB", "write")
        assert not ejb.invoke("Alice", "SalariesDB", "read")
        assert ejb.invoke("Bob", "SalariesDB", "read")

    def test_configure_issues_credentials(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        # Memberships became KeyNote credentials automatically.
        assert framework.delegation.holds_role("Kalice", EJB_DOMAIN, "Clerk")
        assert not framework.delegation.holds_role("Kalice", EJB_DOMAIN,
                                                   "Manager")


class TestComprehension:
    def test_comprehend_middleware_policies(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        result = framework.comprehend()
        assert result.policy == ejb_policy()
        assert result.conflicts == ()
        assert result.policy_credential.is_policy
        assert len(result.membership_credentials) == 5

    def test_comprehension_round_trip(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        result = framework.comprehend()
        recovered = framework.comprehend_from_credentials(
            [result.policy_credential, *result.membership_credentials])
        assert recovered == result.policy


class TestMigration:
    def test_migrate_between_registered_middleware(self, framework, ejb):
        windows = WindowsSecurity()
        com = ComPlusCatalogue("machine-z", windows)
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.register_middleware(com, {"Finance", "Sales"})
        framework.configure(ejb_policy())
        report = framework.migrate(
            ejb.name, com.name,
            DomainMapping.to_single("Finance"),
            target_permissions=COM_PERMISSIONS)
        assert report.migrated_grants > 0
        assert com.invoke("Finance\\Alice", "SalariesDB", "Access")


class TestMaintenance:
    def test_apply_change_propagates_and_reissues_credentials(self, framework,
                                                              ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        delta = PolicyDelta(added_assignments=frozenset(
            {Assignment("Fred", EJB_DOMAIN, "Manager")}))
        report = framework.apply_change(delta)
        assert report.is_consistent()
        assert ejb.invoke("Fred", "SalariesDB", "read")
        assert framework.delegation.holds_role("Kfred", EJB_DOMAIN, "Manager")

    def test_consistency_detects_out_of_band_change(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        # Someone edits the middleware policy behind the framework's back.
        ejb.unassign_role("Payroll", "Clerk", "Alice")
        report = framework.check_consistency()
        assert not report.is_consistent()
        assert ejb.name in report.inconsistent_systems()


class TestDecentralisation:
    def test_delegation_chain(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        # Claire delegates her Manager role to Fred — but Claire holds
        # Sales... here EJB_DOMAIN/Manager is held by Bob; use Bob.
        framework.delegation.delegate_role("Kbob", "Kfred", EJB_DOMAIN,
                                           "Manager")
        assert framework.delegation.holds_role("Kfred", EJB_DOMAIN, "Manager")

    def test_delegation_of_unheld_role_ineffective(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        # Dave (Assistant) delegates Manager: the chain must not grant it.
        framework.delegation.delegate_role("Kdave", "Kfred", EJB_DOMAIN,
                                           "Manager")
        assert not framework.delegation.holds_role("Kfred", EJB_DOMAIN,
                                                   "Manager")

    def test_keycom_round_trip(self, framework, ejb):
        service = framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        credential = framework.delegation.grant_role("Kfred", EJB_DOMAIN,
                                                     "Clerk")
        request = PolicyUpdateRequest(
            user="Fred", user_key="Kfred", domain=EJB_DOMAIN, role="Clerk",
            credentials=(credential,))
        assert service.submit(request)
        assert ejb.invoke("Fred", "SalariesDB", "write")

    def test_keycom_rejects_unproven_request(self, framework, ejb):
        service = framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        request = PolicyUpdateRequest(
            user="Mallory", user_key="Kmallory", domain=EJB_DOMAIN,
            role="Manager", credentials=())
        framework.keystore.create("Kmallory")
        with pytest.raises(KeyComError):
            service.submit(request)
        assert not ejb.invoke("Mallory", "SalariesDB", "read")


class TestGlobalConstraints:
    def _framework(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        return framework

    def test_violating_change_rejected_atomically(self, framework, ejb):
        from repro.errors import ConstraintViolationError
        from repro.rbac.constraints import SoDConstraint

        fw = self._framework(framework, ejb)
        fw.add_constraint(SoDConstraint.exclusive(
            "clerk-manager", [(EJB_DOMAIN, "Clerk"), (EJB_DOMAIN, "Manager")]))
        delta = PolicyDelta(added_assignments=frozenset(
            {Assignment("Alice", EJB_DOMAIN, "Manager")}))  # Alice is Clerk
        with pytest.raises(ConstraintViolationError):
            fw.apply_change(delta)
        # Nothing leaked into the middleware or the global policy.
        assert not ejb.invoke("Alice", "SalariesDB", "read")
        assert Assignment("Alice", EJB_DOMAIN, "Manager") \
            not in fw.global_policy.assignments

    def test_conforming_change_applies(self, framework, ejb):
        from repro.rbac.constraints import SoDConstraint

        fw = self._framework(framework, ejb)
        fw.add_constraint(SoDConstraint.exclusive(
            "clerk-manager", [(EJB_DOMAIN, "Clerk"), (EJB_DOMAIN, "Manager")]))
        delta = PolicyDelta(added_assignments=frozenset(
            {Assignment("Gina", EJB_DOMAIN, "Manager")}))
        assert fw.apply_change(delta).is_consistent()
        assert ejb.invoke("Gina", "SalariesDB", "read")

    def test_pre_violated_constraint_rejected_at_registration(self, framework,
                                                              ejb):
        from repro.errors import ConstraintViolationError
        from repro.rbac.constraints import SoDConstraint

        fw = self._framework(framework, ejb)
        fw.global_policy.assign("Alice", EJB_DOMAIN, "Manager")
        with pytest.raises(ConstraintViolationError):
            fw.add_constraint(SoDConstraint.exclusive(
                "clerk-manager",
                [(EJB_DOMAIN, "Clerk"), (EJB_DOMAIN, "Manager")]))


class TestAccessDecisions:
    def test_figure1_matrix_through_credentials(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        matrix = [
            ("Kalice", "Clerk", "write", True),
            ("Kalice", "Clerk", "read", False),
            ("Kbob", "Manager", "read", True),
            ("Kbob", "Manager", "write", True),
            ("Kdave", "Assistant", "read", False),
        ]
        for key, role, permission, expected in matrix:
            got = framework.check_access_by_key(
                key, EJB_DOMAIN, role, "SalariesDB", permission)
            assert got == expected, (key, role, permission)

    def test_role_membership_does_not_bypass_grants(self, framework, ejb):
        """Holding a role never grants an action the HasPermission table
        doesn't list (the admin-root guard in DelegationService)."""
        framework.register_middleware(ejb, {EJB_DOMAIN})
        framework.configure(ejb_policy())
        assert framework.delegation.holds_role("Kdave", EJB_DOMAIN,
                                               "Assistant")
        assert not framework.check_access_by_key(
            "Kdave", EJB_DOMAIN, "Assistant", "SalariesDB", "read")

    def test_keycom_lookup(self, framework, ejb):
        framework.register_middleware(ejb, {EJB_DOMAIN})
        assert framework.keycom(ejb.name).middleware is ejb

    def test_user_key_convention(self, framework):
        assert framework.user_key("Claire") == "Kclaire"

"""Direct unit tests for the DelegationService (Section 4.5).

The integration suite (tests/integration/test_figure67_delegation.py) reads
the paper's Figure 6/7 scenario; this file pins each service method on its
own — credential shape, signing, chain evaluation, revocation — plus the
admit_administrator guard that keeps the role authority from answering
action-shaped queries.
"""

import pytest

from repro.core.decentralisation import DelegationService
from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.translate.common import WEBCOM_APP_DOMAIN


@pytest.fixture
def keystore():
    return Keystore()


@pytest.fixture
def service(keystore):
    session = KeyNoteSession(keystore=keystore)
    service = DelegationService(session, keystore, "KWebCom")
    service.admit_administrator()
    return service


class TestAdminRoot:
    def test_constructor_creates_the_admin_key(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        DelegationService(session, keystore, "Kroot")
        assert "Kroot" in keystore

    def test_admit_administrator_installs_a_policy_assertion(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        service = DelegationService(session, keystore, "KWebCom")
        credential = service.admit_administrator()
        assert credential.is_policy
        assert credential in session.policies

    def test_root_only_answers_membership_shaped_queries(self, service):
        """The guard conditions: holding a role must not leak into *action*
        queries (Permission/ObjectType present) through the admin root."""
        service.grant_role("Kclaire", "Finance", "Manager")
        assert service.holds_role("Kclaire", "Finance", "Manager")
        action = {"app_domain": WEBCOM_APP_DOMAIN, "Domain": "Finance",
                  "Role": "Manager", "Permission": "read",
                  "ObjectType": "SalariesDB"}
        assert not service.session.query(action, ["Kclaire"])


class TestGrantRole:
    def test_grant_is_signed_by_the_admin_key(self, service, keystore):
        credential = service.grant_role("Kclaire", "Finance", "Manager")
        assert credential.authorizer == "KWebCom"
        assert credential.verify(keystore)

    def test_grant_creates_the_user_key(self, service, keystore):
        assert "Knew" not in keystore
        service.grant_role("Knew", "Finance", "Clerk")
        assert "Knew" in keystore

    def test_granted_role_holds_only_for_that_pair(self, service):
        service.grant_role("Kclaire", "Finance", "Manager")
        assert service.holds_role("Kclaire", "Finance", "Manager")
        assert not service.holds_role("Kclaire", "Finance", "Clerk")
        assert not service.holds_role("Kclaire", "Sales", "Manager")
        assert not service.holds_role("Kother", "Finance", "Manager")


class TestDelegateRole:
    def test_effective_delegation_chain(self, service):
        service.grant_role("Kclaire", "Finance", "Manager")
        service.delegate_role("Kclaire", "Kfred", "Finance", "Manager")
        assert service.holds_role("Kfred", "Finance", "Manager")

    def test_delegation_without_holding_is_issuable_but_dead(self, service):
        # Claire holds Finance/Manager but never Sales/Manager: the
        # credential exists but the chain does not authorise Fred.
        service.grant_role("Kclaire", "Finance", "Manager")
        credential = service.delegate_role("Kclaire", "Kfred",
                                           "Sales", "Manager")
        assert credential in service.session.credentials
        assert not service.holds_role("Kfred", "Sales", "Manager")

    def test_two_level_chain(self, service):
        service.grant_role("Ka", "Finance", "Clerk")
        service.delegate_role("Ka", "Kb", "Finance", "Clerk")
        service.delegate_role("Kb", "Kc", "Finance", "Clerk")
        assert service.holds_role("Kc", "Finance", "Clerk")

    def test_delegation_cannot_widen_the_role(self, service):
        service.grant_role("Ka", "Finance", "Clerk")
        service.delegate_role("Ka", "Kb", "Finance", "Manager")
        assert not service.holds_role("Kb", "Finance", "Manager")


class TestRevocation:
    def test_revoking_the_link_kills_the_chain_tail(self, service):
        service.grant_role("Kclaire", "Finance", "Manager")
        link = service.delegate_role("Kclaire", "Kfred", "Finance", "Manager")
        assert service.holds_role("Kfred", "Finance", "Manager")
        assert service.revoke(link)
        assert not service.holds_role("Kfred", "Finance", "Manager")
        assert service.holds_role("Kclaire", "Finance", "Manager")

    def test_revoking_the_root_grant_kills_the_whole_chain(self, service):
        grant = service.grant_role("Kclaire", "Finance", "Manager")
        service.delegate_role("Kclaire", "Kfred", "Finance", "Manager")
        assert service.revoke(grant)
        assert not service.holds_role("Kclaire", "Finance", "Manager")
        assert not service.holds_role("Kfred", "Finance", "Manager")

    def test_revoke_unknown_credential_returns_false(self, service):
        grant = service.grant_role("Kclaire", "Finance", "Manager")
        assert service.revoke(grant)
        assert not service.revoke(grant)

    def test_revoke_leaves_other_credentials_standing(self, service):
        grant_a = service.grant_role("Ka", "Finance", "Clerk")
        service.grant_role("Kb", "Finance", "Auditor")
        assert service.revoke(grant_a)
        assert service.holds_role("Kb", "Finance", "Auditor")

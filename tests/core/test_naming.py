"""Tests for the global naming service (the Section-7 limitation)."""

import pytest

from repro.core.naming import GlobalNameService
from repro.errors import TranslationError
from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.model import Grant
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def names() -> GlobalNameService:
    service = GlobalNameService()
    service.bind("ejb-x", "SalariesBean", "SalariesDB")
    service.bind("com-y", "Payroll.Salaries", "SalariesDB")
    return service


class TestBindings:
    def test_resolution_both_ways(self, names):
        assert names.to_global("ejb-x", "SalariesBean") == "SalariesDB"
        assert names.to_local("ejb-x", "SalariesDB") == "SalariesBean"
        assert names.to_local("com-y", "SalariesDB") == "Payroll.Salaries"

    def test_unbound_names_pass_through(self, names):
        assert names.to_global("ejb-x", "OtherBean") == "OtherBean"
        assert names.to_local("ejb-x", "OtherDB") == "OtherDB"

    def test_is_bound(self, names):
        assert names.is_bound("ejb-x", "SalariesBean")
        assert not names.is_bound("ejb-x", "Nope")

    def test_rebinding_same_is_idempotent(self, names):
        names.bind("ejb-x", "SalariesBean", "SalariesDB")

    def test_conflicting_forward_binding_rejected(self, names):
        with pytest.raises(TranslationError):
            names.bind("ejb-x", "SalariesBean", "OtherDB")

    def test_conflicting_reverse_binding_rejected(self, names):
        with pytest.raises(TranslationError):
            names.bind("ejb-x", "AnotherBean", "SalariesDB")

    def test_same_local_name_in_different_systems(self, names):
        # Systems have independent namespaces.
        names.bind("corba-z", "SalariesBean", "SomethingElse")
        assert names.to_global("corba-z", "SalariesBean") == "SomethingElse"

    def test_bindings_listing_sorted(self, names):
        listing = names.bindings()
        assert [(b.system, b.local_name) for b in listing] == [
            ("com-y", "Payroll.Salaries"), ("ejb-x", "SalariesBean")]


class TestPolicyRewriting:
    def test_canonicalise_and_localise_round_trip(self, names):
        policy = RBACPolicy.from_relations(
            "p", grants=[("D", "R", "SalariesBean", "read")],
            assignments=[("u", "D", "R")])
        canonical = names.canonicalise_policy(policy, "ejb-x")
        assert Grant("D", "R", "SalariesDB", "read") in canonical.grants
        back = names.localise_policy(canonical, "ejb-x")
        assert Grant("D", "R", "SalariesBean", "read") in back.grants
        assert back.assignments == policy.assignments

    def test_cross_system_unification(self, names):
        """The point of the service: two systems' extractions unify once
        canonicalised, so consistency checks compare like with like."""
        ejb = EJBServer(host="h", server_name="s")
        ejb.deploy_container("C")
        ejb.deploy_bean("C", "SalariesBean", methods=("read",))
        ejb.declare_role("C", "Clerk")
        ejb.add_method_permission("C", "SalariesBean", "Clerk", "read")

        windows = WindowsSecurity()
        windows.add_domain("h:s/C")  # same RBAC domain, COM-side
        com = ComPlusCatalogue("m", windows)
        com.create_application("Pay", nt_domain="h:s/C")
        com.register_component("Pay", "Payroll.Salaries")
        com.declare_role("Pay", "Clerk")
        com.grant_permission("Pay", "Clerk", "Payroll.Salaries", "Access")

        names2 = GlobalNameService()
        names2.bind(ejb.name, "SalariesBean", "SalariesDB")
        names2.bind(com.name, "Payroll.Salaries", "SalariesDB")
        ejb_view = names2.canonicalise_policy(ejb.extract_rbac(), ejb.name)
        com_view = names2.canonicalise_policy(com.extract_rbac(), com.name)
        assert {g.object_type for g in ejb_view.grants} == {"SalariesDB"}
        assert {g.object_type for g in com_view.grants} == {"SalariesDB"}

"""Tests for the canonical paper scenarios."""

from repro.core.scenarios import build_figure9_network, salaries_policy
from repro.rbac.model import Assignment, Grant


class TestSalariesPolicy:
    def test_figure1_tables(self):
        policy = salaries_policy()
        assert len(policy.grants) == 4
        assert len(policy.assignments) == 5
        assert Grant("Finance", "Manager", "SalariesDB", "write") in policy.grants
        assert Assignment("Dave", "Sales", "Assistant") in policy.assignments
        # "no access" row: Sales/Assistant has no grant at all.
        assert not any(g.role == "Assistant" for g in policy.grants)

    def test_fresh_instance_each_call(self):
        a = salaries_policy()
        b = salaries_policy()
        assert a == b
        a.grant("X", "Y", "Z", "w")
        assert a != b


class TestFigure9Network:
    def test_system_shapes(self):
        net = build_figure9_network()
        assert net.system_x.kind == "ejb"
        assert net.system_y.kind == "complus"
        assert net.system_z.kind == "complus"
        assert net.x_os.platform == "unix"
        assert net.y_os.platform == "windows"

    def test_y_carries_legacy_policy(self):
        net = build_figure9_network()
        assert net.system_y.invoke("Finance\\Alice", "SalariesDB", "Access")
        assert net.system_y.invoke("Finance\\Bob", "SalariesDB", "Launch")
        assert not net.system_y.invoke("Sales\\Dave", "SalariesDB", "Access")
        assert not net.system_y.invoke("Sales\\Claire", "SalariesDB",
                                       "Launch")

    def test_x_and_z_start_empty(self):
        net = build_figure9_network()
        assert net.system_x.extract_rbac().is_empty()
        assert net.system_z.extract_rbac().is_empty()

    def test_y_extraction_mirrors_figure1_shape(self):
        net = build_figure9_network()
        policy = net.system_y.extract_rbac()
        assert policy.domains() == {"Finance", "Sales"}
        assert policy.users() == {"Alice", "Bob", "Claire", "Dave", "Elaine"}
        # COM's vocabulary: Access plays read, Launch plays write.
        assert Grant("Finance", "Clerk", "SalariesDB", "Access") in policy.grants

    def test_x_os_configured(self):
        net = build_figure9_network()
        assert net.x_os.check("bob", "/srv/salaries.db", "write")
        assert net.x_os.check("alice", "/srv/salaries.db", "read")

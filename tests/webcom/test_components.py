"""Tests for the middleware-to-client operation bridge (L1 in the loop)."""

import pytest

from repro.errors import AccessDeniedError, SchedulingError
from repro.middleware.ejb import EJBServer
from repro.webcom.components import middleware_operations
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster


@pytest.fixture
def ejb() -> EJBServer:
    server = EJBServer(host="h", server_name="s")
    server.deploy_container("C")
    server.deploy_bean("C", "SalariesDB", methods=("read", "write"))
    server.declare_role("C", "Manager")
    server.add_method_permission("C", "SalariesDB", "Manager", "read")
    server.add_user("bob")
    server.assign_role("C", "Manager", "bob")
    return server


IMPLS = {
    ("SalariesDB", "read"): lambda: ["alice: 4200"],
    ("SalariesDB", "write"): lambda row: f"wrote {row}",
}


class TestOperationTable:
    def test_builds_guarded_operations(self, ejb):
        table = middleware_operations(ejb, "bob", IMPLS)
        assert set(table) == {"SalariesDB.read", "SalariesDB.write"}
        assert table["SalariesDB.read"]() == ["alice: 4200"]

    def test_denied_invocation_raises(self, ejb):
        table = middleware_operations(ejb, "bob", IMPLS)
        # Bob's role holds only read.
        with pytest.raises(AccessDeniedError):
            table["SalariesDB.write"]("row")

    def test_unknown_user_denied(self, ejb):
        table = middleware_operations(ejb, "mallory", IMPLS)
        with pytest.raises(AccessDeniedError):
            table["SalariesDB.read"]()

    def test_unserved_component_rejected(self, ejb):
        with pytest.raises(KeyError):
            middleware_operations(ejb, "bob",
                                  {("NoSuchBean", "read"): lambda: None})


class TestDistributedL1Enforcement:
    def graph(self, op):
        g = CondensedGraph("g")
        g.add_node("n", operator=op, arity=0)
        g.set_exit("n")
        return g

    def test_authorised_middleware_call_over_network(self, ejb):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        client = WebComClient("bob-node", net,
                              middleware_operations(ejb, "bob", IMPLS),
                              user="bob")
        client.register_with("m")
        net.run_until_quiet()
        assert master.run_graph(self.graph("SalariesDB.read"), {}) \
            == ["alice: 4200"]

    def test_middleware_denial_surfaces_as_scheduling_failure(self, ejb):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        client = WebComClient("bob-node", net,
                              middleware_operations(ejb, "bob", IMPLS),
                              user="bob")
        client.register_with("m")
        net.run_until_quiet()
        with pytest.raises(SchedulingError):
            master.run_graph(self.graph("SalariesDB.write"), {})

    def test_failover_to_authorised_user(self, ejb):
        """L1 policies differ per client user: the master routes around a
        client whose middleware denies the call."""
        ejb.add_user("alice")  # registered but holds no role
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        alice_node = WebComClient(
            "alice-node", net, middleware_operations(ejb, "alice", IMPLS),
            user="alice")
        bob_node = WebComClient(
            "bob-node", net, middleware_operations(ejb, "bob", IMPLS),
            user="bob")
        alice_node.register_with("m")
        bob_node.register_with("m")
        net.run_until_quiet()
        result = master.run_graph(self.graph("SalariesDB.read"), {})
        assert result == ["alice: 4200"]
        # alice-node was tried first (sorted order), failed on L1, and the
        # master moved on to bob-node.
        assert master.schedule_log == [("n", "bob-node")]

"""End-to-end acceptance for the unified observability layer.

One Figure-3 run must yield ONE correlated trace: the master's schedule
decision, the network flights, the client-side L0-L3 stack mediation (with
per-layer spans, real simulated timestamps and the TM query) and any
fault-injected retries all share the run's correlation id.
"""

import pytest

from repro.webcom.scenario import run_observed_scenario


@pytest.fixture(scope="module")
def clean_run():
    return run_observed_scenario(depth=4, n_clients=2, faults=False)


@pytest.fixture(scope="module")
def faulted_run():
    return run_observed_scenario(depth=4, n_clients=2, faults=True, seed=7)


class TestCorrelatedTrace:
    def test_pipeline_still_computes(self, clean_run):
        assert clean_run.result == 4

    def test_one_story_one_correlation(self, clean_run):
        corr = clean_run.correlation_id
        assert corr is not None
        tracer = clean_run.obs.tracer
        for name in ("master.run_graph", "master.schedule", "engine.fire",
                     "net.execute", "net.result", "client.execute",
                     "stack.mediate", "stack.layer.TRUST_MANAGEMENT",
                     "keynote.query"):
            spans = tracer.find(name, corr)
            assert spans, f"no {name} span in the run correlation"
            assert all(s.correlation_id == corr for s in spans)

    def test_schedule_spans_one_per_stage(self, clean_run):
        schedules = clean_run.obs.tracer.find("master.schedule",
                                              clean_run.correlation_id)
        assert len(schedules) == 4
        assert {s.status for s in schedules} == {"ok"}
        assert {s.attributes["node"] for s in schedules} == \
               {"n000", "n001", "n002", "n003"}

    def test_remote_spans_parent_onto_the_schedule(self, clean_run):
        tracer = clean_run.obs.tracer
        corr = clean_run.correlation_id
        schedule_ids = {s.span_id
                        for s in tracer.find("master.schedule", corr)}
        for flight in tracer.find("net.execute", corr):
            assert flight.parent_id in schedule_ids
        for execute in tracer.find("client.execute", corr):
            assert execute.parent_id in schedule_ids

    def test_mediation_nests_under_client_execute(self, clean_run):
        tracer = clean_run.obs.tracer
        corr = clean_run.correlation_id
        execute_ids = {s.span_id for s in tracer.find("client.execute", corr)}
        mediations = tracer.find("stack.mediate", corr)
        assert mediations
        for mediate in mediations:
            assert mediate.parent_id in execute_ids
            assert mediate.status == "allow"
            layer = tracer.find("stack.layer.TRUST_MANAGEMENT", corr)
            assert any(s.parent_id == mediate.span_id for s in layer)

    def test_timestamps_are_real_simulated_time(self, clean_run):
        corr = clean_run.correlation_id
        spans = clean_run.obs.tracer.find(correlation_id=corr)
        root = clean_run.obs.tracer.find("master.run_graph", corr)[0]
        assert root.duration > 0
        for span in spans:
            assert root.start <= span.start <= span.end <= root.end
        # Network flights actually take simulated time.
        flights = clean_run.obs.tracer.find("net.execute", corr)
        assert all(f.duration > 0 for f in flights)


class TestMetrics:
    def test_decision_counters(self, clean_run):
        metrics = clean_run.obs.metrics
        assert metrics.counter("master.schedule.ok").value == 4
        assert metrics.counter("engine.fired").value == 4
        assert metrics.counter("stack.mediate.allow").value > 0
        assert metrics.counter("stack.mediate.deny").value == 0
        assert metrics.counter(
            "stack.layer.TRUST_MANAGEMENT.allow").value > 0

    def test_keynote_profile_is_mirrored(self, clean_run):
        metrics = clean_run.obs.metrics
        assert metrics.counter("keynote.queries").value > 0
        assert metrics.counter("keynote.memo.miss").value > 0
        assert metrics.histogram("keynote.fixpoint_depth").count > 0

    def test_latency_histograms(self, clean_run):
        metrics = clean_run.obs.metrics
        assert metrics.histogram("net.latency").count > 0
        assert metrics.histogram("engine.node_latency").count == 4
        assert metrics.histogram("master.schedule_latency").count == 4

    def test_audit_timestamps_use_the_clock(self, clean_run):
        audit = clean_run.env.audit
        assert len(audit) > 0
        # The seed bug stamped every mediation at t=0.0; mediations now
        # happen at real simulated times, strictly after the handshake.
        mediations = audit.find(category="stack.mediate")
        assert mediations
        assert all(r.timestamp > 0 for r in mediations)
        assert clean_run.obs.metrics.counter(
            "audit.stack.mediate.allow").value == len(mediations)


class TestFaultedRun:
    def test_retries_happen_and_stay_in_correlation(self, faulted_run):
        assert faulted_run.result == 4
        metrics = faulted_run.obs.metrics
        retries = metrics.counter("master.retries").value
        assert retries > 0
        assert metrics.counter("net.dropped").value > 0
        corr = faulted_run.correlation_id
        tracer = faulted_run.obs.tracer
        dropped = [s for s in tracer.find(correlation_id=corr)
                   if s.status == "dropped"]
        assert dropped, "dropped flights must stay inside the run trace"
        # Re-sends show up as extra execute flights in the same correlation.
        flights = tracer.find("net.execute", corr)
        assert len(flights) > 4

    def test_faulted_trace_is_still_one_story(self, faulted_run):
        corr = faulted_run.correlation_id
        tracer = faulted_run.obs.tracer
        in_corr = tracer.find(correlation_id=corr)
        # Everything after the registration handshake belongs to the run:
        # the handshake spans are the only other correlations.
        assert len(in_corr) > len(tracer.spans) / 2

    def test_determinism_same_seed_same_trace(self, faulted_run):
        again = run_observed_scenario(depth=4, n_clients=2, faults=True,
                                      seed=7)
        assert again.result == faulted_run.result
        assert [(s.name, s.start, s.end, s.status)
                for s in again.obs.tracer.spans] == \
               [(s.name, s.start, s.end, s.status)
                for s in faulted_run.obs.tracer.spans]
        assert again.obs.metrics.snapshot() == \
               faulted_run.obs.metrics.snapshot()

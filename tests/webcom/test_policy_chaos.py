"""Policy-plane chaos: degraded mediation + partition/reconcile convergence.

The sweep counterpart of ``tests/webcom/test_chaos.py``: instead of
attacking the network under the scheduling protocol, each seed attacks the
*policy plane* — times out mediation-layer backends and partitions a policy
replica — and asserts the degraded-mode invariants hold and anti-entropy
reconciliation converges the replicas byte-identically.
"""

import pytest

from repro.webcom.scenario import (CHAOS_DOMAIN_B, PolicyChaosRun,
                                   run_policy_chaos_scenario)

pytestmark = pytest.mark.slow  # 20-seed module-scoped chaos sweep

SWEEP_SEEDS = range(20)


@pytest.fixture(scope="module")
def sweep():
    """One chaos run per seed (module-scoped: the sweep is the expensive
    part, every test below reads it)."""
    return {seed: run_policy_chaos_scenario(seed) for seed in SWEEP_SEEDS}


class TestPolicyChaosSweep:
    def test_every_seed_converges(self, sweep):
        not_converged = [seed for seed, run in sweep.items()
                         if not run.converged]
        assert not_converged == []

    def test_sweep_exercises_degradation(self, sweep):
        # The sweep must actually attack the stack: injected timeouts,
        # degraded mediations and stale serves all occur across the seeds.
        assert sum(r.injected_timeouts for r in sweep.values()) > 10
        assert sum(len([d for d in r.decisions if d["degraded"]])
                   for r in sweep.values()) > 10
        assert sum(r.stack_health["stale_served"]
                   for r in sweep.values()) > 0

    def test_fail_closed_layer_denies_while_degraded(self, sweep):
        # TRUST_MANAGEMENT is fail-closed: any mediation degraded on TM
        # (and not rescued by a higher fail-static layer) must deny.
        for run in sweep.values():
            for d in run.decisions:
                if "TRUST_MANAGEMENT" in d["degraded"] and not d["stale"]:
                    assert not d["allowed"], (run.seed, d)

    def test_fail_static_serves_are_marked_stale(self, sweep):
        # Every allowed degraded decision must be disclosed: stale-marked
        # (the scenario configures no fail-open layer).
        for run in sweep.values():
            for d in run.decisions:
                if d["degraded"] and d["allowed"]:
                    assert d["stale"], (run.seed, d)

    def test_replicas_byte_identical_after_reconcile(self, sweep):
        for run in sweep.values():
            for name in ("hostA:ejb", "hostB:ejb"):
                assert (run.engine.replica_digest(name)
                        == run.engine.expected_digest(name)), (run.seed, name)

    def test_partitioned_replica_missed_versions_then_caught_up(self, sweep):
        # At least one seed must have routed updates to the partitioned
        # DomB replica, forcing reconcile to replay them after heal.
        replayed_b = sum(r.reconcile_report.replayed.get("hostB:ejb", 0)
                         for r in sweep.values())
        assert replayed_b > 0
        for run in sweep.values():
            vector = run.propagation_health["applied_versions"]
            assert vector["hostB:ejb"] == run.propagation_health["version"]

    def test_duplicate_delivery_does_not_double_apply(self, sweep):
        # Each run re-delivers one already-applied update to hostA; the
        # applied-version vector must swallow it (digests already asserted
        # identical, so a double-apply would have to corrupt state to show;
        # check the audit trail records the duplicate explicitly).
        for run in sweep.values():
            if not run.redelivered:
                continue
            duplicates = [
                r for r in run.env.audit.find(category="propagate.delta")
                if r.outcome == "duplicate" and r.subject == "hostA:ejb"]
            assert duplicates, run.seed

    def test_breaker_transitions_surface_in_metrics(self, sweep):
        for run in sweep.values():
            transitions = sum(
                len(snap["transitions"])
                for snap in run.stack_health["breakers"].values())
            if not transitions:
                continue
            exported = sum(
                run.obs.metrics.counter(f"health.breaker.{state}").value
                for state in ("open", "half_open", "closed"))
            assert exported == transitions, run.seed

    def test_stale_serves_surface_in_metrics_and_spans(self, sweep):
        for run in sweep.values():
            stale = run.stack_health["stale_served"]
            assert run.obs.metrics.counter(
                "health.stale_served").value == stale
            spans = [s for s in run.obs.tracer.spans
                     if s.name == "health.stale_served"]
            assert len(spans) == stale, run.seed

    def test_reconcile_emits_health_metrics(self, sweep):
        for run in sweep.values():
            repaired = run.reconcile_report.total_repaired()
            assert run.obs.metrics.counter(
                "health.reconcile.repaired").value == repaired

    def test_deterministic_replay(self):
        a = run_policy_chaos_scenario(5)
        b = run_policy_chaos_scenario(5)
        assert a.summary() == b.summary()
        assert a.decisions == b.decisions


class TestPolicyChaosShape:
    def test_summary_is_json_able(self):
        import json

        run = run_policy_chaos_scenario(0, rounds=10, updates=3)
        text = json.dumps(run.summary())
        assert '"seed": 0' in text

    def test_partition_blocks_delivery_until_heal(self):
        run = run_policy_chaos_scenario(1, rounds=5, updates=4)
        assert isinstance(run, PolicyChaosRun)
        unreachable = [
            r for r in run.env.audit.find(category="propagate.delta")
            if r.outcome == "unreachable" and r.subject == "hostB:ejb"]
        routed_b = [u for u in run.engine.update_log
                    if any(g.domain == CHAOS_DOMAIN_B
                           for g in u.delta.added_grants)
                    or any(a.domain == CHAOS_DOMAIN_B
                           for a in u.delta.added_assignments)]
        # Every update was attempted while hostB was partitioned, so each
        # one shows up as an unreachable delivery.
        assert len(unreachable) == len(run.engine.update_log)
        assert run.reconcile_report.replayed["hostB:ejb"] >= len(routed_b)

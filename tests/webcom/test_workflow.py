"""Tests for L3 workflow security (separation/binding of duty)."""

import pytest

from repro.errors import AuthorisationError, SchedulingError
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.workflow import (
    BindingOfDuty,
    SeparationOfDuty,
    UserRestriction,
    WorkflowGuard,
    WorkflowPolicy,
    compose_filters,
    run_guarded,
)

OPS = {"initiate": lambda v: v, "approve": lambda v: v,
       "archive": lambda v: v}


def payment_graph() -> CondensedGraph:
    g = CondensedGraph("payment")
    g.add_node("initiate", operator="initiate", arity=1)
    g.add_node("approve", operator="approve", arity=1)
    g.add_node("archive", operator="archive", arity=1)
    g.connect("initiate", "approve", 0)
    g.connect("approve", "archive", 0)
    g.entry("amount", "initiate", 0)
    g.set_exit("archive")
    return g


class TestConstraintSemantics:
    def test_separation_of_duty(self):
        sod = SeparationOfDuty("init-approve",
                               frozenset({"initiate", "approve"}))
        assert sod.permits("approve", "bob", {"initiate": "alice"})
        assert not sod.permits("approve", "alice", {"initiate": "alice"})
        assert sod.permits("archive", "alice", {"initiate": "alice"})

    def test_binding_of_duty(self):
        bod = BindingOfDuty("same-user", frozenset({"a", "b"}))
        assert bod.permits("b", "alice", {"a": "alice"})
        assert not bod.permits("b", "bob", {"a": "alice"})
        assert bod.permits("a", "anyone", {})  # first node unconstrained

    def test_user_restriction(self):
        restriction = UserRestriction("only-managers", "approve",
                                      frozenset({"bob"}))
        assert restriction.permits("approve", "bob", {})
        assert not restriction.permits("approve", "alice", {})
        assert restriction.permits("other", "alice", {})

    def test_policy_builders_validate(self):
        with pytest.raises(ValueError):
            WorkflowPolicy().separate("x", "only-one")
        with pytest.raises(ValueError):
            WorkflowPolicy().bind("x", "only-one")
        with pytest.raises(ValueError):
            WorkflowPolicy().restrict("x", "node")

    def test_violations_on_complete_history(self):
        policy = WorkflowPolicy().separate("sod", "a", "b")
        assert policy.violations({"a": "alice", "b": "alice"}) == ["sod"]
        assert policy.violations({"a": "alice", "b": "bob"}) == []


def distributed_setup():
    net = SimulatedNetwork()
    master = WebComMaster("m", net)
    for cid, user in (("c-alice", "alice"), ("c-bob", "bob")):
        client = WebComClient(cid, net, OPS, user=user)
        client.register_with("m")
    net.run_until_quiet()
    return master


class TestGuardedExecution:
    def test_sod_forces_different_users(self):
        master = distributed_setup()
        policy = WorkflowPolicy().separate("init-approve", "initiate",
                                           "approve")
        guard = WorkflowGuard(policy)
        master.scheduler_filter = guard.filter
        result = run_guarded(master, guard, payment_graph(), {"amount": 100})
        assert result == 100
        assert guard.history["initiate"] != guard.history["approve"]

    def test_bod_forces_same_user(self):
        master = distributed_setup()
        policy = WorkflowPolicy().bind("same", "initiate", "archive")
        guard = WorkflowGuard(policy)
        master.scheduler_filter = guard.filter
        run_guarded(master, guard, payment_graph(), {"amount": 1})
        assert guard.history["initiate"] == guard.history["archive"]

    def test_restriction_places_on_named_user(self):
        master = distributed_setup()
        policy = WorkflowPolicy().restrict("approver", "approve", "bob")
        guard = WorkflowGuard(policy)
        master.scheduler_filter = guard.filter
        run_guarded(master, guard, payment_graph(), {"amount": 1})
        assert guard.history["approve"] == "bob"

    def test_unsatisfiable_constraints_block_scheduling(self):
        master = distributed_setup()
        # approve must be carol, but no client runs as carol.
        policy = WorkflowPolicy().restrict("approver", "approve", "carol")
        guard = WorkflowGuard(policy)
        master.scheduler_filter = guard.filter
        with pytest.raises(SchedulingError):
            run_guarded(master, guard, payment_graph(), {"amount": 1})

    def test_verify_catches_bypassed_filter(self):
        # The guard is installed for recording but NOT as the filter —
        # verify() must still catch the violation.
        master = distributed_setup()
        policy = WorkflowPolicy().separate("sod", "initiate", "approve",
                                           "archive")
        guard = WorkflowGuard(policy)
        # Two clients, three mutually-separated nodes: some pair collides.
        with pytest.raises(AuthorisationError):
            run_guarded(master, guard, payment_graph(), {"amount": 1})

    def test_reset_clears_history(self):
        guard = WorkflowGuard(WorkflowPolicy())
        guard.record("a", "alice")
        guard.reset()
        assert guard.history == {}


class TestComposition:
    def test_compose_filters_narrows(self):
        master = distributed_setup()
        policy = WorkflowPolicy().restrict("r", "approve", "bob")
        guard = WorkflowGuard(policy)
        only_alice = lambda node, ctx, cands: [  # noqa: E731
            c for c in cands if c.user == "alice"]
        master.scheduler_filter = compose_filters(guard.filter, only_alice)
        # approve needs bob (guard) AND alice (second filter): impossible.
        with pytest.raises(SchedulingError):
            run_guarded(master, guard, payment_graph(), {"amount": 1})

    def test_compose_filters_order_short_circuits(self):
        calls = []

        def f1(node, ctx, cands):
            calls.append("f1")
            return []

        def f2(node, ctx, cands):
            calls.append("f2")
            return cands

        combined = compose_filters(f1, f2)
        assert combined(None, {}, [1, 2]) == []
        assert calls == ["f1"]  # f2 never consulted once empty

"""Properties of the stacked-authorisation combinator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.middleware.ejb import EJBServer
from repro.os_sec.unixlike import UnixSecurity
from repro.webcom.stack import AuthorisationStack, MediationRequest

USERS = ("alice", "bob")
OPS = ("read", "write")


def build_world(os_allows, mw_allows, tm_allows):
    """Parts whose per-(user, op) decisions are given by the flag tables."""
    osec = UnixSecurity()
    for user in USERS:
        osec.add_user(user)
    # One object per (user, op) pattern is overkill; instead mediate via a
    # permissive object and targeted deny through mode bits is clumsy — use
    # the application predicate hooks for os/mw instead of real stores for
    # this property, and a real TM session.
    keystore = Keystore()
    session = KeyNoteSession(keystore=keystore)
    for user in USERS:
        keystore.create(f"K{user}")
        allowed_ops = [op for op in OPS if tm_allows.get((user, op))]
        if allowed_ops:
            ops = " || ".join(f'op=="{op}"' for op in allowed_ops)
            session.add_policy(
                f'Authorizer: POLICY\nLicensees: "K{user}"\n'
                f'Conditions: {ops};')
    return session


flag_tables = st.fixed_dictionaries(
    {(user, op): st.booleans() for user in USERS for op in OPS})


class TestStackProperties:
    @settings(max_examples=40, deadline=None)
    @given(flag_tables, flag_tables)
    def test_adding_a_layer_never_allows_more(self, tm_allows, app_allows):
        """Stack conjunction is monotone downwards: any stack with MORE
        layers allows a subset of what fewer layers allow."""
        session = build_world({}, {}, tm_allows)
        predicate = lambda request: app_allows[  # noqa: E731
            (request.user, request.operation)]

        tm_only = AuthorisationStack().plug_trust_management(session)
        both = (AuthorisationStack().plug_trust_management(session)
                .plug_application(predicate))
        for user in USERS:
            for op in OPS:
                request = MediationRequest(user=user, user_key=f"K{user}",
                                           object_type="T", operation=op)
                if both.check(request):
                    assert tm_only.check(request)

    @settings(max_examples=40, deadline=None)
    @given(flag_tables)
    def test_stack_equals_conjunction(self, tm_allows):
        """The full decision is exactly the AND of the layer decisions."""
        session = build_world({}, {}, tm_allows)
        always = AuthorisationStack().plug_trust_management(session) \
            .plug_application(lambda r: True)
        never = AuthorisationStack().plug_trust_management(session) \
            .plug_application(lambda r: False)
        for user in USERS:
            for op in OPS:
                request = MediationRequest(user=user, user_key=f"K{user}",
                                           object_type="T", operation=op)
                assert always.check(request) == tm_allows[(user, op)]
                assert not never.check(request)

    def test_layer_order_does_not_change_outcome(self):
        """Mediation order affects the trace, never the verdict (layers are
        independent predicates combined by AND)."""
        osec = UnixSecurity()
        osec.add_user("alice")
        osec.create_object("T", owner="alice", group="g", mode=0o600)
        ejb = EJBServer(host="h", server_name="s")
        ejb.deploy_container("C")
        ejb.deploy_bean("C", "T", methods=("read",))
        ejb.declare_role("C", "R")
        ejb.add_method_permission("C", "T", "R", "read")
        ejb.add_user("alice")
        ejb.assign_role("C", "R", "alice")
        keystore = Keystore()
        keystore.create("Kalice")
        session = KeyNoteSession(keystore=keystore)
        session.add_policy('Authorizer: POLICY\nLicensees: "Kalice"\n'
                           'Conditions: op=="read";')
        request = MediationRequest(user="alice", user_key="Kalice",
                                   object_type="T", operation="read")
        # Every permutation of plugging produces the same verdict.
        verdicts = set()
        for order in itertools.permutations(["os", "mw", "tm"]):
            stack = AuthorisationStack()
            for which in order:
                if which == "os":
                    stack.plug_os(osec)
                elif which == "mw":
                    stack.plug_middleware(ejb)
                else:
                    stack.plug_trust_management(session)
            verdicts.add(stack.check(request))
        assert verdicts == {True}

"""Tests for the KeyCOM decentralised administration service (Figure 8)."""

import pytest

from repro.crypto import Keystore
from repro.errors import KeyComError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.complus import ComPlusCatalogue
from repro.os_sec.windows import WindowsSecurity
from repro.translate.to_keynote import membership_conditions
from repro.util.events import AuditLog
from repro.webcom.keycom import KeyComService, PolicyUpdateRequest


@pytest.fixture
def setup():
    """Domain A's COM+ catalogue + KeyCOM, per Figure 8."""
    keystore = Keystore()
    for name in ("KWebCom", "Kuser", "Kmallory", "Kmanager"):
        keystore.create(name)
    windows = WindowsSecurity()
    windows.add_domain("DomainA")
    catalogue = ComPlusCatalogue("server-a", windows)
    catalogue.create_application("Payroll", nt_domain="DomainA")
    catalogue.register_component("Payroll", "SalariesDB")
    catalogue.declare_role("Payroll", "Clerk")
    catalogue.grant_permission("Payroll", "Clerk", "SalariesDB", "Access")

    audit = AuditLog()
    session = KeyNoteSession(keystore=keystore, audit=audit)
    # The local trust root: KWebCom administers role memberships.
    session.add_policy(
        'Authorizer: POLICY\nLicensees: "KWebCom"\n'
        'Conditions: app_domain=="WebCom";')
    service = KeyComService(catalogue, session, audit=audit)
    return keystore, catalogue, service, audit


def membership_credential(keystore, authorizer, user_key, domain, role):
    return Credential.build(
        authorizer=authorizer,
        licensees=f'"{user_key}"',
        conditions=membership_conditions(domain, role),
    ).sign(keystore.pair(authorizer).private)


class TestKeyCom:
    def test_valid_update_applies(self, setup):
        keystore, catalogue, service, _audit = setup
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(cred,))
        assert service.submit(request)
        # The Domain-B user is now integrated into Domain A's COM+ policy.
        assert catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")

    def test_no_credentials_rejected(self, setup):
        keystore, catalogue, service, _audit = setup
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=())
        with pytest.raises(KeyComError):
            service.submit(request)
        assert not catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")

    def test_self_signed_credential_rejected(self, setup):
        keystore, catalogue, service, _audit = setup
        # Mallory signs her own membership: the chain doesn't reach POLICY.
        forged = membership_credential(keystore, "Kmallory", "Kmallory",
                                       "DomainA", "Clerk")
        request = PolicyUpdateRequest(
            user="mallory", user_key="Kmallory", domain="DomainA",
            role="Clerk", credentials=(forged,))
        with pytest.raises(KeyComError):
            service.submit(request)

    def test_credential_for_other_role_rejected(self, setup):
        keystore, _catalogue, service, _audit = setup
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Manager")
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(cred,))
        with pytest.raises(KeyComError):
            service.submit(request)

    def test_delegated_chain_accepted(self, setup):
        keystore, catalogue, service, _audit = setup
        # KWebCom -> Kmanager -> Kuser delegation chain.
        to_manager = membership_credential(keystore, "KWebCom", "Kmanager",
                                           "DomainA", "Clerk")
        to_user = membership_credential(keystore, "Kmanager", "Kuser",
                                        "DomainA", "Clerk")
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(to_manager, to_user))
        assert service.submit(request)
        assert catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")

    def test_tampered_credential_rejected(self, setup):
        keystore, _catalogue, service, _audit = setup
        good = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        tampered = Credential.from_text(
            good.to_text().replace('Role=="Clerk"', 'Role=="Manager"'))
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Manager",
            credentials=(tampered,))
        with pytest.raises(KeyComError):
            service.submit(request)

    def test_submit_quietly(self, setup):
        keystore, _catalogue, service, _audit = setup
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=())
        assert service.submit_quietly(request) is False

    def test_audit_trail(self, setup):
        keystore, _catalogue, service, audit = setup
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        service.submit(PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(cred,)))
        service.submit_quietly(PolicyUpdateRequest(
            user="eve", user_key="Kmallory", domain="DomainA", role="Clerk",
            credentials=()))
        assert len(audit.find(category="keycom.update", outcome="allow")) == 1
        assert len(audit.find(category="keycom.update", outcome="deny")) == 1
        assert len(service.processed) == 2


class TestIdempotency:
    """Re-delivered update requests (duplicates from a flaky network) must
    not double-apply."""

    def test_duplicate_request_id_not_reapplied(self, setup):
        keystore, catalogue, service, audit = setup
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(cred,), request_id="req-1")
        assert service.submit(request)
        before = catalogue.extract_rbac()
        assert service.submit(request)  # duplicate: acknowledged
        assert service.duplicates == 1
        assert catalogue.extract_rbac() == before
        assert len(audit.find(category="keycom.update",
                              outcome="duplicate")) == 1
        # Only the first delivery evaluated credentials.
        assert len(service.processed) == 1

    def test_distinct_ids_apply_separately(self, setup):
        keystore, catalogue, service, _audit = setup
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        for request_id, user in (("r1", "userB"), ("r2", "userC")):
            assert service.submit(PolicyUpdateRequest(
                user=user, user_key="Kuser", domain="DomainA", role="Clerk",
                credentials=(cred,), request_id=request_id))
        assert service.duplicates == 0
        assert catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")
        assert catalogue.invoke("DomainA\\userC", "SalariesDB", "Access")

    def test_failed_request_id_may_be_retried(self, setup):
        keystore, catalogue, service, _audit = setup
        bad = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(), request_id="retry-1")
        with pytest.raises(KeyComError):
            service.submit(bad)
        # The id was not consumed by the failure: a corrected retry under
        # the same id applies normally.
        cred = membership_credential(keystore, "KWebCom", "Kuser",
                                     "DomainA", "Clerk")
        assert service.submit(PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(cred,), request_id="retry-1"))
        assert catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")


class TestMalformedRequests:
    """Malformed requests are rejected before any state is touched."""

    @pytest.mark.parametrize("field,value", [
        ("user", ""), ("user", "   "), ("user_key", ""),
        ("domain", ""), ("role", ""),
    ])
    def test_blank_fields_rejected(self, setup, field, value):
        keystore, catalogue, service, _audit = setup
        before = catalogue.extract_rbac()
        kwargs = dict(user="userB", user_key="Kuser", domain="DomainA",
                      role="Clerk", credentials=())
        kwargs[field] = value
        with pytest.raises(KeyComError, match="malformed"):
            service.submit(PolicyUpdateRequest(**kwargs))
        assert catalogue.extract_rbac() == before
        assert service.processed == []  # rejected before evaluation

    def test_non_tuple_credentials_rejected(self, setup):
        keystore, _catalogue, service, _audit = setup
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=["not", "credentials"])
        with pytest.raises(KeyComError, match="malformed"):
            service.submit(request)

    def test_negative_version_rejected(self, setup):
        keystore, _catalogue, service, _audit = setup
        request = PolicyUpdateRequest(
            user="userB", user_key="Kuser", domain="DomainA", role="Clerk",
            credentials=(), version=-1)
        with pytest.raises(KeyComError, match="malformed"):
            service.submit(request)

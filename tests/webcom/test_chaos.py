"""Chaos harness: Secure WebCom under seeded fault schedules.

Sweeps dozens of deterministic fault plans — message drop, duplication,
reordering, latency jitter and peer crash windows — over the Figure 3
secure-execution workflow and asserts the outcome *converges* with the
fault-free run: same final result, same allow/deny audit outcomes, exactly
one recorded execution per graph node.  A separate scenario drives a
mid-graph master failover and asserts the standby resumes from the
checkpointed frontier instead of restarting from the inputs.
"""

import pytest

from repro.errors import AuthorisationError
from repro.webcom.failover import GraphCheckpoint, MasterGroup
from repro.webcom.faults import CrashWindow, FaultInjector, FaultPlan, FaultRule
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.patterns import pipeline
from repro.webcom.secure import SecureWebComEnvironment

OPS = {"add": lambda a, b: a + b, "double": lambda v: 2 * v}

#: seeds the convergence sweep runs — every one is a distinct schedule
SEEDS = range(30)


def calc_graph():
    g = CondensedGraph("calc")
    g.add_node("add", operator="add", arity=2)
    g.add_node("double", operator="double", arity=1)
    g.connect("add", "double", 0)
    g.entry("x", "add", 0)
    g.entry("y", "add", 1)
    g.set_exit("double")
    return g


def secure_setup(plan=None, n_clients=2, client_trusts=True):
    """The Figure 3 deployment: one secured master, a trusted client pool,
    and (optionally) a fault plan installed on the fabric."""
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    injector = FaultInjector(plan).install(net) if plan is not None else None
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit,
                          max_attempts=6, heartbeat_interval=5.0)
    clients = []
    keys = []
    for i in range(n_clients):
        key = env.create_key(f"Kc{i}")
        keys.append(key)
        client = WebComClient(f"c{i}", net, OPS, key_name=key,
                              user=f"user{i}",
                              authoriser=env.client_authoriser(f"c{i}"),
                              audit=env.audit)
        if client_trusts:
            env.client_trusts_master(f"c{i}", "Kmaster")
        client.register_with("master")
        clients.append(client)
    env.trust_clients_for_operations(keys, list(OPS))
    net.run_until_quiet()
    return env, net, master, clients, injector


def client_check_outcomes(env):
    """The (client-visible) allow/deny decisions, as a comparable set."""
    return {(rec.outcome, rec.detail["op"])
            for rec in env.audit.find(category="webcom.client.check")}


def fault_free_run():
    env, _net, master, _clients, _inj = secure_setup(plan=None)
    result = master.run_graph(calc_graph(), {"x": 3, "y": 4})
    return result, client_check_outcomes(env)


class TestChaosConvergence:
    """Every seeded schedule must reproduce the fault-free outcome."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return fault_free_run()

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SEEDS)
    def test_secure_workflow_converges(self, seed, baseline):
        plan = FaultPlan.chaos(seed, crash_peers=("c1",))
        env, net, master, _clients, injector = secure_setup(plan=plan)
        result = master.run_graph(calc_graph(), {"x": 3, "y": 4})
        expected_result, expected_outcomes = baseline
        assert result == expected_result
        # The mediation outcome converges: same allow set, no denies.
        assert client_check_outcomes(env) == expected_outcomes
        assert env.audit.find(category="webcom.client.check",
                              outcome="deny") == []
        # Exactly one recorded execution per node, faults notwithstanding.
        assert sorted(node for node, _client in master.schedule_log) == [
            "add", "double"]

    def test_schedules_are_distinct(self):
        # The sweep is only meaningful if the seeds generate genuinely
        # different fault mixes.
        plans = {FaultPlan.chaos(seed, crash_peers=("c1",)) for seed in SEEDS}
        assert len(plans) == len(list(SEEDS))

    def test_faults_actually_fired(self):
        # Guard against a vacuous harness: across the sweep, every fault
        # modality must have been injected at least once.
        totals = {"drop": 0, "duplicate": 0, "reorder": 0, "jitter": 0}
        crash_seeds = 0
        for seed in SEEDS:
            plan = FaultPlan.chaos(seed, crash_peers=("c1",))
            crash_seeds += bool(plan.crash_windows)
            _env, _net, master, _clients, injector = secure_setup(plan=plan)
            master.run_graph(calc_graph(), {"x": 3, "y": 4})
            for fault, count in injector.counts.items():
                totals[fault] += count
        assert all(count > 0 for count in totals.values()), totals
        assert crash_seeds >= 5

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(8))
    def test_denial_converges_under_chaos(self, seed):
        # An untrusted master is refused under every schedule, and the
        # denial is audited — faults must not mask a security decision.
        plan = FaultPlan.chaos(seed)
        env, _net, master, clients, _inj = secure_setup(
            plan=plan, client_trusts=False)
        with pytest.raises(AuthorisationError):
            master.run_graph(calc_graph(), {"x": 3, "y": 4})
        assert env.audit.find(category="webcom.client.check",
                              outcome="deny")
        assert all(client.executed == [] for client in clients)

    def test_replay_is_deterministic(self):
        # Same plan, same protocol: bit-identical schedule and audit.
        runs = []
        for _ in range(2):
            plan = FaultPlan.chaos(7, crash_peers=("c1",))
            env, net, master, _clients, _inj = secure_setup(plan=plan)
            result = master.run_graph(calc_graph(), {"x": 3, "y": 4})
            runs.append((result, master.schedule_log,
                         [m.kind for m in net.delivered],
                         [(r.category, r.subject, r.outcome)
                          for r in env.audit]))
        assert runs[0] == runs[1]


def group_setup(plan=None, n_masters=2, n_clients=2, ops=None):
    net = SimulatedNetwork()
    if plan is not None:
        FaultInjector(plan).install(net)
    from repro.util.events import AuditLog
    audit = AuditLog()
    masters = [WebComMaster(f"m{i}", net, audit=audit) for i in range(n_masters)]
    group = MasterGroup(masters, net)
    for i in range(n_clients):
        client = WebComClient(f"c{i}", net, ops or {"inc": lambda v: v + 1})
        group.register_client(client)
    return net, group, masters, audit


class TestCheckpointedFailover:
    def test_mid_graph_failover_resumes_from_frontier(self):
        # m0 dies a few node-RTTs into a five-stage pipeline; m1 must pick
        # up from the checkpointed frontier, not the graph inputs.
        plan = FaultPlan(seed=0, crash_windows=(CrashWindow("m0", 5.0),))
        _net, group, masters, audit = group_setup(plan=plan)
        graph = pipeline("p", ["inc"] * 5)
        assert group.run_graph(graph, {"x": 0}) == 5
        assert group.failovers == ["m0"]
        checkpoint = group.last_checkpoint
        assert checkpoint is not None and len(checkpoint) == 5
        resumed = masters[1].last_trace
        # Strictly fewer re-fires than a from-scratch restart (5 nodes).
        assert 0 < len(resumed.fired) < 5
        assert len(resumed.fired) + len(resumed.restored) == 5
        # Exactly one recorded execution per node across both masters.
        executions = sorted(rec.subject for rec in audit.find(
            category="webcom.schedule", outcome="ok"))
        assert executions == [f"stage{i:03d}" for i in range(5)]

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(6))
    def test_failover_converges_under_chaos(self, seed):
        # Master crash window plus message-level chaos: the group still
        # produces the fault-free answer with single executions.
        plan = FaultPlan(
            seed=seed,
            rules=(FaultRule(drop=0.08, duplicate=0.15, reorder=0.1,
                             jitter=1.0),),
            crash_windows=(CrashWindow("m0", 6.0),))
        _net, group, _masters, audit = group_setup(plan=plan)
        graph = pipeline("p", ["inc"] * 5)
        assert group.run_graph(graph, {"x": 0}) == 5
        executions = sorted(rec.subject for rec in audit.find(
            category="webcom.schedule", outcome="ok"))
        assert executions == [f"stage{i:03d}" for i in range(5)]

    def test_explicit_checkpoint_reuse(self):
        # A caller-supplied checkpoint seeds the resume set directly.
        _net, group, masters, _audit = group_setup()
        graph = pipeline("p", ["inc"] * 3)
        checkpoint = GraphCheckpoint("p", completed={"stage000": 1,
                                                    "stage001": 2})
        assert group.run_graph(graph, {"x": 0},
                               checkpoint=checkpoint) == 3
        trace = masters[0].last_trace
        assert trace.fired == ["stage002"]
        assert sorted(trace.restored) == ["stage000", "stage001"]


class TestSecureResume:
    def test_standby_rechecks_authorisation_for_restored_nodes(self):
        env = SecureWebComEnvironment()
        net = SimulatedNetwork(clock=env.clock)
        env.create_key("Km")
        master = WebComMaster("m", net, key_name="Km",
                              scheduler_filter=env.master_filter(),
                              audit=env.audit)
        env.create_key("Kc")
        client = WebComClient("c", net, OPS, key_name="Kc",
                              authoriser=env.client_authoriser("c"),
                              audit=env.audit)
        env.trust_clients_for_operations(["Kc"], list(OPS))
        env.client_trusts_master("c", "Km")
        client.register_with("m")
        net.run_until_quiet()

        checkpoint = GraphCheckpoint("calc", completed={"add": 7})
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4},
                                checkpoint=checkpoint) == 14
        # The restored node's authorisation was re-queried and allowed...
        assert env.audit.find(category="webcom.resume", outcome="allow")
        # ...and it was not re-fired.
        assert master.last_trace.restored == ["add"]
        assert master.last_trace.fired == ["double"]

    def test_unauthorised_checkpoint_entry_is_refired(self):
        env = SecureWebComEnvironment()
        net = SimulatedNetwork(clock=env.clock)
        env.create_key("Km")
        master = WebComMaster("m", net, key_name="Km",
                              scheduler_filter=env.master_filter(),
                              audit=env.audit)
        env.create_key("Kc")
        client = WebComClient("c", net, OPS, key_name="Kc",
                              authoriser=env.client_authoriser("c"),
                              audit=env.audit)
        # Only 'double' is authorised: a checkpointed 'add' result must NOT
        # be trusted on resume — and re-firing it fails mediation.
        env.trust_clients_for_operations(["Kc"], ["double"])
        env.client_trusts_master("c", "Km")
        client.register_with("m")
        net.run_until_quiet()

        checkpoint = GraphCheckpoint("calc", completed={"add": 7})
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 3, "y": 4},
                             checkpoint=checkpoint)
        assert env.audit.find(category="webcom.resume", outcome="deny")

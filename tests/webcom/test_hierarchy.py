"""Hierarchical WebCom: masters scheduling to masters.

WebCom's metacomputing model composes: a client can serve an operation by
being, itself, the master of a pool of workers — the network analogue of a
condensed node evaporating into a subgraph.  The sub-master re-applies its
own security mediation, so authority never crosses a tier implicitly.
"""

import pytest

from repro.errors import SchedulingError
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment


def chain_graph(ops, name="chain"):
    g = CondensedGraph(name)
    previous = None
    for i, op in enumerate(ops):
        node = f"n{i}"
        g.add_node(node, operator=op, arity=1)
        if previous:
            g.connect(previous, node, 0)
        previous = node
    g.entry("x", "n0", 0)
    g.set_exit(previous)
    return g


@pytest.fixture
def tiers():
    """A top master whose single 'client' fronts an inner worker pool."""
    net = SimulatedNetwork()
    inner_master = WebComMaster("inner-master", net)
    for i in range(2):
        worker = WebComClient(f"worker{i}", net,
                              {"grind": lambda v: v * 2})
        worker.register_with("inner-master")
    net.run_until_quiet()

    def fan_in(v):
        # Serving 'bigjob' means running a whole subgraph on the inner pool.
        return inner_master.run_graph(
            chain_graph(["grind", "grind"], name="inner"), {"x": v})

    top_master = WebComMaster("top-master", net)
    gateway = WebComClient("gateway", net, {"bigjob": fan_in, "inc": lambda v: v + 1})
    gateway.register_with("top-master")
    net.run_until_quiet()
    return net, top_master, inner_master


class TestHierarchicalScheduling:
    def test_two_tier_execution(self, tiers):
        _net, top, inner = tiers
        result = top.run_graph(chain_graph(["inc", "bigjob"], "outer"),
                               {"x": 4})
        assert result == 20  # (4+1) * 2 * 2
        # Both tiers actually scheduled work.
        assert [n for n, _c in top.schedule_log] == ["n0", "n1"]
        assert len(inner.schedule_log) == 2

    def test_inner_pool_faults_handled_per_tier(self, tiers):
        net, top, inner = tiers
        net.crash("worker0")
        result = top.run_graph(chain_graph(["bigjob"], "outer"), {"x": 1})
        assert result == 4
        assert not inner.clients["worker0"].alive

    def test_inner_pool_exhaustion_surfaces_at_top(self, tiers):
        net, top, _inner = tiers
        net.crash("worker0")
        net.crash("worker1")
        # The gateway's operation fails (inner SchedulingError propagates as
        # a remote error), and the top master has no other candidate.
        with pytest.raises(SchedulingError):
            top.run_graph(chain_graph(["bigjob"], "outer"), {"x": 1})


class TestSecureHierarchy:
    def test_each_tier_mediates_independently(self):
        env = SecureWebComEnvironment()
        net = SimulatedNetwork(clock=env.clock)
        env.create_key("Ktop")
        env.create_key("Kmid")
        env.create_key("Kworker")

        inner_master = WebComMaster("mid-master", net, key_name="Kmid",
                                    scheduler_filter=env.master_filter())
        worker = WebComClient("worker", net, {"grind": lambda v: v * 3},
                              key_name="Kworker",
                              authoriser=env.client_authoriser("worker"),
                              audit=env.audit)
        env.client_trusts_master("worker", "Kmid")
        worker.register_with("mid-master")

        def fronted(v):
            return inner_master.run_graph(chain_graph(["grind"], "inner"),
                                          {"x": v})

        top_master = WebComMaster("top-master", net, key_name="Ktop",
                                  scheduler_filter=env.master_filter())
        gateway = WebComClient("gateway", net, {"bigjob": fronted},
                               key_name="Kmid",
                               authoriser=env.client_authoriser("gateway"),
                               audit=env.audit)
        env.client_trusts_master("gateway", "Ktop")
        gateway.register_with("top-master")
        net.run_until_quiet()

        # Top trusts the mid key for bigjob; mid trusts the worker for grind.
        env.trust_clients_for_operations(["Kmid"], ["bigjob"])
        env.trust_clients_for_operations(["Kworker"], ["grind"])

        result = top_master.run_graph(chain_graph(["bigjob"], "outer"),
                                      {"x": 2})
        assert result == 6
        # The worker never needed to be trusted by the *top* master —
        # authority was mediated tier by tier.
        allowed = env.audit.find(category="webcom.client.check",
                                 outcome="allow")
        assert len(allowed) == 2  # gateway check + worker check

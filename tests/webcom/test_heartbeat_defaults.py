"""Regression: the master's scheduling constants follow the network clock.

The heartbeat/request-timeout defaults were hardcoded at simulated-clock
scale; a master driven by a wall clock would wait tens of *real* seconds
per liveness probe.  They now resolve through the shared
:class:`~repro.util.clock.Clock` abstraction's scheduling defaults, in both
clock modes, with explicit arguments still winning.
"""

from repro.util.clock import (
    SIMULATED_SCHEDULING_DEFAULTS,
    WALL_SCHEDULING_DEFAULTS,
    SimulatedClock,
    WallClock,
)
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComMaster


class TestHeartbeatDefaults:
    def test_simulated_clock_resolves_the_historical_constants(self):
        master = WebComMaster("m", SimulatedNetwork(clock=SimulatedClock()))
        assert master.request_timeout == \
            SIMULATED_SCHEDULING_DEFAULTS["request_timeout"]
        assert master.heartbeat_interval == \
            SIMULATED_SCHEDULING_DEFAULTS["heartbeat_interval"]
        assert master.heartbeat_timeout == \
            SIMULATED_SCHEDULING_DEFAULTS["heartbeat_timeout"]

    def test_wall_clock_resolves_realtime_scale(self):
        master = WebComMaster("m", SimulatedNetwork(clock=WallClock()))
        assert master.request_timeout == \
            WALL_SCHEDULING_DEFAULTS["request_timeout"]
        assert master.heartbeat_interval == \
            WALL_SCHEDULING_DEFAULTS["heartbeat_interval"]
        assert master.heartbeat_timeout == \
            WALL_SCHEDULING_DEFAULTS["heartbeat_timeout"]

    def test_explicit_arguments_override_either_mode(self):
        for clock in (SimulatedClock(), WallClock()):
            master = WebComMaster("m", SimulatedNetwork(clock=clock),
                                  request_timeout=3.5,
                                  heartbeat_interval=7.0,
                                  heartbeat_timeout=2.0)
            assert (master.request_timeout, master.heartbeat_interval,
                    master.heartbeat_timeout) == (3.5, 7.0, 2.0)

    def test_simulated_network_default_clock_unchanged(self):
        # A bare network (no clock argument) must behave exactly as before
        # the Clock routing: simulated scale.
        master = WebComMaster("m", SimulatedNetwork())
        assert master.heartbeat_interval == 15.0

"""Tests for condensed graphs and the execution engine."""

import pytest

from repro.errors import GraphError, SchedulingError
from repro.webcom.engine import (
    EvaluationMode,
    GraphEngine,
    function_table_executor,
)
from repro.webcom.graph import CondensedGraph, condense

TABLE = {
    "add": lambda a, b: a + b,
    "double": lambda v: 2 * v,
    "neg": lambda v: -v,
    "const7": lambda: 7,
}


def calc_graph() -> CondensedGraph:
    g = CondensedGraph("calc")
    g.add_node("add", operator="add", arity=2)
    g.add_node("double", operator="double", arity=1)
    g.connect("add", "double", 0)
    g.entry("x", "add", 0)
    g.entry("y", "add", 1)
    g.set_exit("double")
    return g


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="add", arity=2)
        with pytest.raises(GraphError):
            g.add_node("a", operator="add", arity=2)

    def test_negative_arity_rejected(self):
        with pytest.raises(GraphError):
            CondensedGraph("g").add_node("a", operator="x", arity=-1)

    def test_connect_validates_nodes_and_ports(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="const7", arity=0)
        g.add_node("b", operator="double", arity=1)
        with pytest.raises(GraphError):
            g.connect("missing", "b", 0)
        with pytest.raises(GraphError):
            g.connect("a", "missing", 0)
        with pytest.raises(GraphError):
            g.connect("a", "b", 5)

    def test_entry_validates_port(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="double", arity=1)
        with pytest.raises(GraphError):
            g.entry("x", "a", 3)

    def test_exit_required(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="const7", arity=0)
        with pytest.raises(GraphError):
            g.validate()


class TestValidation:
    def test_valid_graph(self):
        calc_graph().validate()

    def test_unfillable_port_detected(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="add", arity=2)
        g.entry("x", "a", 0)  # port 1 never filled
        g.set_exit("a")
        with pytest.raises(GraphError) as err:
            g.validate()
        assert "unfillable" in str(err.value)

    def test_cycle_detected(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="double", arity=1)
        g.add_node("b", operator="double", arity=1)
        g.connect("a", "b", 0)
        g.connect("b", "a", 0)
        g.set_exit("b")
        with pytest.raises(GraphError) as err:
            g.validate()
        assert "cycle" in str(err.value)

    def test_unreachable_exit_detected(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="double", arity=1)
        g.add_node("b", operator="const7", arity=0)
        g.entry("x", "a", 0)
        g.set_exit("b")
        # b is a source with no path from the entries.
        with pytest.raises(GraphError) as err:
            g.validate()
        assert "unreachable" in str(err.value)

    def test_needed_for_exit(self):
        g = calc_graph()
        g.add_node("orphan", operator="const7", arity=0)
        assert g.needed_for_exit() == {"add", "double"}


class TestExecution:
    def test_basic_run(self):
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        assert engine.run({"x": 3, "y": 4}) == 14

    def test_input_mismatch_rejected(self):
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        with pytest.raises(GraphError):
            engine.run({"x": 3})
        with pytest.raises(GraphError):
            engine.run({"x": 3, "y": 4, "z": 5})

    def test_unknown_operator(self):
        g = CondensedGraph("g")
        g.add_node("a", operator="mystery", arity=0)
        g.set_exit("a")
        engine = GraphEngine(g, function_table_executor(TABLE))
        with pytest.raises(SchedulingError):
            engine.run({})

    def test_trace_records_firing(self):
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        engine.run({"x": 1, "y": 2})
        assert engine.trace.fired == ["add", "double"]
        assert engine.trace.results == {"add": 3, "double": 6}
        assert engine.trace.fired_count() == 2

    def test_fanout_token_duplication(self):
        # One result feeds two consumers.
        g = CondensedGraph("fan")
        g.add_node("src", operator="double", arity=1)
        g.add_node("l", operator="neg", arity=1)
        g.add_node("r", operator="double", arity=1)
        g.add_node("join", operator="add", arity=2)
        g.connect("src", "l", 0)
        g.connect("src", "r", 0)
        g.connect("l", "join", 0)
        g.connect("r", "join", 1)
        g.entry("x", "src", 0)
        g.set_exit("join")
        engine = GraphEngine(g, function_table_executor(TABLE))
        # src=2x; l=-2x; r=4x; join=2x
        assert engine.run({"x": 5}) == 10


class TestEvaluationModes:
    def lazy_graph(self):
        # An expensive orphan branch is *fed* but not needed by the exit.
        g = CondensedGraph("lazy")
        g.add_node("needed", operator="double", arity=1)
        g.add_node("wasted", operator="neg", arity=1)
        g.entry("x", "needed", 0)
        g.entry("x", "wasted", 0)
        g.set_exit("needed")
        return g

    def test_availability_fires_everything(self):
        engine = GraphEngine(self.lazy_graph(),
                             function_table_executor(TABLE),
                             EvaluationMode.AVAILABILITY)
        engine.run({"x": 2})
        assert set(engine.trace.fired) == {"needed", "wasted"}

    def test_coercion_fires_only_demanded(self):
        engine = GraphEngine(self.lazy_graph(),
                             function_table_executor(TABLE),
                             EvaluationMode.COERCION)
        assert engine.run({"x": 2}) == 4
        assert engine.trace.fired == ["needed"]

    def test_control_mode_is_sequential_and_deterministic(self):
        g = self.lazy_graph()
        engine = GraphEngine(g, function_table_executor(TABLE),
                             EvaluationMode.CONTROL)
        engine.run({"x": 2})
        # Alphabetical, one at a time.
        assert engine.trace.fired == ["needed"]  # exit fires first -> stop

    def test_all_modes_agree_on_result(self):
        for mode in EvaluationMode:
            engine = GraphEngine(calc_graph(),
                                 function_table_executor(TABLE), mode)
            assert engine.run({"x": 3, "y": 4}) == 14


class TestCondensation:
    def test_condensed_node_evaporates(self):
        inner = calc_graph()  # (x + y) * 2
        outer = CondensedGraph("outer")
        condense("calc", inner, outer, "sub", arity=2)
        outer.add_node("neg", operator="neg", arity=1)
        outer.connect("sub", "neg", 0)
        outer.entry("a", "sub", 0)
        outer.entry("b", "sub", 1)
        outer.set_exit("neg")
        engine = GraphEngine(outer, function_table_executor(TABLE))
        assert engine.run({"a": 3, "b": 4}) == -14
        # Inner firings are traced with a path prefix.
        assert "sub/add" in engine.trace.fired
        assert "sub/double" in engine.trace.fired

    def test_condense_arity_mismatch(self):
        inner = calc_graph()
        outer = CondensedGraph("outer")
        with pytest.raises(GraphError):
            condense("calc", inner, outer, "sub", arity=3)

    def test_nested_condensation(self):
        inner = calc_graph()
        mid = CondensedGraph("mid")
        condense("calc", inner, mid, "c", arity=2)
        mid.entry("p", "c", 0)
        mid.entry("q", "c", 1)
        mid.set_exit("c")
        outer = CondensedGraph("outer")
        condense("mid", mid, outer, "m", arity=2)
        outer.entry("a", "m", 0)
        outer.entry("b", "m", 1)
        outer.set_exit("m")
        engine = GraphEngine(outer, function_table_executor(TABLE))
        assert engine.run({"a": 1, "b": 2}) == 6

    def test_operator_name_for_condensed(self):
        inner = calc_graph()
        outer = CondensedGraph("outer")
        node = condense("calc", inner, outer, "sub", arity=2)
        assert node.operator_name == "<calc>"
        assert node.is_condensed


class TestTraceLifecycle:
    def test_trace_resets_between_runs(self):
        # Satellite fix: repeated run() calls must not accumulate
        # fired/results across runs.
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        engine.run({"x": 1, "y": 2})
        first = engine.trace
        engine.run({"x": 3, "y": 4})
        assert engine.trace.fired == ["add", "double"]
        assert engine.trace.fired_count() == 2
        assert engine.trace.results == {"add": 7, "double": 14}
        # The first run's trace object is untouched.
        assert first.results == {"add": 3, "double": 6}

    def test_resume_from_skips_completed_nodes(self):
        calls = []

        def spying(node, args):
            calls.append(node.node_id)
            return function_table_executor(TABLE)(node, args)

        engine = GraphEngine(calc_graph(), spying)
        assert engine.run({"x": 3, "y": 4},
                          resume_from={"add": 7}) == 14
        assert calls == ["double"]  # 'add' was never re-executed
        assert engine.trace.restored == ["add"]
        assert engine.trace.fired == ["double"]

    def test_resume_covering_exit_short_circuits(self):
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        assert engine.run({"x": 3, "y": 4},
                          resume_from={"add": 7, "double": 99}) == 99
        assert engine.trace.fired == []

    def test_resume_ignores_foreign_node_ids(self):
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        assert engine.run({"x": 3, "y": 4},
                          resume_from={"ghost": 1}) == 14
        assert engine.trace.restored == []

    def test_on_node_fired_checkpoints_live_firings_only(self):
        seen = {}
        engine = GraphEngine(calc_graph(), function_table_executor(TABLE))
        engine.run({"x": 3, "y": 4}, resume_from={"add": 7},
                   on_node_fired=lambda node_id, result: seen.__setitem__(
                       node_id, result))
        assert seen == {"double": 14}  # restored nodes are not re-marked

"""Batched wavefront scheduling: one ``execute_batch`` flight per client.

Covers the master's batch path end to end: equivalence with per-node
scheduling, flight reduction, fault-plan convergence, duplicate-delivery
dedup, per-sub-request fallback on denial/error, and rerouting around a
crashed client.
"""

import pytest

from repro.errors import AuthorisationError
from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.scenario import (SCENARIO_OPS, fan_graph, pipeline_graph,
                                   run_observed_scenario)
from repro.webcom.secure import SecureWebComEnvironment

FAN = 6
EXPECTED_NODES = sorted(["combine"] + [f"s{i:03d}" for i in range(FAN)])


def scheduling_flights(run):
    return sum(1 for message in run.master.network.delivered
               if message.kind in ("execute", "execute_batch",
                                   "result", "result_batch"))


def plain_setup(n_clients=2, authorisers=None, ops=None):
    """An unsecured master + client pool on a fresh fabric, so tests can
    plug custom per-client authorisers/operations."""
    net = SimulatedNetwork()
    master = WebComMaster("master", net)
    clients = []
    for i in range(n_clients):
        client_id = f"c{i}"
        client = WebComClient(
            client_id, net, ops[i] if ops is not None else dict(SCENARIO_OPS),
            authoriser=(authorisers or {}).get(client_id))
        client.register_with("master")
        clients.append(client)
    net.run_until_quiet()
    return net, master, clients


class TestBatchedScheduling:
    def test_matches_per_node_scheduling_with_fewer_flights(self):
        runs = {batch: run_observed_scenario(fan=FAN, n_clients=2,
                                             batch=batch)
                for batch in (False, True)}
        assert runs[True].result == runs[False].result == FAN
        assert scheduling_flights(runs[True]) < scheduling_flights(
            runs[False])
        assert sorted(n for n, _c in runs[True].master.schedule_log) == \
            EXPECTED_NODES

    def test_batch_metrics_are_emitted(self):
        run = run_observed_scenario(fan=FAN, n_clients=2, batch=True)
        metrics = run.obs.metrics
        assert metrics.counter("master.batch.flights").value >= 1
        # Every node still counts as fired exactly once.
        assert metrics.counter("engine.fired").value == FAN + 1

    def test_singleton_wavefronts_bypass_batching(self):
        # A linear pipeline fires one node per wavefront: the batch path
        # must not wrap singletons in execute_batch envelopes.
        run = run_observed_scenario(depth=4, n_clients=2, batch=True)
        assert run.result == 4
        kinds = {m.kind for m in run.master.network.delivered}
        assert "execute_batch" not in kinds

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(15))
    def test_converges_under_chaos(self, seed):
        run = run_observed_scenario(fan=FAN, n_clients=2, batch=True,
                                    faults=True, seed=seed, drop=0.25)
        assert run.result == FAN
        assert sorted(n for n, _c in run.master.schedule_log) == \
            EXPECTED_NODES

    def test_duplicate_batch_delivery_is_deduplicated(self):
        env = SecureWebComEnvironment()
        net = SimulatedNetwork(clock=env.clock)
        plan = FaultPlan(seed=3, rules=(
            FaultRule(kind="execute_batch", duplicate=1.0),))
        FaultInjector(plan).install(net)
        env.create_key("Kmaster")
        master = WebComMaster("master", net, key_name="Kmaster",
                              scheduler_filter=env.master_filter(),
                              audit=env.audit)
        clients = []
        keys = []
        for i in range(2):
            key = env.create_key(f"Kc{i}")
            keys.append(key)
            client = WebComClient(f"c{i}", net, dict(SCENARIO_OPS),
                                  key_name=key, user=f"user{i}",
                                  authoriser=env.client_authoriser(f"c{i}"))
            env.client_trusts_master(f"c{i}", "Kmaster")
            client.register_with("master")
            clients.append(client)
        env.trust_clients_for_operations(keys, list(SCENARIO_OPS))
        net.run_until_quiet()
        result = master.run_graph(fan_graph(FAN), {"x": 0}, batch=True)
        assert result == FAN
        assert sum(c.duplicates_served for c in clients) > 0

    def test_denied_sub_requests_fall_back_per_request(self):
        # c0 refuses everything; the batch lands there first but each denied
        # sub-request is retried individually and lands on c1.
        net, master, _clients = plain_setup(
            authorisers={"c0": lambda master_key, op, context: False})
        result = master.run_graph(fan_graph(FAN), {"x": 0}, batch=True)
        assert result == FAN
        assert all(client == "c1" for _node, client in master.schedule_log)

    def test_erroring_sub_requests_fall_back_per_request(self):
        def boom(value):
            raise RuntimeError("stage exploded")

        broken_ops = dict(SCENARIO_OPS, stage=boom)
        net, master, _clients = plain_setup(
            ops=[broken_ops, dict(SCENARIO_OPS)])
        result = master.run_graph(fan_graph(FAN), {"x": 0}, batch=True)
        assert result == FAN
        stage_placements = {client for node, client in master.schedule_log
                            if node != "combine"}
        assert stage_placements == {"c1"}

    def test_every_client_denying_raises(self):
        deny = lambda master_key, op, context: False  # noqa: E731
        net, master, _clients = plain_setup(
            authorisers={"c0": deny, "c1": deny})
        with pytest.raises(AuthorisationError):
            master.run_graph(fan_graph(FAN), {"x": 0}, batch=True)

    def test_crashed_client_batch_is_rerouted(self):
        net, master, _clients = plain_setup()
        net.crash("c0")
        result = master.run_graph(fan_graph(FAN), {"x": 0}, batch=True)
        assert result == FAN
        assert not master.clients["c0"].alive
        survivors = {client for _node, client in master.schedule_log}
        assert survivors == {"c1"}

"""Tests for policy-plane health: circuit breakers and degraded mediation."""

import pytest

from repro.crypto import Keystore
from repro.errors import LayerTimeoutError
from repro.keynote.api import KeyNoteSession
from repro.obs import Observability
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.webcom.faults import (LayerFaultInjector, LayerFaultPlan,
                                 LayerFaultRule)
from repro.webcom.health import BreakerState, CircuitBreaker, DegradedMode
from repro.webcom.stack import AuthorisationStack, Layer, MediationRequest


# ---------------------------------------------------------------------------
# CircuitBreaker unit behaviour
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_allows(self):
        breaker = CircuitBreaker("x", clock=SimulatedClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_after_threshold(self):
        breaker = CircuitBreaker("x", clock=SimulatedClock(),
                                 failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker("x", clock=SimulatedClock(),
                                 failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_cooldown_then_close(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker("x", clock=clock, failure_threshold=1,
                                 cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker("x", clock=clock, failure_threshold=1,
                                 cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # Cooldown restarted at the reopen instant.
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_transitions_recorded_with_times(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker("x", clock=clock, failure_threshold=1,
                                 cooldown=2.0)
        breaker.record_failure()
        clock.advance(2.0)
        breaker.allow()
        breaker.record_success()
        states = [(old, new) for _t, old, new in breaker.transitions]
        assert states == [("closed", "open"), ("open", "half_open"),
                          ("half_open", "closed")]

    def test_transitions_emit_metrics_and_audit(self):
        obs = Observability()
        audit = AuditLog()
        breaker = CircuitBreaker("tm", clock=obs.clock, failure_threshold=1,
                                 obs=obs, audit=audit)
        breaker.record_failure()
        assert obs.metrics.counter("health.breaker.open").value == 1
        assert obs.metrics.counter("health.breaker.tm.open").value == 1
        assert any(s.name == "health.breaker.transition"
                   for s in obs.tracer.spans)
        records = audit.find(category="health.breaker")
        assert records and records[0].outcome == "open"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=2.5)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=float("inf"))


# ---------------------------------------------------------------------------
# Degraded-mode mediation
# ---------------------------------------------------------------------------


def _request():
    return MediationRequest(user="u", user_key="Ku", object_type="T",
                            operation="read")


def _stack(app, **kwargs):
    clock = kwargs.pop("clock", None) or SimulatedClock()
    stack = AuthorisationStack(clock=clock, **kwargs)
    stack.plug_application(app)
    return stack, clock


class TestDegradedMediation:
    def test_raising_layer_becomes_error_decision_not_traceback(self):
        def boom(_request):
            raise RuntimeError("backend down")

        stack, _clock = _stack(boom)
        decision = stack.mediate(_request())  # must not raise
        assert not decision.allowed
        layer = decision.layer(Layer.APPLICATION)
        assert layer is not None and layer.error
        assert "fail_closed" in layer.detail
        assert decision.is_degraded()
        assert Layer.APPLICATION in decision.degraded

    def test_raising_layer_is_audited(self):
        def boom(_request):
            raise RuntimeError("backend down")

        audit = AuditLog()
        stack, _clock = _stack(boom, audit=audit)
        stack.mediate(_request())
        records = audit.find(category="stack.mediate")
        assert records
        assert records[-1].outcome == "deny"
        assert records[-1].detail["degraded"] == ["APPLICATION"]

    def test_fail_open_allows_but_marks_error(self):
        def boom(_request):
            raise RuntimeError("backend down")

        stack, _clock = _stack(boom)
        stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_OPEN)
        decision = stack.mediate(_request())
        assert decision.allowed
        assert decision.layer(Layer.APPLICATION).error
        assert decision.is_degraded()

    def test_fail_static_serves_last_known_good_marked_stale(self):
        calls = {"n": 0}

        def flaky(_request):
            calls["n"] += 1
            if calls["n"] > 1:
                raise LayerTimeoutError("down")
            return True

        stack, _clock = _stack(flaky)
        stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_STATIC)
        fresh = stack.mediate(_request())
        assert fresh.allowed and not fresh.stale
        stale = stack.mediate(_request())
        assert stale.allowed
        assert stale.stale
        assert stale.is_degraded()
        assert stack.stale_served == 1

    def test_fail_static_without_last_good_fails_closed(self):
        def boom(_request):
            raise LayerTimeoutError("down")

        stack, _clock = _stack(boom)
        stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_STATIC)
        decision = stack.mediate(_request())
        assert not decision.allowed
        assert not decision.stale
        assert decision.layer(Layer.APPLICATION).error

    def test_breaker_trips_and_skips_layer(self):
        calls = {"n": 0}

        def boom(_request):
            calls["n"] += 1
            raise RuntimeError("down")

        stack, _clock = _stack(boom, breaker_threshold=2,
                               breaker_cooldown=10.0)
        for _ in range(5):
            stack.mediate(_request())
        # After the second failure the breaker is OPEN: the layer is not
        # called again while cooling down.
        assert calls["n"] == 2
        assert stack.breaker(Layer.APPLICATION).state is BreakerState.OPEN

    def test_half_open_probe_recovers_layer(self):
        state = {"healthy": False, "calls": 0}

        def sometimes(_request):
            state["calls"] += 1
            if not state["healthy"]:
                raise RuntimeError("down")
            return True

        stack, clock = _stack(sometimes, breaker_threshold=1,
                              breaker_cooldown=5.0)
        assert not stack.mediate(_request()).allowed   # trips breaker
        state["healthy"] = True
        assert not stack.mediate(_request()).allowed   # still open, skipped
        assert state["calls"] == 1
        clock.advance(5.0)
        decision = stack.mediate(_request())           # half-open probe
        assert decision.allowed and not decision.is_degraded()
        assert stack.breaker(Layer.APPLICATION).state is BreakerState.CLOSED

    def test_degraded_decision_never_cached_as_fresh(self):
        calls = {"n": 0}

        def flaky(_request):
            calls["n"] += 1
            if calls["n"] == 2:
                raise LayerTimeoutError("down")
            return True

        stack, _clock = _stack(flaky, cache_ttl=100.0, breaker_threshold=10)
        stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_STATIC)
        stack.mediate(_request())                 # fresh -> cached
        stack.invalidate_cache()
        stale = stack.mediate(_request())         # degraded, stale
        assert stale.stale
        assert stack.cache_info()["entries"] == 0
        follow_up = stack.mediate(_request())     # layer healthy again
        assert not follow_up.stale                # re-probed, not cached-stale

    def test_stale_serve_emits_health_metrics(self):
        obs = Observability()
        calls = {"n": 0}

        def flaky(_request):
            calls["n"] += 1
            if calls["n"] > 1:
                raise LayerTimeoutError("down")
            return True

        stack = AuthorisationStack(obs=obs, clock=obs.clock,
                                   breaker_threshold=10)
        stack.plug_application(flaky)
        stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_STATIC)
        stack.mediate(_request())
        stack.mediate(_request())
        assert obs.metrics.counter("health.stale_served").value == 1
        assert obs.metrics.counter(
            "health.layer.APPLICATION.error").value == 1
        assert any(s.name == "health.stale_served" for s in obs.tracer.spans)

    def test_injected_layer_faults_time_out_layers(self):
        clock = SimulatedClock()
        injector = LayerFaultInjector(LayerFaultPlan(seed=1, rules=(
            LayerFaultRule(layer="APPLICATION", fail=1.0),)))
        stack = AuthorisationStack(clock=clock, layer_faults=injector,
                                   breaker_threshold=100)
        stack.plug_application(lambda _request: True)
        decision = stack.mediate(_request())
        assert not decision.allowed
        assert decision.layer(Layer.APPLICATION).error
        assert injector.counts["APPLICATION"] == 1

    def test_short_circuit_above_degraded_layer_unaffected(self):
        # TM denies before the (broken) lower layer is even consulted: the
        # decision is a clean, non-degraded deny.
        keystore = Keystore()
        keystore.create("Ku")
        session = KeyNoteSession(keystore=keystore)
        session.add_policy('Authorizer: POLICY\nLicensees: "Knobody"\n'
                           'Conditions: true;')
        stack = AuthorisationStack(clock=session.clock)
        stack.plug_trust_management(session)
        decision = stack.mediate(_request())
        assert not decision.allowed
        assert not decision.is_degraded()

    def test_health_snapshot_shape(self):
        def boom(_request):
            raise RuntimeError("down")

        stack, _clock = _stack(boom, breaker_threshold=1)
        stack.mediate(_request())
        snap = stack.health_snapshot()
        assert snap["breakers"]["APPLICATION"]["state"] == "open"
        assert snap["degraded_modes"] == {}
        assert snap["stale_served"] == 0

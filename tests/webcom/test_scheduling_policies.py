"""Tests for master selection policies, EJB descriptor extensions, and
per-link latency."""

import pytest

from repro.errors import DeploymentError, NetworkError, SchedulingError
from repro.middleware.ejb import EJBServer
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.patterns import pipeline

OPS = {"inc": lambda v: v + 1}


def setup(selection_policy="first", n_clients=3):
    net = SimulatedNetwork()
    master = WebComMaster("m", net, selection_policy=selection_policy)
    for i in range(n_clients):
        WebComClient(f"c{i}", net, OPS).register_with("m")
    net.run_until_quiet()
    return net, master


class TestSelectionPolicies:
    def test_first_policy_pins_to_one_client(self):
        _net, master = setup("first")
        master.run_graph(pipeline("p", ["inc"] * 6), {"x": 0})
        used = {c for _n, c in master.schedule_log}
        assert used == {"c0"}

    def test_least_loaded_spreads_work(self):
        _net, master = setup("least-loaded")
        master.run_graph(pipeline("p", ["inc"] * 6), {"x": 0})
        counts = [master.clients[f"c{i}"].executed for i in range(3)]
        assert counts == [2, 2, 2]

    def test_round_robin_rotates(self):
        _net, master = setup("round-robin")
        master.run_graph(pipeline("p", ["inc"] * 6), {"x": 0})
        used = [c for _n, c in master.schedule_log]
        assert set(used) == {"c0", "c1", "c2"}
        # No client runs twice in a row.
        assert all(a != b for a, b in zip(used, used[1:]))

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            WebComMaster("m", SimulatedNetwork(), selection_policy="random")

    def test_all_policies_compute_same_result(self):
        for policy in WebComMaster.SELECTION_POLICIES:
            _net, master = setup(policy)
            assert master.run_graph(pipeline("p", ["inc"] * 4), {"x": 0}) == 4


class TestEJBDescriptorExtensions:
    @pytest.fixture
    def server(self) -> EJBServer:
        s = EJBServer(host="h", server_name="s")
        s.deploy_container("C")
        s.deploy_bean("C", "B", methods=("ping", "admin", "open"))
        s.declare_role("C", "R")
        s.add_method_permission("C", "B", "R", "ping")
        s.add_method_permission("C", "B", "R", "admin")
        s.add_user("u")
        s.assign_role("C", "R", "u")
        return s

    def test_exclude_list_dominates(self, server):
        assert server.invoke("u", "B", "admin")
        server.add_exclude("C", "B", "admin")
        assert not server.invoke("u", "B", "admin")
        assert server.invoke("u", "B", "ping")  # untouched

    def test_excluded_grants_dropped_from_extraction(self, server):
        server.add_exclude("C", "B", "admin")
        policy = server.extract_rbac()
        permissions = {g.permission for g in policy.grants}
        assert permissions == {"ping"}

    def test_unchecked_open_to_all(self, server):
        server.add_unchecked("C", "B", "open")
        assert server.invoke("mallory", "B", "open")
        assert not server.invoke("mallory", "B", "ping")

    def test_exclude_beats_unchecked(self, server):
        server.add_unchecked("C", "B", "open")
        server.add_exclude("C", "B", "open")
        assert not server.invoke("u", "B", "open")

    def test_descriptor_extensions_validate_methods(self, server):
        with pytest.raises(DeploymentError):
            server.add_exclude("C", "B", "nope")
        with pytest.raises(DeploymentError):
            server.add_unchecked("C", "B", "nope")


class TestLinkLatency:
    def test_per_link_latency_orders_delivery(self):
        net = SimulatedNetwork()
        got = []
        net.attach("a", got.append)
        net.attach("b", lambda m: None)
        net.attach("c", lambda m: None)
        net.set_link_latency("b", "a", 10.0)
        net.set_link_latency("c", "a", 1.0)
        net.send("b", "a", "slow-link")
        net.send("c", "a", "fast-link")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["fast-link", "slow-link"]

    def test_latency_lookup(self):
        net = SimulatedNetwork(default_latency=2.0)
        net.set_link_latency("a", "b", 7.0)
        assert net.latency_between("a", "b") == 7.0
        assert net.latency_between("b", "a") == 7.0  # bidirectional
        assert net.latency_between("a", "c") == 2.0

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            SimulatedNetwork().set_link_latency("a", "b", -1.0)

    def test_explicit_send_latency_still_wins(self):
        net = SimulatedNetwork()
        got = []
        net.attach("a", got.append)
        net.attach("b", lambda m: None)
        net.set_link_latency("b", "a", 10.0)
        net.send("b", "a", "override", latency=0.5)
        net.step()
        assert net.clock.now() == 0.5

"""Tests for stacked authorisation (Section 5, Figure 10)."""

import itertools

import pytest

from repro.crypto import Keystore
from repro.errors import AuthorisationError
from repro.keynote.api import KeyNoteSession
from repro.middleware.ejb import EJBServer
from repro.os_sec.unixlike import UnixSecurity
from repro.util.events import AuditLog
from repro.webcom.stack import (
    AuthorisationStack,
    FrozenAttributes,
    Layer,
    MediationRequest,
)


@pytest.fixture
def parts():
    """One of everything: OS, middleware, TM session, app predicate."""
    osec = UnixSecurity()
    osec.add_user("alice", groups=["finance"])
    osec.create_object("SalariesDB", owner="alice", group="finance",
                       mode=0o600)

    ejb = EJBServer(host="h", server_name="s")
    ejb.deploy_container("C")
    ejb.deploy_bean("C", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("C", "Clerk")
    ejb.add_method_permission("C", "SalariesDB", "Clerk", "read")
    ejb.add_user("alice")
    ejb.assign_role("C", "Clerk", "alice")

    keystore = Keystore()
    keystore.create("Kalice")
    session = KeyNoteSession(keystore=keystore)
    session.add_policy('Authorizer: POLICY\nLicensees: "Kalice"\n'
                       'Conditions: op=="read";')

    predicate = lambda request: request.operation != "write"  # noqa: E731
    return osec, ejb, session, predicate


def request(op="read", access="read"):
    return MediationRequest(user="alice", user_key="Kalice",
                            object_type="SalariesDB", operation=op,
                            os_access=access)


class TestFullStack:
    def test_all_layers_allow(self, parts):
        osec, ejb, session, predicate = parts
        stack = (AuthorisationStack()
                 .plug_os(osec).plug_middleware(ejb)
                 .plug_trust_management(session).plug_application(predicate))
        decision = stack.mediate(request("read"))
        assert decision.allowed
        assert len(decision.decisions) == 4
        assert decision.deciding_layer() is None

    def test_top_down_order(self, parts):
        osec, ejb, session, predicate = parts
        stack = (AuthorisationStack()
                 .plug_os(osec).plug_middleware(ejb)
                 .plug_trust_management(session).plug_application(predicate))
        decision = stack.mediate(request("read"))
        layers = [d.layer for d in decision.decisions]
        assert layers == [Layer.APPLICATION, Layer.TRUST_MANAGEMENT,
                          Layer.MIDDLEWARE, Layer.OS]

    def test_denial_short_circuits(self, parts):
        osec, ejb, session, predicate = parts
        stack = (AuthorisationStack()
                 .plug_os(osec).plug_middleware(ejb)
                 .plug_trust_management(session).plug_application(predicate))
        decision = stack.mediate(request("write", access="write"))
        assert not decision.allowed
        assert decision.deciding_layer() == Layer.APPLICATION
        assert len(decision.decisions) == 1  # lower layers never consulted

    def test_each_layer_can_deny(self, parts):
        osec, ejb, session, _predicate = parts
        # TM denies 'write'.
        stack = AuthorisationStack().plug_trust_management(session)
        assert stack.mediate(request("write")).deciding_layer() == \
            Layer.TRUST_MANAGEMENT
        # Middleware denies 'write' (only read is granted).
        stack = AuthorisationStack().plug_middleware(ejb)
        assert stack.mediate(request("write")).deciding_layer() == \
            Layer.MIDDLEWARE
        # OS denies group access (mode 0600, bob not owner).
        osec.add_user("bob", groups=["finance"])
        stack = AuthorisationStack().plug_os(osec)
        bob_request = MediationRequest(
            user="bob", user_key="Kbob", object_type="SalariesDB",
            operation="read")
        assert stack.mediate(bob_request).deciding_layer() == Layer.OS


class TestPluggability:
    def test_empty_stack_raises(self):
        with pytest.raises(AuthorisationError):
            AuthorisationStack().mediate(request())

    def test_empty_stack_opt_out(self):
        stack = AuthorisationStack(require_some_layer=False)
        assert stack.mediate(request()).allowed  # vacuous allow, explicit

    def test_paper_example_tm_plus_os_only(self, parts):
        # "in the absence of CORBASec support ... authorisation is based
        # only on a combination of KeyNote and underlying OS policy."
        osec, _ejb, session, _predicate = parts
        stack = (AuthorisationStack()
                 .plug_os(osec).plug_trust_management(session))
        assert stack.configured_layers() == (Layer.OS,
                                             Layer.TRUST_MANAGEMENT)
        assert stack.check(request("read"))
        assert not stack.check(request("write"))

    def test_all_sixteen_configurations(self, parts):
        """Every subset of layers mediates; result = AND of present layers
        for an all-allow request."""
        osec, ejb, session, predicate = parts
        for include in itertools.product([False, True], repeat=4):
            stack = AuthorisationStack(require_some_layer=False)
            if include[0]:
                stack.plug_os(osec)
            if include[1]:
                stack.plug_middleware(ejb)
            if include[2]:
                stack.plug_trust_management(session)
            if include[3]:
                stack.plug_application(predicate)
            decision = stack.mediate(request("read"))
            assert decision.allowed  # read passes every layer
            assert len(decision.decisions) == sum(include)

    def test_layer_lookup(self, parts):
        _osec, _ejb, session, _predicate = parts
        stack = AuthorisationStack().plug_trust_management(session)
        decision = stack.mediate(request("read"))
        assert decision.layer(Layer.TRUST_MANAGEMENT).allowed
        assert decision.layer(Layer.OS) is None


class TestAudit:
    def test_decisions_audited(self, parts):
        osec, _ejb, session, _predicate = parts
        audit = AuditLog()
        stack = (AuthorisationStack(audit=audit)
                 .plug_os(osec).plug_trust_management(session))
        stack.check(request("read"))
        stack.check(request("write"))
        records = audit.find(category="stack.mediate")
        assert len(records) == 2
        assert records[0].outcome == "allow"
        assert records[1].outcome == "deny"
        assert records[1].detail["denied_by"] == "TRUST_MANAGEMENT"


class TestClockStamping:
    def test_audit_records_real_simulated_time(self, parts):
        from repro.util.clock import SimulatedClock
        _osec, _ejb, session, _predicate = parts
        audit = AuditLog()
        clock = SimulatedClock()
        stack = (AuthorisationStack(audit=audit, clock=clock)
                 .plug_trust_management(session))
        clock.advance(7.25)
        stack.check(request("read"))
        clock.advance(1.75)
        stack.check(request("write"))
        stamps = [r.timestamp for r in audit.find(category="stack.mediate")]
        assert stamps == [7.25, 9.0]

    def test_clock_falls_back_to_observability(self, parts):
        from repro.obs import Observability
        _osec, _ejb, session, _predicate = parts
        audit = AuditLog()
        obs = Observability()
        stack = (AuthorisationStack(audit=audit, obs=obs)
                 .plug_trust_management(session))
        obs.clock.advance(3.0)
        stack.check(request("read"))
        assert audit.last(category="stack.mediate").timestamp == 3.0

    def test_clockless_stack_still_stamps_zero(self, parts):
        _osec, _ejb, session, _predicate = parts
        audit = AuditLog()
        stack = (AuthorisationStack(audit=audit)
                 .plug_trust_management(session))
        stack.check(request("read"))
        assert audit.last(category="stack.mediate").timestamp == 0.0


class TestFrozenRequest:
    def test_requests_are_hashable(self):
        a = request("read")
        b = request("read")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1  # usable as cache / audit-dedup keys

    def test_attribute_dicts_are_frozen_on_construction(self):
        req = MediationRequest(user="alice", user_key="Kalice",
                               object_type="SalariesDB", operation="read",
                               attributes={"app_domain": "SalariesDB"})
        assert isinstance(req.attributes, FrozenAttributes)
        assert req.attributes["app_domain"] == "SalariesDB"
        with pytest.raises(TypeError):
            req.attributes["app_domain"] = "Other"  # type: ignore[index]

    def test_source_mutation_cannot_leak_in(self):
        source = {"app_domain": "SalariesDB"}
        req = MediationRequest(user="alice", user_key="Kalice",
                               object_type="SalariesDB", operation="read",
                               attributes=source)
        source["app_domain"] = "Other"
        source["oper"] = "write"
        assert dict(req.attributes) == {"app_domain": "SalariesDB"}

    def test_frozen_attributes_mapping_contract(self):
        frozen = FrozenAttributes({"b": "2", "a": "1"})
        assert frozen == {"a": "1", "b": "2"}
        assert sorted(frozen) == ["a", "b"]
        assert len(frozen) == 2
        assert frozen.get("missing") is None
        with pytest.raises(KeyError):
            frozen["missing"]
        with pytest.raises(AttributeError):
            frozen._items = ()


class TestStackObservability:
    def test_mediation_produces_per_layer_spans(self, parts):
        from repro.obs import Observability
        osec, ejb, session, predicate = parts
        obs = Observability()
        stack = (AuthorisationStack(obs=obs)
                 .plug_os(osec).plug_middleware(ejb)
                 .plug_trust_management(session).plug_application(predicate))
        stack.check(request("read"))
        mediate = obs.tracer.find("stack.mediate")
        assert len(mediate) == 1
        assert mediate[0].status == "allow"
        layer_spans = [s for s in obs.tracer.spans
                       if s.name.startswith("stack.layer.")]
        assert [s.name.removeprefix("stack.layer.") for s in layer_spans] == \
            ["APPLICATION", "TRUST_MANAGEMENT", "MIDDLEWARE", "OS"]
        assert all(s.parent_id == mediate[0].span_id for s in layer_spans)
        assert obs.metrics.counter("stack.mediate.allow").value == 1

    def test_denial_span_names_the_layer(self, parts):
        from repro.obs import Observability
        _osec, _ejb, session, _predicate = parts
        obs = Observability()
        stack = (AuthorisationStack(obs=obs)
                 .plug_trust_management(session))
        stack.check(request("write"))
        mediate = obs.tracer.find("stack.mediate")[0]
        assert mediate.status == "deny"
        assert mediate.attributes["denied_by"] == "TRUST_MANAGEMENT"
        assert obs.metrics.counter(
            "stack.layer.TRUST_MANAGEMENT.deny").value == 1

"""The authorisation stack's TTL'd mediation cache."""

import pytest

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.obs import Observability
from repro.util.clock import SimulatedClock
from repro.webcom.faults import (LayerFaultInjector, LayerFaultPlan,
                                 LayerFaultRule)
from repro.webcom.health import DegradedMode
from repro.webcom.stack import AuthorisationStack, Layer, MediationRequest


REQUEST = MediationRequest(user="alice", user_key="Kalice",
                           object_type="graph", operation="stage")


class RecordingPredicate:
    """An L3 predicate that counts how often the stack consults it."""

    def __init__(self, allow=True):
        self.allow = allow
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        return self.allow


@pytest.fixture
def clock():
    return SimulatedClock()


def app_stack(clock, ttl=60.0, allow=True):
    predicate = RecordingPredicate(allow)
    stack = AuthorisationStack(clock=clock, cache_ttl=ttl)
    stack.plug_application(predicate)
    return stack, predicate


class TestMediationCache:
    def test_hit_serves_without_rerunning_layers(self, clock):
        stack, predicate = app_stack(clock)
        first = stack.mediate(REQUEST)
        second = stack.mediate(REQUEST)
        assert first.allowed and second.allowed
        assert predicate.calls == 1
        assert stack.cache_info() == {"entries": 1, "hits": 1, "misses": 1,
                                      "invalidated": 0, "survived_churn": 0}

    def test_denials_are_cached_too(self, clock):
        stack, predicate = app_stack(clock, allow=False)
        assert not stack.mediate(REQUEST).allowed
        assert not stack.mediate(REQUEST).allowed
        assert predicate.calls == 1

    def test_distinct_requests_are_distinct_entries(self, clock):
        stack, predicate = app_stack(clock)
        stack.mediate(REQUEST)
        stack.mediate(MediationRequest(user="bob", user_key="Kbob",
                                       object_type="graph",
                                       operation="stage"))
        assert predicate.calls == 2 and stack.cache_hits == 0

    def test_ttl_expiry_reruns_the_layers(self, clock):
        stack, predicate = app_stack(clock, ttl=10.0)
        stack.mediate(REQUEST)
        clock.advance(5.0)
        stack.mediate(REQUEST)  # within TTL
        clock.advance(6.0)
        stack.mediate(REQUEST)  # 11s after the store: expired
        assert predicate.calls == 2
        assert stack.cache_hits == 1 and stack.cache_misses == 2

    def test_disabled_without_ttl(self, clock):
        predicate = RecordingPredicate()
        stack = AuthorisationStack(clock=clock)  # cache_ttl=None
        stack.plug_application(predicate)
        stack.mediate(REQUEST)
        stack.mediate(REQUEST)
        assert predicate.calls == 2
        assert stack.cache_info() == {"entries": 0, "hits": 0, "misses": 0,
                                      "invalidated": 0, "survived_churn": 0}

    def test_replugging_invalidates(self, clock):
        stack, predicate = app_stack(clock)
        stack.mediate(REQUEST)
        replacement = RecordingPredicate()
        stack.plug_application(replacement)
        stack.mediate(REQUEST)
        assert replacement.calls == 1  # not served the stale decision

    def test_mark_uncacheable_layer_reruns_every_time(self, clock):
        stack, predicate = app_stack(clock)
        stack.mark_uncacheable(Layer.APPLICATION)
        stack.mediate(REQUEST)
        stack.mediate(REQUEST)
        assert predicate.calls == 2
        assert stack.cache_info()["entries"] == 0

    def test_denial_above_uncacheable_layer_is_still_cached(self, clock):
        # L3 denies before the (uncacheable) TM layer is consulted, so the
        # cached replay reproduces the same short-circuit.
        session = KeyNoteSession(keystore=Keystore(), clock=clock)
        predicate = RecordingPredicate(allow=False)
        stack = AuthorisationStack(clock=clock, cache_ttl=60.0)
        stack.plug_trust_management(session)
        stack.plug_application(predicate)
        stack.mark_uncacheable(Layer.TRUST_MANAGEMENT)
        decision = stack.mediate(REQUEST)
        assert not decision.allowed
        assert decision.deciding_layer() == Layer.APPLICATION
        assert stack.mediate(REQUEST).allowed is False
        assert predicate.calls == 1  # served from cache

    def test_metrics_and_span_annotation(self, clock):
        obs = Observability()
        predicate = RecordingPredicate()
        stack = AuthorisationStack(obs=obs, clock=obs.clock, cache_ttl=60.0)
        stack.plug_application(predicate)
        stack.mediate(REQUEST)
        stack.mediate(REQUEST)
        assert obs.metrics.counter("stack.cache.miss").value == 1
        assert obs.metrics.counter("stack.cache.hit").value == 1
        spans = obs.tracer.find("stack.mediate")
        assert [s.attributes["cached"] for s in spans] == [False, True]


class TestTrustManagementInvalidation:
    def build_session(self, clock):
        keystore = Keystore()
        keystore.create("Kdelegate")
        keystore.create("Kalice")
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(
            Credential.build("POLICY", '"Kdelegate"', "true"))
        credential = Credential.build(
            "Kdelegate", '"Kalice"', "true").sign(
                keystore.pair("Kdelegate").private)
        session.add_credential(credential)
        return session, credential

    def test_revocation_invalidates_a_cached_allow(self, clock):
        session, credential = self.build_session(clock)
        stack = AuthorisationStack(clock=clock, cache_ttl=3600.0)
        stack.plug_trust_management(session)
        assert stack.mediate(REQUEST).allowed
        assert stack.mediate(REQUEST).allowed  # cached
        assert stack.cache_hits == 1
        assert session.revoke_credential(credential)
        # The fingerprint changed: the stale ALLOW must not be replayed.
        decision = stack.mediate(REQUEST)
        assert not decision.allowed
        assert decision.deciding_layer() == Layer.TRUST_MANAGEMENT

    def test_new_credential_invalidates_a_cached_deny(self, clock):
        keystore = Keystore()
        keystore.create("Kdelegate")
        keystore.create("Kalice")
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(
            Credential.build("POLICY", '"Kdelegate"', "true"))
        stack = AuthorisationStack(clock=clock, cache_ttl=3600.0)
        stack.plug_trust_management(session)
        assert not stack.mediate(REQUEST).allowed
        session.add_credential(
            Credential.build("Kdelegate", '"Kalice"', "true").sign(
                keystore.pair("Kdelegate").private))
        assert stack.mediate(REQUEST).allowed

    def test_fail_static_stale_serve_is_never_recached_as_fresh(self, clock):
        """The staleness edge at the cache/breaker boundary: a fail-static
        decision served from the last-known-good store during an outage must
        never be returned by the TTL cache as *fresh* once the layer
        recovers and the breaker closes."""
        session, _credential = self.build_session(clock)
        injector = LayerFaultInjector(LayerFaultPlan(seed=0, rules=(
            LayerFaultRule(layer="TRUST_MANAGEMENT", fail=1.0,
                           start=10.0, end=50.0),)))
        stack = AuthorisationStack(clock=clock, cache_ttl=5.0,
                                   layer_faults=injector,
                                   breaker_threshold=1,
                                   breaker_cooldown=20.0)
        stack.set_degraded_mode(Layer.TRUST_MANAGEMENT,
                                DegradedMode.FAIL_STATIC)
        stack.plug_trust_management(session)

        healthy = stack.mediate(REQUEST)
        assert healthy.allowed and not healthy.stale

        clock.advance(15.0)  # t=15: TTL lapsed, fault window open
        stale = stack.mediate(REQUEST)
        assert stale.allowed == healthy.allowed
        assert stale.stale and stale.is_degraded()
        # The degraded decision must not have been stored: the cache holds
        # nothing (the healthy entry expired, the stale one was skipped).
        assert stack.cache_info()["entries"] == 0
        assert stack.mediate(REQUEST).stale  # still degraded, still marked

        clock.advance(45.0)  # t=60: fault over, breaker cooldown passed
        fresh = stack.mediate(REQUEST)
        assert fresh.allowed and not fresh.stale and not fresh.is_degraded()
        # The fresh decision is cached; a hit must not resurrect staleness.
        cached = stack.mediate(REQUEST)
        assert not cached.stale and not cached.is_degraded()
        assert stack.cache_info()["entries"] == 1

    def test_invalidate_cache_is_explicit_flush(self, clock):
        session, _credential = self.build_session(clock)
        stack = AuthorisationStack(clock=clock, cache_ttl=3600.0)
        stack.plug_trust_management(session)
        stack.mediate(REQUEST)
        assert stack.cache_info()["entries"] == 1
        stack.invalidate_cache()
        assert stack.cache_info()["entries"] == 0
        stack.mediate(REQUEST)
        assert stack.cache_hits == 0 and stack.cache_misses == 2

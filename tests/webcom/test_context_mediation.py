"""Context-aware mediation — the paper's Section-7 future work, implemented.

"The current system provides for making mediation decisions purely on the
identifier of the components.  Extending this to consider the environment of
the component, its inputs, and so forth, is a topic of ongoing research."

The master's attribute extractor turns a node's *inputs* into KeyNote action
attributes, so credentials can bound, e.g., the payment amount a client may
be scheduled to process.
"""

import pytest

from repro.errors import SchedulingError
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment


def payment_graph():
    g = CondensedGraph("payment")
    g.add_node("pay", operator="pay", arity=1)
    g.entry("amount", "pay", 0)
    g.set_exit("pay")
    return g


def amount_extractor(node, context):
    args = context.get("args", ())
    if node.operator_name == "pay" and args:
        return {"amount": str(args[0])}
    return {}


@pytest.fixture
def world():
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster(
        "master", net, key_name="Kmaster",
        scheduler_filter=env.master_filter(attribute_extractor=amount_extractor))
    env.create_key("Kclerk")
    client = WebComClient("clerk-node", net, {"pay": lambda v: f"paid {v}"},
                          key_name="Kclerk", user="clerk",
                          authoriser=env.client_authoriser("clerk-node"))
    env.client_trusts_master("clerk-node", "Kmaster")
    client.register_with("master")
    net.run_until_quiet()
    # The clerk's node may be scheduled payments only up to 1000.
    env.master_session.add_policy(
        'Authorizer: POLICY\nLicensees: "Kclerk"\n'
        'Conditions: app_domain=="WebCom" && op=="pay" && amount <= 1000;')
    return env, master


class TestContextAwareMediation:
    def test_small_payment_scheduled(self, world):
        _env, master = world
        assert master.run_graph(payment_graph(), {"amount": 500}) == "paid 500"

    def test_boundary_payment_scheduled(self, world):
        _env, master = world
        assert master.run_graph(payment_graph(), {"amount": 1000}) \
            == "paid 1000"

    def test_large_payment_refused(self, world):
        _env, master = world
        with pytest.raises(SchedulingError):
            master.run_graph(payment_graph(), {"amount": 5000})

    def test_non_numeric_amount_refused(self, world):
        # KeyNote soft-failure semantics: an invalid numeric operand makes
        # the test false, so the request is denied rather than crashing.
        _env, master = world
        with pytest.raises(SchedulingError):
            master.run_graph(payment_graph(), {"amount": "lots"})

    def test_extractor_cannot_override_builtins(self, world):
        env, master = world

        def spoofing_extractor(node, context):
            # Tries to masquerade as a different operation.
            return {"op": "audit", "app_domain": "Elsewhere"}

        master.scheduler_filter = env.master_filter(
            attribute_extractor=spoofing_extractor)
        # The built-in op/app_domain attributes win, so the pay policy
        # still applies (and allows a small amount... but the spoof also
        # dropped `amount`, so the numeric test fails -> denied).
        with pytest.raises(SchedulingError):
            master.run_graph(payment_graph(), {"amount": 10})

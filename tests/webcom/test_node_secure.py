"""Tests for WebCom master/client scheduling and the Secure WebCom
handshake (Figure 3)."""

import pytest

from repro.errors import AuthorisationError, SchedulingError
from repro.webcom.engine import EvaluationMode
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment

OPS = {"add": lambda a, b: a + b, "double": lambda v: 2 * v}


def calc_graph():
    g = CondensedGraph("calc")
    g.add_node("add", operator="add", arity=2)
    g.add_node("double", operator="double", arity=1)
    g.connect("add", "double", 0)
    g.entry("x", "add", 0)
    g.entry("y", "add", 1)
    g.set_exit("double")
    return g


def plain_setup(n_clients=2):
    net = SimulatedNetwork()
    master = WebComMaster("master", net)
    clients = []
    for i in range(n_clients):
        client = WebComClient(f"c{i}", net, OPS)
        client.register_with("master")
        clients.append(client)
    net.run_until_quiet()
    return net, master, clients


class TestPlainScheduling:
    def test_registration(self):
        _net, master, _clients = plain_setup()
        assert set(master.clients) == {"c0", "c1"}
        assert master.clients["c0"].operations == {"add", "double"}

    def test_run_graph(self):
        _net, master, clients = plain_setup()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        total = sum(len(c.executed) for c in clients)
        assert total == 2

    def test_deterministic_placement(self):
        _net, master, _clients = plain_setup()
        master.run_graph(calc_graph(), {"x": 1, "y": 2})
        # Sorted client order; first eligible wins every time.
        assert master.schedule_log == [("add", "c0"), ("double", "c0")]

    def test_no_client_for_operation(self):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        client = WebComClient("c", net, {"other": lambda: 1})
        client.register_with("m")
        net.run_until_quiet()
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_client_error_reported(self):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        bad_ops = {"add": lambda a, b: 1 / 0, "double": lambda v: v}
        client = WebComClient("c", net, bad_ops)
        client.register_with("m")
        net.run_until_quiet()
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_evaluation_mode_pass_through(self):
        _net, master, _clients = plain_setup()
        result = master.run_graph(calc_graph(), {"x": 3, "y": 4},
                                  mode=EvaluationMode.COERCION)
        assert result == 14


class TestFaultTolerance:
    def test_reschedule_after_crash(self):
        net, master, clients = plain_setup(n_clients=2)
        net.crash("c0")
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        # c0 was marked dead; all work went to c1.
        assert not master.clients["c0"].alive
        assert master.clients["c1"].executed == 2

    def test_all_clients_dead(self):
        net, master, _clients = plain_setup(n_clients=2)
        net.crash("c0")
        net.crash("c1")
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_partition_counts_as_loss(self):
        net, master, clients = plain_setup(n_clients=2)
        net.partition("master", "c0")
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        assert master.clients["c1"].executed == 2


def secure_setup(trusted_ops=("add", "double"), client_trusts=True):
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit)
    env.create_key("Kc0")
    client = WebComClient("c0", net, OPS, key_name="Kc0", user="alice",
                          authoriser=env.client_authoriser("c0"),
                          audit=env.audit)
    if trusted_ops:
        env.trust_clients_for_operations(["Kc0"], list(trusted_ops))
    if client_trusts:
        env.client_trusts_master("c0", "Kmaster")
    client.register_with("master")
    net.run_until_quiet()
    return env, net, master, client


class TestSecureWebCom:
    def test_mutually_trusted_execution(self):
        env, _net, master, _client = secure_setup()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        # Both directions of the Figure-3 handshake were mediated.
        assert len(env.audit.find(category="keynote.query",
                                  outcome="allow")) >= 4
        assert len(env.audit.find(category="webcom.client.check",
                                  outcome="allow")) == 2

    def test_master_refuses_untrusted_client(self):
        env, _net, master, _client = secure_setup(trusted_ops=())
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_master_refuses_unlisted_operation(self):
        env, _net, master, _client = secure_setup(trusted_ops=("add",))
        # 'add' fires, then 'double' has no authorised client.
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_client_refuses_untrusted_master(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        with pytest.raises(AuthorisationError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        assert client.executed == []
        assert len(env.audit.find(category="webcom.client.check",
                                  outcome="deny")) >= 1

    def test_client_scoped_trust(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        env.client_trusts_master("c0", "Kmaster", operations=["add"])
        with pytest.raises(AuthorisationError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        # 'add' went through before 'double' was refused.
        assert client.executed == ["add"]

    def test_denied_client_does_not_execute(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        try:
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        except AuthorisationError:
            pass
        assert client.executed == []

"""Tests for WebCom master/client scheduling and the Secure WebCom
handshake (Figure 3)."""

import pytest

from repro.errors import AuthorisationError, SchedulingError
from repro.webcom.engine import EvaluationMode
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment

OPS = {"add": lambda a, b: a + b, "double": lambda v: 2 * v}


def calc_graph():
    g = CondensedGraph("calc")
    g.add_node("add", operator="add", arity=2)
    g.add_node("double", operator="double", arity=1)
    g.connect("add", "double", 0)
    g.entry("x", "add", 0)
    g.entry("y", "add", 1)
    g.set_exit("double")
    return g


def plain_setup(n_clients=2):
    net = SimulatedNetwork()
    master = WebComMaster("master", net)
    clients = []
    for i in range(n_clients):
        client = WebComClient(f"c{i}", net, OPS)
        client.register_with("master")
        clients.append(client)
    net.run_until_quiet()
    return net, master, clients


class TestPlainScheduling:
    def test_registration(self):
        _net, master, _clients = plain_setup()
        assert set(master.clients) == {"c0", "c1"}
        assert master.clients["c0"].operations == {"add", "double"}

    def test_run_graph(self):
        _net, master, clients = plain_setup()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        total = sum(len(c.executed) for c in clients)
        assert total == 2

    def test_deterministic_placement(self):
        _net, master, _clients = plain_setup()
        master.run_graph(calc_graph(), {"x": 1, "y": 2})
        # Sorted client order; first eligible wins every time.
        assert master.schedule_log == [("add", "c0"), ("double", "c0")]

    def test_no_client_for_operation(self):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        client = WebComClient("c", net, {"other": lambda: 1})
        client.register_with("m")
        net.run_until_quiet()
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_client_error_reported(self):
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        bad_ops = {"add": lambda a, b: 1 / 0, "double": lambda v: v}
        client = WebComClient("c", net, bad_ops)
        client.register_with("m")
        net.run_until_quiet()
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_evaluation_mode_pass_through(self):
        _net, master, _clients = plain_setup()
        result = master.run_graph(calc_graph(), {"x": 3, "y": 4},
                                  mode=EvaluationMode.COERCION)
        assert result == 14


class TestFaultTolerance:
    def test_reschedule_after_crash(self):
        net, master, clients = plain_setup(n_clients=2)
        net.crash("c0")
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        # c0 was marked dead; all work went to c1.
        assert not master.clients["c0"].alive
        assert master.clients["c1"].executed == 2

    def test_all_clients_dead(self):
        net, master, _clients = plain_setup(n_clients=2)
        net.crash("c0")
        net.crash("c1")
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_partition_counts_as_loss(self):
        net, master, clients = plain_setup(n_clients=2)
        net.partition("master", "c0")
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        assert master.clients["c1"].executed == 2


def secure_setup(trusted_ops=("add", "double"), client_trusts=True):
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit)
    env.create_key("Kc0")
    client = WebComClient("c0", net, OPS, key_name="Kc0", user="alice",
                          authoriser=env.client_authoriser("c0"),
                          audit=env.audit)
    if trusted_ops:
        env.trust_clients_for_operations(["Kc0"], list(trusted_ops))
    if client_trusts:
        env.client_trusts_master("c0", "Kmaster")
    client.register_with("master")
    net.run_until_quiet()
    return env, net, master, client


class TestSecureWebCom:
    def test_mutually_trusted_execution(self):
        env, _net, master, _client = secure_setup()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        # Both directions of the Figure-3 handshake were mediated.
        assert len(env.audit.find(category="keynote.query",
                                  outcome="allow")) >= 4
        assert len(env.audit.find(category="webcom.client.check",
                                  outcome="allow")) == 2

    def test_master_refuses_untrusted_client(self):
        env, _net, master, _client = secure_setup(trusted_ops=())
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_master_refuses_unlisted_operation(self):
        env, _net, master, _client = secure_setup(trusted_ops=("add",))
        # 'add' fires, then 'double' has no authorised client.
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})

    def test_client_refuses_untrusted_master(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        with pytest.raises(AuthorisationError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        assert client.executed == []
        assert len(env.audit.find(category="webcom.client.check",
                                  outcome="deny")) >= 1

    def test_client_scoped_trust(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        env.client_trusts_master("c0", "Kmaster", operations=["add"])
        with pytest.raises(AuthorisationError):
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        # 'add' went through before 'double' was refused.
        assert client.executed == ["add"]

    def test_denied_client_does_not_execute(self):
        env, _net, master, client = secure_setup(client_trusts=False)
        try:
            master.run_graph(calc_graph(), {"x": 1, "y": 2})
        except AuthorisationError:
            pass
        assert client.executed == []


class TestRequestDeduplication:
    def test_duplicate_execute_does_not_double_run(self):
        # A network-duplicated 'execute' must not re-run a non-idempotent
        # operation: the client replays its cached reply instead.
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        net = SimulatedNetwork()
        FaultInjector(FaultPlan(seed=3, rules=(
            FaultRule(kind="execute", duplicate=1.0),))).install(net)
        master = WebComMaster("m", net)
        counter = []
        client = WebComClient("c", net, {
            "bump": lambda v: counter.append(v) or len(counter)})
        client.register_with("m")
        net.run_until_quiet()
        g = CondensedGraph("g")
        g.add_node("n", operator="bump", arity=1)
        g.entry("x", "n", 0)
        g.set_exit("n")
        assert master.run_graph(g, {"x": 1}) == 1
        net.run_until_quiet()  # flush the duplicate and its replayed reply
        assert counter == [1]  # ran exactly once
        assert client.duplicates_served >= 1

    def test_duplicate_result_rejected(self):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        net = SimulatedNetwork()
        FaultInjector(FaultPlan(seed=3, rules=(
            FaultRule(kind="result", duplicate=1.0),))).install(net)
        master = WebComMaster("m", net)
        client = WebComClient("c", net, OPS)
        client.register_with("m")
        net.run_until_quiet()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        net.run_until_quiet()
        # One copy of each reply was consumed; every duplicate was refused.
        assert master.stale_rejected >= 2
        assert master._results == {}

    def test_stale_reply_for_abandoned_request_rejected(self):
        # A reply delayed past every retry deadline must not linger in the
        # master's result buffer once the request was abandoned.
        net = SimulatedNetwork()
        master = WebComMaster("m", net, max_attempts=1, max_retries=0,
                              request_timeout=2.0)
        client = WebComClient("c", net, OPS)
        client.register_with("m")
        net.run_until_quiet()
        net.set_link_latency("m", "c", 5.0)  # RTT 10 > timeout 2
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 3, "y": 4})
        net.run_until_quiet()  # the late reply limps in now
        assert master.stale_rejected >= 1
        assert master._results == {}
        assert master._pending == set()


class TestHeartbeatLiveness:
    def test_dead_client_rejoins_after_recovery(self):
        # The satellite fix: a client marked dead is re-probed and rejoins
        # the pool instead of staying alive=False forever.
        net = SimulatedNetwork()
        master = WebComMaster("m", net)
        client = WebComClient("c0", net, OPS)
        client.register_with("m")
        WebComClient("c1", net, OPS).register_with("m")
        net.run_until_quiet()
        net.crash("c0")
        assert master.run_graph(calc_graph(), {"x": 1, "y": 1}) == 4
        assert not master.clients["c0"].alive
        net.recover("c0")
        assert master.heartbeat() == ["c0"]
        assert master.clients["c0"].alive
        # And it is scheduled again (sorted order puts c0 first).
        master.run_graph(calc_graph(), {"x": 1, "y": 1})
        assert master.clients["c0"].executed > 0

    def test_forced_probe_when_pool_is_exhausted(self):
        # Every provider is dead but one has recovered on the network: the
        # scheduler probes before giving up and completes the graph.
        net = SimulatedNetwork()
        master = WebComMaster("m", net, request_timeout=2.0, max_retries=0)
        WebComClient("c0", net, OPS).register_with("m")
        net.run_until_quiet()
        net.crash("c0")
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 1})
        assert not master.clients["c0"].alive
        net.recover("c0")
        # No manual revival: execute_remote's forced heartbeat rejoins c0.
        assert master.run_graph(calc_graph(), {"x": 1, "y": 1}) == 4

    def test_heartbeat_noop_when_pool_healthy(self):
        _net, master, _clients = plain_setup()
        assert master.heartbeat() == []

    def test_crash_window_recovery_mid_run(self):
        # A client that dies for a bounded window mid-graph comes back and
        # serves later nodes of the same run.
        from repro.webcom.faults import CrashWindow, FaultInjector, FaultPlan
        from repro.webcom.patterns import pipeline

        net = SimulatedNetwork()
        FaultInjector(FaultPlan(seed=0, crash_windows=(
            CrashWindow("c0", 2.0, 30.0),))).install(net)
        master = WebComMaster("m", net, heartbeat_interval=5.0)
        WebComClient("c0", net, {"inc": lambda v: v + 1}).register_with("m")
        WebComClient("c1", net, {"inc": lambda v: v + 1}).register_with("m")
        net.run_until_quiet()
        assert master.run_graph(pipeline("p", ["inc"] * 6), {"x": 0}) == 6
        # c0 died inside its window, was revived by a heartbeat after it
        # closed, and took work again.
        assert master.clients["c0"].alive
        assert master.clients["c0"].executed > 0


class TestRetryBackoff:
    def test_retries_reuse_request_id(self):
        # A dropped first send is retried under the same request id, so the
        # reply matches and no client is falsely declared dead.
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        net = SimulatedNetwork()

        class OneShotDrop:
            """Drop only the first execute; everything else flows."""

            def __init__(self):
                self.dropped = False

            def plan_delivery(self, sender, recipient, kind, latency):
                if kind == "execute" and not self.dropped:
                    self.dropped = True
                    return []
                return [latency]

        master = WebComMaster("m", net)
        client = WebComClient("c", net, OPS)
        client.register_with("m")
        net.run_until_quiet()
        net.fault_injector = OneShotDrop()
        assert master.run_graph(calc_graph(), {"x": 3, "y": 4}) == 14
        assert master.clients["c"].alive
        # Two request ids (one per node), not three: the retry reused one.
        assert master._request_seq == 2

    def test_backoff_stretches_waits(self):
        net = SimulatedNetwork()
        master = WebComMaster("m", net, max_attempts=1, max_retries=2,
                              request_timeout=2.0, backoff=2.0)
        WebComClient("c", net, OPS).register_with("m")
        net.run_until_quiet()
        net.crash("c")
        start = net.clock.now()
        with pytest.raises(SchedulingError):
            master.run_graph(calc_graph(), {"x": 1, "y": 1})
        # Waited 2 + 4 + 8 = 14 simulated seconds before abandoning.
        assert net.clock.now() - start >= 14.0

    def test_timeout_validation(self):
        with pytest.raises(SchedulingError):
            WebComMaster("m1", SimulatedNetwork(), request_timeout=0)
        with pytest.raises(SchedulingError):
            WebComMaster("m2", SimulatedNetwork(), backoff=0.5)

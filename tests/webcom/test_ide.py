"""Tests for the IDE interrogation and placement analysis (Figure 11)."""

import pytest

from repro.errors import SchedulingError, UnknownComponentError
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.middleware.registry import MiddlewareRegistry
from repro.webcom.ide import PlacementSpec, WebComIDE


@pytest.fixture
def ide() -> WebComIDE:
    registry = MiddlewareRegistry()

    ejb = EJBServer(host="hx", server_name="s1")
    ejb.deploy_container("Payroll")
    ejb.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("Payroll", "Clerk")
    ejb.declare_role("Payroll", "Manager")
    ejb.add_method_permission("Payroll", "SalariesDB", "Clerk", "write")
    ejb.add_method_permission("Payroll", "SalariesDB", "Manager", "read")
    ejb.add_user("Alice")
    ejb.add_user("Bob")
    ejb.assign_role("Payroll", "Clerk", "Alice")
    ejb.assign_role("Payroll", "Manager", "Bob")
    registry.register(ejb)

    orb = CorbaOrb(machine="hy", orb_name="o1")
    orb.register_interface("ReportGen", operations=("generate",))
    orb.declare_role("Analyst")
    orb.grant_right("Analyst", "ReportGen", "generate")
    orb.assign_role("Analyst", "Carol")
    registry.register(orb)

    return WebComIDE(registry)


EJB_DOMAIN = "hx:s1/Payroll"
SALARIES = f"{EJB_DOMAIN}#SalariesDB"
REPORTS = "hy/o1#ReportGen"


class TestInterrogation:
    def test_palette_covers_all_middleware(self, ide):
        palette = ide.interrogate()
        assert len(palette) == 2
        ids = {entry.component.component_id for entry in palette}
        assert ids == {SALARIES, REPORTS}

    def test_unknown_component(self, ide):
        with pytest.raises(UnknownComponentError):
            ide.interrogate().entry("nope#x")

    def test_global_policy_merges_middleware(self, ide):
        policy = ide.global_policy()
        assert policy.domains() == {EJB_DOMAIN, "hy/o1"}


class TestCombinationAnalysis:
    def test_authorised_combinations(self, ide):
        entry = ide.interrogate().entry(SALARIES)
        combos = {(c.domain, c.role, c.user, c.operation)
                  for c in entry.combinations}
        assert combos == {
            (EJB_DOMAIN, "Clerk", "Alice", "write"),
            (EJB_DOMAIN, "Manager", "Bob", "read"),
        }

    def test_entry_helpers(self, ide):
        entry = ide.interrogate().entry(SALARIES)
        assert entry.users() == {"Alice", "Bob"}
        assert entry.domain_roles() == {(EJB_DOMAIN, "Clerk"),
                                        (EJB_DOMAIN, "Manager")}

    def test_cross_middleware_isolation(self, ide):
        entry = ide.interrogate().entry(REPORTS)
        assert entry.users() == {"Carol"}


class TestPlacement:
    def test_valid_placements(self, ide):
        specs = ide.valid_placements(SALARIES)
        assert PlacementSpec(EJB_DOMAIN, "Clerk", "Alice") in specs
        assert PlacementSpec(EJB_DOMAIN, "Manager", "Bob") in specs
        assert len(specs) == 2

    def test_valid_placements_filtered_by_operation(self, ide):
        specs = ide.valid_placements(SALARIES, operation="read")
        assert specs == [PlacementSpec(EJB_DOMAIN, "Manager", "Bob")]

    def test_check_full_placement(self, ide):
        ide.check_placement(SALARIES,
                            PlacementSpec(EJB_DOMAIN, "Clerk", "Alice"))
        with pytest.raises(SchedulingError):
            ide.check_placement(SALARIES,
                                PlacementSpec(EJB_DOMAIN, "Clerk", "Bob"))

    def test_check_partial_placement(self, ide):
        # Partial spec: any authorised user in the domain/role.
        spec = PlacementSpec(EJB_DOMAIN, "Manager")
        assert spec.is_partial()
        ide.check_placement(SALARIES, spec)
        with pytest.raises(SchedulingError):
            ide.check_placement(SALARIES, PlacementSpec(EJB_DOMAIN, "Intern"))

    def test_resolve_partial_to_user(self, ide):
        spec = PlacementSpec(EJB_DOMAIN, "Manager")
        assert ide.resolve_user(SALARIES, spec) == "Bob"

    def test_resolve_full_spec_validates(self, ide):
        spec = PlacementSpec(EJB_DOMAIN, "Clerk", "Alice")
        assert ide.resolve_user(SALARIES, spec) == "Alice"
        with pytest.raises(SchedulingError):
            ide.resolve_user(SALARIES, PlacementSpec(EJB_DOMAIN, "Clerk",
                                                     "Mallory"))

    def test_resolve_with_operation_constraint(self, ide):
        spec = PlacementSpec(EJB_DOMAIN, "Clerk")
        with pytest.raises(SchedulingError):
            ide.resolve_user(SALARIES, spec, operation="read")

    def test_spec_str(self):
        assert str(PlacementSpec("D", "R", "u")) == "D/R:u"
        assert str(PlacementSpec("D", "R")) == "D/R:*"

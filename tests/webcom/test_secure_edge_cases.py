"""Edge cases of the Secure WebCom environment."""

import pytest

from repro.webcom.secure import SecureWebComEnvironment


class TestClientAuthoriser:
    def test_empty_master_key_denied(self):
        env = SecureWebComEnvironment()
        env.client_trusts_master("c", "Kmaster")
        authorise = env.client_authoriser("c")
        assert not authorise("", "op", {})

    def test_unknown_master_denied(self):
        env = SecureWebComEnvironment()
        env.create_key("Kmaster")
        env.create_key("Kstranger")
        env.client_trusts_master("c", "Kmaster")
        authorise = env.client_authoriser("c")
        assert authorise("Kmaster", "anything", {})
        assert not authorise("Kstranger", "anything", {})

    def test_operation_scoped_trust(self):
        env = SecureWebComEnvironment()
        env.create_key("Kmaster")
        env.client_trusts_master("c", "Kmaster", operations=["safe-op"])
        authorise = env.client_authoriser("c")
        assert authorise("Kmaster", "safe-op", {})
        assert not authorise("Kmaster", "scary-op", {})

    def test_sessions_are_per_client(self):
        env = SecureWebComEnvironment()
        env.create_key("Kmaster")
        env.client_trusts_master("c1", "Kmaster")
        # c2 never declared trust: its session is empty.
        assert env.client_authoriser("c1")("Kmaster", "op", {})
        assert not env.client_authoriser("c2")("Kmaster", "op", {})
        assert env.client_session("c1") is not env.client_session("c2")
        assert env.client_session("c1") is env.client_session("c1")

    def test_create_key_idempotent(self):
        env = SecureWebComEnvironment()
        assert env.create_key("K") == "K"
        first = env.keystore.pair("K")
        env.create_key("K")
        assert env.keystore.pair("K") is first


class TestMasterPolicyHelpers:
    def test_trust_clients_builds_disjunction(self):
        env = SecureWebComEnvironment()
        for key in ("Ka", "Kb"):
            env.create_key(key)
        env.trust_clients_for_operations(["Ka", "Kb"], ["op1", "op2"])
        for key in ("Ka", "Kb"):
            for op in ("op1", "op2"):
                assert env.master_session.query(
                    {"app_domain": "WebCom", "op": op}, [key])
        assert not env.master_session.query(
            {"app_domain": "WebCom", "op": "op3"}, ["Ka"])
        assert not env.master_session.query(
            {"app_domain": "Other", "op": "op1"}, ["Ka"])

"""Tests for the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.webcom.network import SimulatedNetwork


@pytest.fixture
def net() -> SimulatedNetwork:
    return SimulatedNetwork()


def attach_recorder(net, peer_id):
    received = []
    net.attach(peer_id, received.append)
    return received


class TestMembership:
    def test_attach_and_peers(self, net):
        attach_recorder(net, "a")
        assert net.peers() == {"a"}

    def test_duplicate_attach_rejected(self, net):
        attach_recorder(net, "a")
        with pytest.raises(NetworkError):
            net.attach("a", lambda m: None)

    def test_send_requires_known_peers(self, net):
        attach_recorder(net, "a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "ping")
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "ping")


class TestDelivery:
    def test_message_delivered_in_latency_order(self, net):
        got_a = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "slow", latency=10.0)
        net.send("b", "a", "fast", latency=1.0)
        net.run_until_quiet()
        assert [m.kind for m in got_a] == ["fast", "slow"]

    def test_clock_advances_to_arrival(self, net):
        attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("a", "b", "ping", latency=5.0)
        net.step()
        assert net.clock.now() == 5.0

    def test_fifo_for_equal_latency(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        for i in range(5):
            net.send("b", "a", f"m{i}")
        net.run_until_quiet()
        assert [m.kind for m in got] == [f"m{i}" for i in range(5)]

    def test_step_empty_queue(self, net):
        assert net.step() is None

    def test_pending_count(self, net):
        attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("a", "b", "x")
        assert net.pending() == 1
        net.run_until_quiet()
        assert net.pending() == 0

    def test_handler_can_send_replies(self, net):
        log = []

        def ponger(message):
            log.append(message.kind)
            if message.kind == "ping":
                net.send("b", "a", "pong")

        net.attach("b", ponger)
        got_a = attach_recorder(net, "a")
        net.send("a", "b", "ping")
        net.run_until_quiet()
        assert log == ["ping"]
        assert [m.kind for m in got_a] == ["pong"]

    def test_message_budget(self, net):
        def flooder(message):
            net.send("a", "a", "again")

        net.attach("a", flooder)
        net.send("a", "a", "start")
        with pytest.raises(NetworkError):
            net.run_until_quiet(max_messages=100)


class TestFaults:
    def test_crash_drops_traffic(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("b")
        net.send("a", "b", "lost")
        net.send("b", "a", "also-lost")
        net.run_until_quiet()
        assert got == []
        assert len(net.dropped) == 2
        assert net.is_crashed("b")

    def test_recover(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("a")
        net.recover("a")
        net.send("b", "a", "hello")
        net.run_until_quiet()
        assert len(got) == 1

    def test_crash_drops_in_flight_messages(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "in-flight")
        net.crash("b")  # sender crashes after sending
        net.run_until_quiet()
        assert got == []

    def test_partition_and_heal(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        attach_recorder(net, "c")
        net.partition("a", "b")
        net.send("b", "a", "blocked")
        net.send("c", "a", "through")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["through"]
        net.heal("a", "b")
        net.send("b", "a", "open-again")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["through", "open-again"]

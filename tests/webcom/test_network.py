"""Tests for the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.webcom.network import SimulatedNetwork


@pytest.fixture
def net() -> SimulatedNetwork:
    return SimulatedNetwork()


def attach_recorder(net, peer_id):
    received = []
    net.attach(peer_id, received.append)
    return received


class TestMembership:
    def test_attach_and_peers(self, net):
        attach_recorder(net, "a")
        assert net.peers() == {"a"}

    def test_duplicate_attach_rejected(self, net):
        attach_recorder(net, "a")
        with pytest.raises(NetworkError):
            net.attach("a", lambda m: None)

    def test_send_requires_known_peers(self, net):
        attach_recorder(net, "a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "ping")
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "ping")


class TestDelivery:
    def test_message_delivered_in_latency_order(self, net):
        got_a = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "slow", latency=10.0)
        net.send("b", "a", "fast", latency=1.0)
        net.run_until_quiet()
        assert [m.kind for m in got_a] == ["fast", "slow"]

    def test_clock_advances_to_arrival(self, net):
        attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("a", "b", "ping", latency=5.0)
        net.step()
        assert net.clock.now() == 5.0

    def test_fifo_for_equal_latency(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        for i in range(5):
            net.send("b", "a", f"m{i}")
        net.run_until_quiet()
        assert [m.kind for m in got] == [f"m{i}" for i in range(5)]

    def test_step_empty_queue(self, net):
        assert net.step() is None

    def test_pending_count(self, net):
        attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("a", "b", "x")
        assert net.pending() == 1
        net.run_until_quiet()
        assert net.pending() == 0

    def test_handler_can_send_replies(self, net):
        log = []

        def ponger(message):
            log.append(message.kind)
            if message.kind == "ping":
                net.send("b", "a", "pong")

        net.attach("b", ponger)
        got_a = attach_recorder(net, "a")
        net.send("a", "b", "ping")
        net.run_until_quiet()
        assert log == ["ping"]
        assert [m.kind for m in got_a] == ["pong"]

    def test_message_budget(self, net):
        def flooder(message):
            net.send("a", "a", "again")

        net.attach("a", flooder)
        net.send("a", "a", "start")
        with pytest.raises(NetworkError):
            net.run_until_quiet(max_messages=100)


class TestFaults:
    def test_crash_drops_traffic(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("b")
        net.send("a", "b", "lost")
        net.send("b", "a", "also-lost")
        net.run_until_quiet()
        assert got == []
        assert len(net.dropped) == 2
        assert net.is_crashed("b")

    def test_recover(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("a")
        net.recover("a")
        net.send("b", "a", "hello")
        net.run_until_quiet()
        assert len(got) == 1

    def test_crash_drops_in_flight_messages(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "in-flight")
        net.crash("b")  # sender crashes after sending
        net.run_until_quiet()
        assert got == []

    def test_message_sent_during_downtime_dropped_after_recovery(self, net):
        # The satellite fix: a message enqueued while the peer is down must
        # NOT be delivered just because the peer recovers before arrival.
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("a")
        net.send("b", "a", "doomed", latency=10.0)
        net.clock.advance(1.0)
        net.recover("a")  # up again long before the message arrives
        net.run_until_quiet()
        assert got == []
        assert [m.kind for m in net.dropped] == ["doomed"]

    def test_delivery_resumes_for_messages_sent_after_recovery(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.crash("a")
        net.clock.advance(1.0)
        net.recover("a")
        net.send("b", "a", "fresh")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["fresh"]

    def test_scheduled_crash_window(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.schedule_crash("a", start=5.0, end=8.0)
        net.send("b", "a", "before", latency=1.0)   # flight [0, 1]
        net.send("b", "a", "overlap", latency=6.0)  # flight [0, 6]
        net.run_until_quiet()
        net.clock.advance_to(10.0)
        net.send("b", "a", "after", latency=1.0)    # flight [10, 11]
        net.run_until_quiet()
        assert [m.kind for m in got] == ["before", "after"]
        assert [m.kind for m in net.dropped] == ["overlap"]

    def test_is_crashed_tracks_windows(self, net):
        attach_recorder(net, "a")
        net.schedule_crash("a", start=5.0, end=8.0)
        assert not net.is_crashed("a")
        net.clock.advance_to(6.0)
        assert net.is_crashed("a")
        net.clock.advance_to(8.0)
        assert not net.is_crashed("a")

    def test_inverted_crash_window_rejected(self, net):
        with pytest.raises(NetworkError):
            net.schedule_crash("a", start=5.0, end=4.0)

    def test_partition_and_heal(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        attach_recorder(net, "c")
        net.partition("a", "b")
        net.send("b", "a", "blocked")
        net.send("c", "a", "through")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["through"]
        net.heal("a", "b")
        net.send("b", "a", "open-again")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["through", "open-again"]


class TestFaultInjection:
    """Network-level behaviour of an installed FaultInjector."""

    def test_drop_rule_loses_messages(self, net):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        FaultInjector(FaultPlan(seed=1, rules=(FaultRule(drop=1.0),))
                      ).install(net)
        net.send("b", "a", "gone")
        net.run_until_quiet()
        assert got == []
        assert [m.kind for m in net.dropped] == ["gone"]

    def test_duplicate_rule_delivers_two_copies(self, net):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        FaultInjector(FaultPlan(seed=1, rules=(FaultRule(duplicate=1.0),))
                      ).install(net)
        net.send("b", "a", "twice")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["twice", "twice"]

    def test_reorder_rule_overtakes(self, net):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        injector = FaultInjector(FaultPlan(
            seed=1, rules=(FaultRule(kind="held", reorder=1.0),))
            ).install(net)
        net.send("b", "a", "held")
        net.send("b", "a", "normal")
        net.run_until_quiet()
        assert [m.kind for m in got] == ["normal", "held"]
        assert injector.counts["reorder"] == 1

    def test_rule_scoping_by_link_and_kind(self, net):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        got_a = attach_recorder(net, "a")
        got_c = attach_recorder(net, "c")
        attach_recorder(net, "b")
        FaultInjector(FaultPlan(seed=1, rules=(
            FaultRule(link=("b", "a"), kind="x", drop=1.0),))).install(net)
        net.send("b", "a", "x")   # matched: dropped
        net.send("b", "a", "y")   # wrong kind: delivered
        net.send("b", "c", "x")   # wrong link: delivered
        net.run_until_quiet()
        assert [m.kind for m in got_a] == ["y"]
        assert [m.kind for m in got_c] == ["x"]

    def test_injector_replay_is_identical(self):
        from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule

        plan = FaultPlan(seed=42, rules=(
            FaultRule(drop=0.3, duplicate=0.3, reorder=0.3, jitter=1.0),))
        traces = []
        for _ in range(2):
            injector = FaultInjector(plan)
            traces.append([injector.plan_delivery("a", "b", "m", 1.0)
                           for _ in range(50)])
        assert traces[0] == traces[1]

    def test_invalid_plans_rejected(self):
        from repro.errors import FaultPlanError
        from repro.webcom.faults import CrashWindow, FaultPlan, FaultRule

        with pytest.raises(FaultPlanError):
            FaultRule(drop=1.5)
        with pytest.raises(FaultPlanError):
            FaultRule(jitter=-1.0)
        with pytest.raises(FaultPlanError):
            CrashWindow("p", start=5.0, end=1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(reorder_hold=-1.0)


class TestRunUntil:
    def test_run_until_respects_deadline(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "early", latency=1.0)
        net.send("b", "a", "late", latency=10.0)
        delivered = net.run_until(5.0)
        assert delivered == 1
        assert [m.kind for m in got] == ["early"]
        assert net.clock.now() == 5.0  # waited out the deadline
        assert net.pending() == 1

    def test_run_until_stop_predicate_short_circuits(self, net):
        got = attach_recorder(net, "a")
        attach_recorder(net, "b")
        net.send("b", "a", "answer", latency=1.0)
        net.run_until(20.0, stop=lambda: bool(got))
        # Stopped at the arrival, not the deadline.
        assert net.clock.now() == 1.0

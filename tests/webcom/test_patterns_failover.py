"""Tests for graph patterns and master failover."""

import pytest

from repro.errors import GraphError, SchedulingError, WebComError
from repro.webcom.engine import GraphEngine, function_table_executor
from repro.webcom.failover import MasterGroup
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.patterns import diamond, fan_out_in, map_reduce, pipeline

TABLE = {
    "inc": lambda v: v + 1,
    "double": lambda v: 2 * v,
    "sum": lambda *vs: sum(vs),
    "ident": lambda v: v,
}


class TestPatterns:
    def test_pipeline(self):
        graph = pipeline("p", ["inc", "inc", "double"])
        engine = GraphEngine(graph, function_table_executor(TABLE))
        assert engine.run({"x": 1}) == 6

    def test_pipeline_validates(self):
        with pytest.raises(GraphError):
            pipeline("p", [])

    def test_fan_out_in(self):
        graph = fan_out_in("f", worker_op="inc", join_op="sum", width=5)
        engine = GraphEngine(graph, function_table_executor(TABLE))
        assert engine.run({"x": 1}) == 10  # five workers each produce 2

    def test_fan_out_validates_width(self):
        with pytest.raises(GraphError):
            fan_out_in("f", "inc", "sum", width=0)

    def test_map_reduce(self):
        graph = map_reduce("mr", map_op="double", reduce_op="sum",
                           partitions=3)
        engine = GraphEngine(graph, function_table_executor(TABLE))
        assert engine.run({"part000": 1, "part001": 2, "part002": 3}) == 12

    def test_map_reduce_validates(self):
        with pytest.raises(GraphError):
            map_reduce("mr", "double", "sum", partitions=0)

    def test_diamond(self):
        graph = diamond("d", "ident", "inc", "double", "sum")
        engine = GraphEngine(graph, function_table_executor(TABLE))
        # split=3; left=4; right=6; join=10
        assert engine.run({"x": 3}) == 10

    def test_patterns_all_validate(self):
        for graph in (pipeline("a", ["inc"]),
                      fan_out_in("b", "inc", "sum", 3),
                      map_reduce("c", "inc", "sum", 2),
                      diamond("d", "ident", "inc", "double", "sum")):
            graph.validate()


def group_setup(n_masters=2, n_clients=2):
    net = SimulatedNetwork()
    masters = [WebComMaster(f"m{i}", net) for i in range(n_masters)]
    group = MasterGroup(masters, net)
    for i in range(n_clients):
        client = WebComClient(f"c{i}", net, TABLE)
        group.register_client(client)
    return net, group, masters


class TestMasterFailover:
    def test_primary_runs_when_healthy(self):
        _net, group, masters = group_setup()
        graph = pipeline("p", ["inc", "double"])
        assert group.run_graph(graph, {"x": 1}) == 4
        assert group.active_master() is masters[0]
        assert masters[0].schedule_log
        assert not masters[1].schedule_log

    def test_failover_to_standby(self):
        net, group, masters = group_setup()
        net.crash("m0")
        graph = pipeline("p", ["inc", "double"])
        assert group.run_graph(graph, {"x": 1}) == 4
        assert group.active_master() is masters[1]
        assert masters[1].schedule_log

    def test_standby_knows_the_client_pool(self):
        _net, group, masters = group_setup()
        # Registration was replicated to every master up front.
        assert set(masters[0].clients) == set(masters[1].clients) == {"c0",
                                                                      "c1"}

    def test_all_masters_down(self):
        net, group, _masters = group_setup()
        net.crash("m0")
        net.crash("m1")
        with pytest.raises(WebComError):
            group.active_master()
        with pytest.raises(SchedulingError):
            group.run_graph(pipeline("p", ["inc"]), {"x": 1})

    def test_failover_on_scheduling_failure(self):
        # m0 is healthy but its whole client pool is dead; m1 must get its
        # turn and fail the same way, surfacing one final error.
        net, group, _masters = group_setup()
        net.crash("c0")
        net.crash("c1")
        with pytest.raises(SchedulingError):
            group.run_graph(pipeline("p", ["inc"]), {"x": 1})
        assert group.failovers == ["m0", "m1"]

    def test_empty_group_rejected(self):
        with pytest.raises(WebComError):
            MasterGroup([], SimulatedNetwork())


class TestPartitionFailover:
    """Satellite scenario: the active master loses half its client pool to a
    partition mid-graph; the standby completes the run from the checkpoint
    with exactly one execution per node."""

    def build(self):
        from repro.util.events import AuditLog
        from repro.webcom.graph import CondensedGraph

        net = SimulatedNetwork()
        audit = AuditLog()
        masters = [WebComMaster(f"m{i}", net, audit=audit,
                                request_timeout=2.0, max_retries=1)
                   for i in range(2)]
        group = MasterGroup(masters, net)
        # c0 alone provides 'special'; c1 provides the common ops.
        c0 = WebComClient("c0", net, dict(TABLE, special=lambda v: v * 10))
        c1 = WebComClient("c1", net, TABLE)
        group.register_client(c0)
        group.register_client(c1)
        g = CondensedGraph("mixed")
        g.add_node("a", operator="inc", arity=1)
        g.add_node("b", operator="double", arity=1)
        g.add_node("c", operator="special", arity=1)
        g.connect("a", "b", 0)
        g.connect("b", "c", 0)
        g.entry("x", "a", 0)
        g.set_exit("c")
        return net, group, masters, audit, g

    def test_standby_completes_partitioned_graph(self):
        net, group, masters, audit, graph = self.build()
        # m0 cannot reach the half of the pool holding 'special'.
        net.partition("m0", "c0")
        assert group.run_graph(graph, {"x": 1}) == 40  # ((1+1)*2)*10
        assert group.failovers == ["m0"]
        # Exactly one successful execution per node across both masters.
        executions = sorted(rec.subject for rec in audit.find(
            category="webcom.schedule", outcome="ok"))
        assert executions == ["a", "b", "c"]
        # The standby resumed the first two nodes from the checkpoint.
        assert sorted(masters[1].last_trace.restored) == ["a", "b"]
        assert masters[1].last_trace.fired == ["c"]

    def test_checkpoint_progress_survives_total_failure(self):
        net, group, masters, audit, graph = self.build()
        net.partition("m0", "c0")
        net.partition("m1", "c0")  # nobody can reach 'special'
        with pytest.raises(SchedulingError):
            group.run_graph(graph, {"x": 1})
        # The work that did complete is checkpointed for a later retry.
        assert sorted(group.last_checkpoint.completed) == ["a", "b"]
        net.heal("m1", "c0")
        assert group.run_graph(graph, {"x": 1},
                               checkpoint=group.last_checkpoint) == 40


class TestFailoverTraceAccuracy:
    def test_refire_counts_reset_between_runs(self):
        # Satellite fix: repeated run_graph calls on one master must not
        # accumulate firing counts across runs.
        _net, group, masters = group_setup()
        graph = pipeline("p", ["inc", "double"])
        group.run_graph(graph, {"x": 1})
        group.run_graph(graph, {"x": 1})
        assert len(masters[0].last_trace.fired) == 2  # not 4

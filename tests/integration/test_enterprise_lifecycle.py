"""A full enterprise lifecycle across the whole framework.

One scenario, end to end: commission a three-technology deployment, verify
the access matrix everywhere, hire/promote/delegate/revoke through the
trust-management layer, migrate a subsystem, and run a secure workflow over
the result — asserting global consistency after every phase.  This is the
"downstream user" test: it touches only the public API.
"""

import pytest

from repro import HeterogeneousSecurityFramework
from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.diff import PolicyDelta
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy
from repro.translate.migrate import DomainMapping
from repro.webcom.keycom import PolicyUpdateRequest

EJB_DOMAIN = "apps:ejb1/Payroll"
ORB_DOMAIN = "apps/orb1"
NT_DOMAIN = "CORP"


@pytest.fixture
def enterprise():
    framework = HeterogeneousSecurityFramework(admin_key="KWebCom")
    ejb = EJBServer(host="apps", server_name="ejb1")
    orb = CorbaOrb(machine="apps", orb_name="orb1")
    com = ComPlusCatalogue("legacy-box", WindowsSecurity())
    framework.register_middleware(ejb, {EJB_DOMAIN})
    framework.register_middleware(orb, {ORB_DOMAIN})
    framework.register_middleware(com, {NT_DOMAIN})

    policy = RBACPolicy("corp")
    # Payroll (EJB): clerks write, managers read+write.
    policy.grant(EJB_DOMAIN, "Clerk", "SalariesDB", "write")
    policy.grant(EJB_DOMAIN, "Manager", "SalariesDB", "read")
    policy.grant(EJB_DOMAIN, "Manager", "SalariesDB", "write")
    # Reporting (CORBA): analysts render.
    policy.grant(ORB_DOMAIN, "Analyst", "ReportGen", "render")
    # Legacy archive (COM+): archivists access.
    policy.grant(NT_DOMAIN, "Archivist", "DocStore", "Access")
    policy.assign("ada", EJB_DOMAIN, "Clerk")
    policy.assign("mel", EJB_DOMAIN, "Manager")
    policy.assign("rio", ORB_DOMAIN, "Analyst")
    policy.assign("sol", NT_DOMAIN, "Archivist")

    report = framework.configure(policy)
    assert report.is_consistent()
    return framework, ejb, orb, com


class TestCommissioning:
    def test_every_technology_mediates(self, enterprise):
        framework, ejb, orb, com = enterprise
        assert ejb.invoke("ada", "SalariesDB", "write")
        assert not ejb.invoke("ada", "SalariesDB", "read")
        assert orb.invoke("rio", "ReportGen", "render")
        assert com.invoke("CORP\\sol", "DocStore", "Access")
        assert not com.invoke("CORP\\ada", "DocStore", "Access")

    def test_credential_layer_agrees(self, enterprise):
        framework, *_ = enterprise
        assert framework.check_access_by_key(
            "Kmel", EJB_DOMAIN, "Manager", "SalariesDB", "read")
        assert not framework.check_access_by_key(
            "Kada", EJB_DOMAIN, "Clerk", "SalariesDB", "read")

    def test_comprehension_synthesises_global_view(self, enterprise):
        framework, *_ = enterprise
        result = framework.comprehend()
        assert result.policy == framework.global_policy
        assert result.conflicts == ()


class TestPersonnelChanges:
    def test_hire_via_keycom(self, enterprise):
        framework, ejb, *_ = enterprise
        credential = framework.delegation.grant_role("Knew", EJB_DOMAIN,
                                                     "Clerk")
        assert framework.keycom(ejb.name).submit(PolicyUpdateRequest(
            user="newbie", user_key="Knew", domain=EJB_DOMAIN, role="Clerk",
            credentials=(credential,)))
        assert ejb.invoke("newbie", "SalariesDB", "write")

    def test_promotion_via_maintenance(self, enterprise):
        framework, ejb, *_ = enterprise
        delta = PolicyDelta(
            added_assignments=frozenset(
                {Assignment("ada", EJB_DOMAIN, "Manager")}),
            removed_assignments=frozenset(
                {Assignment("ada", EJB_DOMAIN, "Clerk")}))
        report = framework.apply_change(delta)
        assert report.is_consistent()
        assert ejb.invoke("ada", "SalariesDB", "read")
        assert framework.delegation.holds_role("Kada", EJB_DOMAIN, "Manager")
        assert not framework.delegation.holds_role("Kada", EJB_DOMAIN,
                                                   "Clerk")

    def test_delegation_and_offboarding(self, enterprise):
        framework, *_ = enterprise
        delegation = framework.delegation.delegate_role(
            "Kmel", "Ktemp", EJB_DOMAIN, "Manager")
        assert framework.delegation.holds_role("Ktemp", EJB_DOMAIN,
                                               "Manager")
        assert framework.delegation.revoke(delegation)
        assert not framework.delegation.holds_role("Ktemp", EJB_DOMAIN,
                                                   "Manager")

    def test_new_grant_propagates_to_one_system_only(self, enterprise):
        framework, ejb, orb, com = enterprise
        delta = PolicyDelta(added_grants=frozenset(
            {Grant(ORB_DOMAIN, "Analyst", "ReportGen", "export")}))
        framework.apply_change(delta)
        assert orb.invoke("rio", "ReportGen", "export")
        assert not ejb.invoke("rio", "ReportGen", "export")


class TestSubsystemMigration:
    def test_legacy_com_archive_moves_to_ejb(self, enterprise):
        framework, ejb, _orb, com = enterprise
        report = framework.migrate(
            com.name, ejb.name,
            DomainMapping(explicit={NT_DOMAIN: f"apps:ejb1/{NT_DOMAIN}"}))
        assert report.migrated_grants == 1
        assert ejb.invoke("sol", "DocStore", "Access")
        # The legacy system keeps working until decommissioned.
        assert com.invoke("CORP\\sol", "DocStore", "Access")


class TestSecureWorkflowOverTheEstate:
    def test_payroll_report_workflow(self, enterprise):
        framework, ejb, orb, _com = enterprise
        from repro.webcom.components import middleware_operations
        from repro.webcom.graph import CondensedGraph
        from repro.webcom.network import SimulatedNetwork
        from repro.webcom.node import WebComClient, WebComMaster

        net = SimulatedNetwork()
        master = WebComMaster("master", net)
        mel_ops = middleware_operations(
            ejb, "mel", {("SalariesDB", "read"): lambda: [4200, 5100]})
        rio_ops = middleware_operations(
            orb, "rio", {("ReportGen", "render"):
                         lambda rows: f"total={sum(rows)}"})
        WebComClient("mel-node", net, mel_ops, user="mel").register_with(
            "master")
        WebComClient("rio-node", net, rio_ops, user="rio").register_with(
            "master")
        net.run_until_quiet()

        graph = CondensedGraph("payroll-report")
        graph.add_node("read", operator="SalariesDB.read", arity=0)
        graph.add_node("render", operator="ReportGen.render", arity=1)
        graph.connect("read", "render", 0)
        graph.set_exit("render")
        assert master.run_graph(graph, {}) == "total=9300"
        assert master.schedule_log == [("read", "mel-node"),
                                       ("render", "rio-node")]

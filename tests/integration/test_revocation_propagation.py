"""Maintenance in the paper's recommended direction (Section 4.4): revoke at
the trust-management level and propagate the removal down the stack, across
every middleware technology at once."""

import pytest

from repro.core.framework import HeterogeneousSecurityFramework
from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.diff import PolicyDelta
from repro.rbac.model import Assignment
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def world():
    framework = HeterogeneousSecurityFramework()
    ejb = EJBServer(host="h", server_name="s")
    orb = CorbaOrb(machine="m", orb_name="o")
    com = ComPlusCatalogue("mz", WindowsSecurity())
    framework.register_middleware(ejb, {"h:s/C"})
    framework.register_middleware(orb, {"m/o"})
    framework.register_middleware(com, {"NTDOM"})

    policy = RBACPolicy("global")
    for domain in ("h:s/C", "m/o", "NTDOM"):
        policy.grant(domain, "Operator", "Widget", "Access")
        policy.assign("olive", domain, "Operator")
    framework.configure(policy)
    return framework, ejb, orb, com


class TestRevocationPropagation:
    def test_initial_state(self, world):
        framework, ejb, orb, com = world
        assert ejb.invoke("olive", "Widget", "Access")
        assert orb.invoke("olive", "Widget", "Access")
        assert com.invoke("NTDOM\\olive", "Widget", "Access")
        assert framework.check_consistency().is_consistent()

    def test_revoke_everywhere(self, world):
        framework, ejb, orb, com = world
        delta = PolicyDelta(removed_assignments=frozenset({
            Assignment("olive", "h:s/C", "Operator"),
            Assignment("olive", "m/o", "Operator"),
            Assignment("olive", "NTDOM", "Operator"),
        }))
        report = framework.apply_change(delta)
        assert report.is_consistent()
        assert not ejb.invoke("olive", "Widget", "Access")
        assert not orb.invoke("olive", "Widget", "Access")
        assert not com.invoke("NTDOM\\olive", "Widget", "Access")
        # The credential layer was re-derived too.
        assert not framework.delegation.holds_role("Kolive", "h:s/C",
                                                   "Operator")

    def test_partial_revocation(self, world):
        framework, ejb, orb, com = world
        delta = PolicyDelta(removed_assignments=frozenset({
            Assignment("olive", "m/o", "Operator")}))
        report = framework.apply_change(delta)
        assert report.is_consistent()
        assert not orb.invoke("olive", "Widget", "Access")
        # The other systems keep their assignments.
        assert ejb.invoke("olive", "Widget", "Access")
        assert com.invoke("NTDOM\\olive", "Widget", "Access")

    def test_remove_assignment_returns_presence(self, world):
        _framework, ejb, orb, com = world
        gone = Assignment("nobody", "h:s/C", "Operator")
        assert ejb.remove_assignment(gone) is False
        assert orb.remove_assignment(
            Assignment("nobody", "m/o", "Operator")) is False
        assert com.remove_assignment(
            Assignment("nobody", "NTDOM", "Operator")) is False

    def test_foreign_domain_removals_are_noops(self, world):
        _framework, ejb, orb, com = world
        foreign = Assignment("olive", "elsewhere", "Operator")
        assert ejb.remove_assignment(foreign) is False
        assert orb.remove_assignment(foreign) is False
        assert com.remove_assignment(foreign) is False

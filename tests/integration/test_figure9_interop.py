"""End-to-end reproduction of the Figure-9 interoperation narrative.

"A WebCom client running on Windows with COM middleware security policy
inter-operates with the server.  If required, the KeyNote RBAC credentials
held by users of System W can be used to update the COM+ catalogue of System
Z.  On the other hand, the COM middleware RBAC policy on System Y can be
translated to equivalent KeyNote credentials and these, in turn, used by
System W which does not have a middleware security mechanism.  In addition,
if System Y was a legacy system under migration to System X, then the KeyNote
credentials generated from the legacy COM policy can be used to automatically
configure the replacement EJB RBAC policy."
"""

import pytest

from repro.core.framework import HeterogeneousSecurityFramework
from repro.core.scenarios import build_figure9_network
from repro.keynote.compliance import ComplianceChecker
from repro.translate.common import action_attributes
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.migrate import DomainMapping, translate_policy
from repro.translate.to_keynote import encode_full
from repro.webcom.keycom import KeyComService, PolicyUpdateRequest


@pytest.fixture
def world():
    framework = HeterogeneousSecurityFramework()
    net = build_figure9_network()
    framework.register_middleware(net.system_y, {"Finance", "Sales"})
    framework.register_middleware(net.system_z, {"Finance", "Sales"})
    framework.register_middleware(net.system_x,
                                  {"hostx:ejb1/Salaries"})
    return framework, net


class TestYToKeyNote:
    """System Y's COM policy becomes KeyNote credentials."""

    def test_translation(self, world):
        framework, net = world
        legacy = net.system_y.extract_rbac()
        policy_cred, memberships = encode_full(
            legacy, framework.admin_key, framework.keystore)
        assert len(memberships) == 5
        # The credentials reproduce Y's decisions exactly.
        checker = ComplianceChecker([policy_cred] + memberships,
                                    keystore=framework.keystore)
        assert checker.query(
            action_attributes("Finance", "Clerk", "SalariesDB", "Access"),
            ["Kalice"]) == "true"
        assert checker.query(
            action_attributes("Finance", "Clerk", "SalariesDB", "Launch"),
            ["Kalice"]) == "false"


class TestWEnforcement:
    """System W (no middleware) enforces Y's policy via KeyNote alone."""

    def test_w_decisions_match_y(self, world):
        framework, net = world
        legacy = net.system_y.extract_rbac()
        policy_cred, memberships = encode_full(
            legacy, framework.admin_key, framework.keystore)
        w_checker = ComplianceChecker([policy_cred] + memberships,
                                      keystore=framework.keystore)
        for domain, role, user, key in [
            ("Finance", "Clerk", "Finance\\Alice", "Kalice"),
            ("Finance", "Manager", "Finance\\Bob", "Kbob"),
            ("Sales", "Manager", "Sales\\Claire", "Kclaire"),
            ("Sales", "Assistant", "Sales\\Dave", "Kdave"),
        ]:
            for permission in ("Access", "Launch"):
                y_says = net.system_y.invoke(user, "SalariesDB", permission)
                w_says = w_checker.query(
                    action_attributes(domain, role, "SalariesDB", permission),
                    [key]) == "true"
                assert y_says == w_says, (user, permission)


class TestZCatalogueUpdate:
    """W's KeyNote credentials update Z's COM+ catalogue (via KeyCOM)."""

    def test_credentials_configure_z(self, world):
        framework, net = world
        # Z needs the application structure before memberships land.
        legacy = net.system_y.extract_rbac()
        grants_only = legacy.copy("grants")
        for assignment in list(grants_only.assignments):
            grants_only.unassign(assignment.user, assignment.domain,
                                 assignment.role)
        net.system_z.apply_rbac(grants_only)

        policy_cred, memberships = encode_full(
            legacy, framework.admin_key, framework.keystore)
        framework.session.add_policy(policy_cred)
        keycom = framework.keycom(net.system_z.name)
        applied = 0
        for assignment in legacy.sorted_assignments():
            user_key = framework.user_key(assignment.user)
            request = PolicyUpdateRequest(
                user=assignment.user, user_key=user_key,
                domain=assignment.domain, role=assignment.role,
                credentials=tuple(memberships))
            assert keycom.submit(request)
            applied += 1
        assert applied == 5
        assert net.system_z.invoke("Finance\\Alice", "SalariesDB", "Access")
        assert not net.system_z.invoke("Sales\\Dave", "SalariesDB", "Access")

    def test_z_rejects_forged_update(self, world):
        framework, net = world
        keycom = framework.keycom(net.system_z.name)
        framework.keystore.create("Kmallory")
        request = PolicyUpdateRequest(
            user="Mallory", user_key="Kmallory", domain="Finance",
            role="Manager", credentials=())
        assert not keycom.submit_quietly(request)


class TestLegacyMigrationToX:
    """Y (legacy COM) migrates to X (replacement EJB) via the credentials."""

    def test_migration_preserves_decisions(self, world):
        framework, net = world
        legacy = net.system_y.extract_rbac()
        # Via the credential round-trip, as the paper narrates: COM policy ->
        # KeyNote credentials -> comprehended RBAC -> EJB configuration.
        policy_cred, memberships = encode_full(
            legacy, framework.admin_key, framework.keystore)
        comprehended = comprehend_credentials(
            [policy_cred] + memberships, keystore=framework.keystore)
        assert comprehended == legacy

        mapping = DomainMapping(default=lambda d: "hostx:ejb1/Salaries")
        translated, report = translate_policy(comprehended, mapping)
        net.system_x.apply_rbac(translated)
        assert report.migrated_assignments == 5

        # X now answers like Y (modulo the domain collapse: X merges the two
        # NT domains into one container, so same-named roles unify).
        assert net.system_x.invoke("Alice", "SalariesDB", "Access")
        assert net.system_x.invoke("Bob", "SalariesDB", "Launch")
        assert not net.system_x.invoke("Dave", "SalariesDB", "Access")

    def test_domain_collapse_merges_roles(self, world):
        """Collapsing both NT domains into one EJB container unifies the two
        Manager roles — exactly the 'not a simple one-to-one mapping'
        caveat of Section 4.3."""
        framework, net = world
        legacy = net.system_y.extract_rbac()
        mapping = DomainMapping(default=lambda d: "hostx:ejb1/Salaries")
        translated, _report = translate_policy(legacy, mapping)
        net.system_x.apply_rbac(translated)
        # Sales Manager Claire gains Finance Manager's Launch right after
        # the collapse; a per-domain mapping avoids this.
        assert net.system_x.invoke("Claire", "SalariesDB", "Launch")

    def test_per_domain_mapping_preserves_separation(self, world):
        framework, net = world
        legacy = net.system_y.extract_rbac()
        mapping = DomainMapping(explicit={
            "Finance": "hostx:ejb1/Finance",
            "Sales": "hostx:ejb1/Sales",
        })
        translated, _report = translate_policy(legacy, mapping)
        net.system_x.apply_rbac(translated)
        assert net.system_x.invoke("Claire", "SalariesDB", "Access")
        assert not net.system_x.invoke("Claire", "SalariesDB", "Launch")


class TestGlobalConsistency:
    def test_full_pipeline_is_consistent(self, world):
        framework, net = world
        legacy = net.system_y.extract_rbac()
        # Configure the global policy from Y's legacy state; Z mirrors it.
        framework.configure(legacy)
        report = framework.check_consistency()
        inconsistent = report.inconsistent_systems()
        # X is responsible for a domain the global policy doesn't cover;
        # Y and Z must both match.
        assert net.system_y.name not in inconsistent
        assert net.system_z.name not in inconsistent

"""L3 (workflow) composed with L2 (trust management) in one scheduler —
the stacked architecture applied to the *scheduling* path rather than the
invocation path."""

import pytest

from repro.errors import SchedulingError
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment
from repro.webcom.workflow import (
    WorkflowGuard,
    WorkflowPolicy,
    compose_filters,
    run_guarded,
)

OPS = {"initiate": lambda v: v, "approve": lambda v: v}


def payment_graph():
    g = CondensedGraph("payment")
    g.add_node("initiate", operator="initiate", arity=1)
    g.add_node("approve", operator="approve", arity=1)
    g.connect("initiate", "approve", 0)
    g.entry("amount", "initiate", 0)
    g.set_exit("approve")
    return g


@pytest.fixture
def world():
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    guard = WorkflowGuard(WorkflowPolicy().separate(
        "init-approve", "initiate", "approve"))
    master = WebComMaster(
        "master", net, key_name="Kmaster",
        scheduler_filter=compose_filters(env.master_filter(), guard.filter),
        audit=env.audit)
    keys = []
    for cid, user in (("node-a", "ana"), ("node-b", "ben")):
        key = env.create_key(f"K{user}")
        keys.append(key)
        client = WebComClient(cid, net, OPS, key_name=key, user=user,
                              authoriser=env.client_authoriser(cid))
        env.client_trusts_master(cid, "Kmaster")
        client.register_with("master")
    net.run_until_quiet()
    return env, net, master, guard, keys


class TestComposedMediation:
    def test_both_layers_satisfied(self, world):
        env, _net, master, guard, keys = world
        env.trust_clients_for_operations(keys, ["initiate", "approve"])
        result = run_guarded(master, guard, payment_graph(), {"amount": 10})
        assert result == 10
        # L3 forced two different users; L2 checked every candidate.
        assert guard.history["initiate"] != guard.history["approve"]
        assert env.audit.find(category="keynote.query")

    def test_l2_narrows_until_l3_unsatisfiable(self, world):
        env, _net, master, guard, keys = world
        # Only one key is trusted at L2, but L3 demands two distinct users.
        env.trust_clients_for_operations([keys[0]], ["initiate", "approve"])
        with pytest.raises(SchedulingError):
            run_guarded(master, guard, payment_graph(), {"amount": 10})

    def test_l2_denies_everything(self, world):
        _env, _net, master, guard, _keys = world
        # No master-side policy at all: L2 filters every candidate out.
        with pytest.raises(SchedulingError):
            run_guarded(master, guard, payment_graph(), {"amount": 10})

"""The Figure-6 / Figure-7 delegation chains, both readings.

The paper's figures are mutually inconsistent: Figure 6 makes Claire a
Manager in *Finance*, Figure 1's table and Figure 7's delegation both say
*Sales*.  DESIGN.md commits to reproducing both readings:

- literal: Fig-6 (Finance) + Fig-7 (Claire delegates Sales/Manager) — the
  chain must grant Fred **nothing**, because Claire cannot delegate a role
  she was not granted (delegation monotonicity);
- corrected: Claire granted Sales/Manager — Fred's delegation is effective.
"""

import pytest

from repro.core.decentralisation import DelegationService
from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession


@pytest.fixture
def service():
    keystore = Keystore()
    session = KeyNoteSession(keystore=keystore)
    service = DelegationService(session, keystore, "KWebCom")
    service.admit_administrator()
    return service


class TestLiteralReading:
    def test_fred_gets_nothing(self, service):
        # Figure 6 as printed: Claire is Manager in Finance.
        service.grant_role("Kclaire", "Finance", "Manager")
        # Figure 7 as printed: Claire delegates Sales/Manager to Fred.
        service.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        assert service.holds_role("Kclaire", "Finance", "Manager")
        # Claire never held Sales/Manager, so Fred's chain is dead.
        assert not service.holds_role("Kfred", "Sales", "Manager")
        # And the delegation certainly granted nothing else.
        assert not service.holds_role("Kfred", "Finance", "Manager")


class TestCorrectedReading:
    def test_fred_becomes_sales_manager(self, service):
        service.grant_role("Kclaire", "Sales", "Manager")
        service.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        assert service.holds_role("Kfred", "Sales", "Manager")

    def test_delegation_cannot_widen(self, service):
        service.grant_role("Kclaire", "Sales", "Manager")
        service.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        # Fred's authority is bounded by Claire's.
        assert not service.holds_role("Kfred", "Finance", "Manager")

    def test_second_level_delegation(self, service):
        service.grant_role("Kclaire", "Sales", "Manager")
        service.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        service.delegate_role("Kfred", "Kgina", "Sales", "Manager")
        assert service.holds_role("Kgina", "Sales", "Manager")

    def test_revocation_kills_downstream(self, service):
        service.grant_role("Kclaire", "Sales", "Manager")
        claire_to_fred = service.delegate_role("Kclaire", "Kfred", "Sales",
                                               "Manager")
        service.delegate_role("Kfred", "Kgina", "Sales", "Manager")
        assert service.revoke(claire_to_fred)
        assert not service.holds_role("Kfred", "Sales", "Manager")
        assert not service.holds_role("Kgina", "Sales", "Manager")
        # Claire herself is unaffected.
        assert service.holds_role("Kclaire", "Sales", "Manager")

    def test_revoke_missing_credential(self, service):
        service.grant_role("Kclaire", "Sales", "Manager")
        cred = service.delegate_role("Kclaire", "Kfred", "Sales", "Manager")
        assert service.revoke(cred)
        assert not service.revoke(cred)

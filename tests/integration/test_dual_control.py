"""Dual control and graded approval — KeyNote expressiveness the RBAC layer
cannot encode, exercised end to end.

Two scenarios beyond plain RBAC:

- **joint authorisation** (``k-of`` licensees): large payments need any two
  of the three managers to request *together*;
- **graded compliance values**: a three-valued set where medium-risk actions
  are approved-with-logging rather than flatly allowed/denied.
"""

import pytest

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.keynote.values import ComplianceValueSet


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kmgr1", "Kmgr2", "Kmgr3", "Kclerk", "Kdeputy"):
        ks.create(name)
    return ks


class TestJointAuthorisation:
    @pytest.fixture
    def session(self, keystore) -> KeyNoteSession:
        s = KeyNoteSession(keystore=keystore)
        s.add_policy('''
            Authorizer: POLICY
            Licensees: 2-of("Kmgr1", "Kmgr2", "Kmgr3")
            Conditions: app_domain=="Payments" && amount > 10000;
        ''')
        s.add_policy('''
            Authorizer: POLICY
            Licensees: "Kmgr1" || "Kmgr2" || "Kmgr3" || "Kclerk"
            Conditions: app_domain=="Payments" && amount <= 10000;
        ''')
        return s

    def test_small_payment_single_signer(self, session):
        attrs = {"app_domain": "Payments", "amount": "500"}
        assert session.query(attrs, ["Kclerk"])
        assert session.query(attrs, ["Kmgr2"])

    def test_large_payment_needs_two_managers(self, session):
        attrs = {"app_domain": "Payments", "amount": "50000"}
        assert not session.query(attrs, ["Kmgr1"])
        assert not session.query(attrs, ["Kclerk", "Kmgr1"])
        assert session.query(attrs, ["Kmgr1", "Kmgr3"])
        assert session.query(attrs, ["Kmgr1", "Kmgr2", "Kmgr3"])

    def test_delegated_co_signature(self, session, keystore):
        """A manager can delegate their half of the dual control; the
        threshold is then met by (requesting manager, delegate)."""
        deputy_cred = Credential.build(
            "Kmgr2", '"Kdeputy"',
            'app_domain=="Payments"').signed_by(keystore)
        session.add_credential(deputy_cred)
        attrs = {"app_domain": "Payments", "amount": "50000"}
        assert session.query(attrs, ["Kmgr1", "Kdeputy"])
        # The deputy alone is still only one voice.
        assert not session.query(attrs, ["Kdeputy"])


class TestGradedApproval:
    VALUES = ComplianceValueSet(("deny", "approve_with_log", "approve"))

    @pytest.fixture
    def session(self, keystore) -> KeyNoteSession:
        s = KeyNoteSession(keystore=keystore, values=self.VALUES)
        # `->` values attach at clause level (clauses separated by `;`),
        # exactly as RFC 2704's grammar has it.
        s.add_policy('''
            Authorizer: POLICY
            Licensees: "Kclerk"
            Conditions: app_domain=="Payments" && amount <= 1000
                            -> "approve";
                        app_domain=="Payments" && amount <= 10000
                            -> "approve_with_log";
        ''')
        return s

    def test_small_amount_fully_approved(self, session):
        result = session.query({"app_domain": "Payments", "amount": "100"},
                               ["Kclerk"])
        assert result.compliance_value == "approve"
        assert result.authorized

    def test_medium_amount_needs_logging(self, session):
        result = session.query({"app_domain": "Payments", "amount": "5000"},
                               ["Kclerk"])
        assert result.compliance_value == "approve_with_log"
        # Against the default (maximum) threshold this is NOT authorised...
        assert not result.authorized

    def test_medium_amount_with_explicit_threshold(self, session):
        result = session.query({"app_domain": "Payments", "amount": "5000"},
                               ["Kclerk"], threshold="approve_with_log")
        assert result.authorized

    def test_large_amount_denied(self, session):
        result = session.query({"app_domain": "Payments", "amount": "50000"},
                               ["Kclerk"], threshold="approve_with_log")
        assert result.compliance_value == "deny"
        assert not result.authorized

"""The KeyNote decision cache: hits, projection, invalidation, taint.

Covers the generation-stamped decision cache on
:class:`~repro.keynote.compliance.ComplianceChecker`, the batch
``query_many`` API, the process-wide signature-verification cache, and the
cached-vs-uncached equivalence sweep the fast path is accepted against.
"""

import random

import pytest

from repro.crypto import Keystore
from repro.crypto.keys import PublicKey
from repro.crypto.keystore import SIGNATURE_CACHE, SignatureVerificationCache
from repro.keynote.compliance import ComplianceChecker, evaluate_query
from repro.keynote.credential import Credential
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def keystore():
    ks = Keystore()
    for name in ("Ka", "Kb", "Kc", "Kd"):
        ks.create(name)
    return ks


def chain(keystore, conditions='x=="1"'):
    """POLICY -> Ka -> Kb, all with the given conditions."""
    return [
        Credential.build("POLICY", '"Ka"', conditions),
        Credential.build("Ka", '"Kb"', conditions).sign(
            keystore.pair("Ka").private),
    ]


class TestDecisionCache:
    def test_warm_hit_skips_the_fixpoint(self, keystore):
        checker = ComplianceChecker(chain(keystore), keystore=keystore)
        assert checker.query({"x": "1"}, ["Kb"]) == "true"
        assert checker.cache_misses == 1 and checker.cache_hits == 0
        assert checker.query({"x": "1"}, ["Kb"]) == "true"
        assert checker.cache_hits == 1
        # The hit ran no search at all.
        assert checker.last_query_stats.assertions_visited == 0
        assert checker.last_query_stats.memo_misses == 0

    def test_unreferenced_attributes_do_not_fragment_the_cache(self, keystore):
        # The session-injected `_cur_time` changes every query; no assertion
        # reads it, so it must not bust the cache.
        checker = ComplianceChecker(chain(keystore), keystore=keystore)
        checker.query({"x": "1", "_cur_time": "10"}, ["Kb"])
        assert checker.query({"x": "1", "_cur_time": "999"}, ["Kb"]) == "true"
        assert checker.cache_hits == 1

    def test_referenced_attribute_changes_are_distinct_entries(self, keystore):
        checker = ComplianceChecker(chain(keystore), keystore=keystore)
        assert checker.query({"x": "1"}, ["Kb"]) == "true"
        assert checker.query({"x": "2"}, ["Kb"]) == "false"
        assert checker.cache_hits == 0 and checker.cache_misses == 2
        # Both decisions are cached independently.
        assert checker.query({"x": "1"}, ["Kb"]) == "true"
        assert checker.query({"x": "2"}, ["Kb"]) == "false"
        assert checker.cache_hits == 2

    def test_deref_makes_the_attribute_key_dynamic(self, keystore):
        # `$name` reads an attribute chosen at evaluation time, so the
        # referenced set is unknowable and the full attribute set is keyed.
        assertions = [Credential.build("POLICY", '"Ka"', '$ptr=="1"')]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker._referenced is None
        assert checker.query({"ptr": "y", "y": "1"}, ["Ka"]) == "true"
        assert checker.query({"ptr": "y", "y": "1", "z": "9"},
                             ["Ka"]) == "true"
        # The extra attribute changed the (full) key: no false sharing.
        assert checker.cache_hits == 0

    def test_add_assertion_flushes_a_stale_deny(self, keystore):
        checker = ComplianceChecker(
            [Credential.build("POLICY", '"Ka"', "true")], keystore=keystore)
        assert checker.query({}, ["Kb"]) == "false"
        generation = checker.generation
        assert checker.add_assertion(
            Credential.build("Ka", '"Kb"', "true").sign(
                keystore.pair("Ka").private))
        assert checker.generation == generation + 1
        assert checker.query({}, ["Kb"]) == "true"

    def test_revoke_assertion_flushes_a_stale_allow(self, keystore):
        assertions = chain(keystore, conditions="true")
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Kb"]) == "true"
        generation = checker.generation
        assert checker.revoke_assertion(assertions[1])
        assert checker.generation == generation + 1
        # The cached ALLOW must not survive the revocation.
        assert checker.query({}, ["Kb"]) == "false"
        assert not checker.revoke_assertion(assertions[1])  # already gone

    def test_tainted_deny_is_never_cached(self, keystore):
        # Ka <-> Kb delegation cycle; querying for an unrelated principal
        # breaks the cycle (taint) and yields the minimum — that outcome
        # must be recomputed, never served from the cache.
        assertions = [
            Credential.build("POLICY", '"Ka"', "true"),
            Credential.build("Ka", '"Kb"', "true").sign(
                keystore.pair("Ka").private),
            Credential.build("Kb", '"Ka"', "true").sign(
                keystore.pair("Kb").private),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Kc"]) == "false"
        assert checker.last_query_stats.cycles_broken > 0
        assert checker.cache_info()["entries"] == 0
        assert checker.query({}, ["Kc"]) == "false"
        assert checker.cache_hits == 0 and checker.cache_misses == 2

    def test_tainted_maximum_is_safe_to_cache(self, keystore):
        # The same cycle, but the requester closes it: the result is the
        # maximum, which monotonicity makes safe to cache despite the taint.
        assertions = [
            Credential.build("POLICY", '"Ka"', "true"),
            Credential.build("Ka", '"Kb"', "true").sign(
                keystore.pair("Ka").private),
            Credential.build("Kb", '"Ka"', "true").sign(
                keystore.pair("Kb").private),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Kb"]) == "true"
        assert checker.query({}, ["Kb"]) == "true"
        assert checker.cache_hits == 1

    def test_cache_disabled_under_naive_mode(self, keystore):
        # memoise=False exists to measure the raw search (the DESIGN.md
        # ablation); a decision cache would make it measure nothing.
        checker = ComplianceChecker(chain(keystore), keystore=keystore,
                                    memoise=False)
        checker.query({"x": "1"}, ["Kb"])
        checker.query({"x": "1"}, ["Kb"])
        assert checker.cache_hits == 0 and checker.cache_misses == 0

    def test_clear_decision_cache_forces_recompute(self, keystore):
        checker = ComplianceChecker(chain(keystore), keystore=keystore)
        checker.query({"x": "1"}, ["Kb"])
        checker.clear_decision_cache()
        checker.query({"x": "1"}, ["Kb"])
        assert checker.cache_hits == 0 and checker.cache_misses == 2
        # clear() does not bump the generation: nothing changed.
        assert checker.generation == 0

    def test_metrics_mirror_cache_traffic(self, keystore):
        metrics = MetricsRegistry()
        checker = ComplianceChecker(chain(keystore), keystore=keystore,
                                    metrics=metrics)
        checker.query({"x": "1"}, ["Kb"])
        checker.query({"x": "1"}, ["Kb"])
        assert metrics.counter("keynote.cache.miss").value == 1
        assert metrics.counter("keynote.cache.hit").value == 1
        assert metrics.counter("keynote.queries").value == 2


class TestQueryMany:
    def test_matches_individual_queries(self, keystore):
        assertions = chain(keystore)
        batch = ComplianceChecker(list(assertions), keystore=keystore)
        single = ComplianceChecker(list(assertions), keystore=keystore,
                                   cache_decisions=False)
        requests = [({"x": "1"}, ["Kb"]), ({"x": "2"}, ["Kb"]),
                    ({"x": "1"}, ["Ka"]), ({"x": "1"}, ["Kc"]),
                    ({"x": "1"}, ["Kb"])]
        expected = [single.query(attrs, auths) for attrs, auths in requests]
        assert batch.query_many(requests) == expected

    def test_duplicate_requests_hit_the_decision_cache(self, keystore):
        checker = ComplianceChecker(chain(keystore), keystore=keystore)
        results = checker.query_many([({"x": "1"}, ["Kb"])] * 5)
        assert results == ["true"] * 5
        assert checker.cache_misses == 1 and checker.cache_hits == 4


class TestSignatureCache:
    def signed_chain(self, keystore, depth=3):
        names = [f"Ks{i}" for i in range(depth + 1)]
        for name in names:
            keystore.create(name)
        assertions = [Credential.build("POLICY", f'"{names[0]}"', "true")]
        for issuer, licensee in zip(names, names[1:]):
            assertions.append(
                Credential.build(issuer, f'"{licensee}"', "true").sign(
                    keystore.pair(issuer).private))
        return assertions, names[-1]

    def test_schnorr_verify_runs_once_per_credential(self, keystore,
                                                     monkeypatch):
        # Satellite regression: repeated one-shot evaluate_query calls over
        # the same credentials must verify each signature exactly once.
        assertions, leaf = self.signed_chain(keystore)
        calls = []
        real_verify = PublicKey.verify

        def counting_verify(self, message, signature):
            calls.append(self.y)
            return real_verify(self, message, signature)

        monkeypatch.setattr(PublicKey, "verify", counting_verify)
        SIGNATURE_CACHE.clear()
        try:
            for _ in range(4):
                assert evaluate_query(assertions, {}, [leaf],
                                      keystore=keystore) == "true"
        finally:
            SIGNATURE_CACHE.clear()
        signed = [a for a in assertions if not a.is_policy]
        assert len(calls) == len(signed)

    def test_dedicated_cache_instance_counts_traffic(self, keystore):
        cache = SignatureVerificationCache()
        credential = Credential.build("Ka", '"Kb"', "true").sign(
            keystore.pair("Ka").private)
        assert credential.verify(keystore, cache=cache)
        assert credential.verify(keystore, cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        cache.clear()
        assert len(cache) == 0

    def test_invalid_signature_outcome_is_cached_too(self, keystore):
        cache = SignatureVerificationCache()
        credential = Credential.build("Ka", '"Kb"', "true").sign(
            keystore.pair("Ka").private)
        # Tamper: re-sign under a different key but keep Ka as authorizer.
        forged = Credential.build("Ka", '"Kb"', "true").sign(
            keystore.pair("Kb").private)
        assert not forged.verify(keystore, cache=cache)
        assert not forged.verify(keystore, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert credential.verify(keystore, cache=cache)


class TestCachedUncachedEquivalence:
    """Acceptance sweep: under randomised delegation graphs, queries and
    add/revoke churn, the cached checker agrees with an uncached twin on
    every single query."""

    CONDITIONS = ('x=="1"', 'y=="2"', "true", 'x=="1" && y=="2"',
                  'x=="1" || y=="2"')

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12))
    def test_cached_matches_uncached(self, seed):
        rng = random.Random(seed)
        keystore = Keystore()
        names = [f"K{i}" for i in range(6)]
        for name in names:
            keystore.create(name)

        def random_credential():
            authorizer = rng.choice(["POLICY"] + names)
            licensee = rng.choice(names)
            credential = Credential.build(authorizer, f'"{licensee}"',
                                          rng.choice(self.CONDITIONS))
            if authorizer != "POLICY":
                credential = credential.sign(
                    keystore.pair(authorizer).private)
            return credential

        assertions = [random_credential() for _ in range(8)]
        cached = ComplianceChecker(list(assertions), keystore=keystore)
        uncached = ComplianceChecker(list(assertions), keystore=keystore,
                                     cache_decisions=False)
        for _step in range(40):
            roll = rng.random()
            if roll < 0.15:
                credential = random_credential()
                cached.add_assertion(credential)
                uncached.add_assertion(credential)
            elif roll < 0.25 and len(cached.assertions) > 1:
                victim = cached.assertions[
                    rng.randrange(len(cached.assertions))]
                cached.revoke_assertion(victim)
                uncached.revoke_assertion(victim)
            attributes = {"x": rng.choice(["1", "0"]),
                          "y": rng.choice(["2", "0"]),
                          "noise": str(rng.randrange(4))}
            authorizers = [rng.choice(names)]
            assert cached.query(attributes, authorizers) == \
                uncached.query(attributes, authorizers)
        assert cached.cache_hits > 0  # the sweep actually exercised hits

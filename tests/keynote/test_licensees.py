"""Tests for licensee expressions (keys, &&, ||, k-of thresholds)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNoteSyntaxError
from repro.keynote.licensees import (
    AllOf,
    AnyOf,
    Principal,
    Threshold,
    licensees_to_text,
    parse_licensees,
)
from repro.keynote.values import DEFAULT_VALUE_SET

MAX, MIN = "true", "false"


def evaluate(expr_text: str, trusted: set[str]) -> str:
    expr = parse_licensees(expr_text)
    return expr.value(lambda k: MAX if k in trusted else MIN,
                      DEFAULT_VALUE_SET)


class TestParsing:
    def test_single_key(self):
        expr = parse_licensees('"Kbob"')
        assert expr == Principal("Kbob")

    def test_disjunction(self):
        expr = parse_licensees('"Ka" || "Kb"')
        assert isinstance(expr, AnyOf)
        assert expr.principals() == {"Ka", "Kb"}

    def test_conjunction(self):
        expr = parse_licensees('"Ka" && "Kb"')
        assert isinstance(expr, AllOf)

    def test_precedence_and_over_or(self):
        expr = parse_licensees('"Ka" || "Kb" && "Kc"')
        assert isinstance(expr, AnyOf)
        assert isinstance(expr.parts[1], AllOf)

    def test_parentheses(self):
        expr = parse_licensees('("Ka" || "Kb") && "Kc"')
        assert isinstance(expr, AllOf)

    def test_threshold(self):
        expr = parse_licensees('2-of("Ka", "Kb", "Kc")')
        assert isinstance(expr, Threshold)
        assert expr.k == 2
        assert expr.principals() == {"Ka", "Kb", "Kc"}

    def test_threshold_k_bounds(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_licensees('4-of("Ka", "Kb")')

    def test_local_constant_resolution(self):
        expr = parse_licensees("ALICE", constants={"ALICE": "kn-key-of-alice"})
        assert expr == Principal("kn-key-of-alice")

    def test_bare_identifier_kept_as_principal(self):
        assert parse_licensees("Kbob") == Principal("Kbob")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_licensees('"Ka" "Kb"')

    def test_empty_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_licensees("")


class TestEvaluation:
    def test_single_key(self):
        assert evaluate('"Ka"', {"Ka"}) == MAX
        assert evaluate('"Ka"', set()) == MIN

    def test_disjunction_any_suffices(self):
        assert evaluate('"Ka" || "Kb"', {"Kb"}) == MAX
        assert evaluate('"Ka" || "Kb"', set()) == MIN

    def test_conjunction_all_required(self):
        assert evaluate('"Ka" && "Kb"', {"Ka"}) == MIN
        assert evaluate('"Ka" && "Kb"', {"Ka", "Kb"}) == MAX

    def test_threshold_semantics(self):
        expr = '2-of("Ka", "Kb", "Kc")'
        assert evaluate(expr, {"Ka"}) == MIN
        assert evaluate(expr, {"Ka", "Kc"}) == MAX
        assert evaluate(expr, {"Ka", "Kb", "Kc"}) == MAX

    def test_nested_structure(self):
        expr = '("Ka" && "Kb") || 2-of("Kc", "Kd", "Ke")'
        assert evaluate(expr, {"Ka", "Kb"}) == MAX
        assert evaluate(expr, {"Kd", "Ke"}) == MAX
        assert evaluate(expr, {"Ka", "Kc"}) == MIN


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        '"Ka"',
        '("Ka" || "Kb")',
        '("Ka" && "Kb" && "Kc")',
        '2-of("Ka", "Kb", "Kc")',
        '(("Ka" && "Kb") || 2-of("Kc", "Kd", "Ke"))',
    ])
    def test_serialise_parse_identity(self, text):
        expr = parse_licensees(text)
        assert parse_licensees(licensees_to_text(expr)) == expr


# Random monotone formulas for property testing.
keys = st.sampled_from(["K1", "K2", "K3", "K4"])


def formulas(depth=2):
    base = keys.map(Principal)
    if depth == 0:
        return base
    sub = formulas(depth - 1)
    return st.one_of(
        base,
        st.lists(sub, min_size=2, max_size=3).map(lambda p: AllOf(tuple(p))),
        st.lists(sub, min_size=2, max_size=3).map(lambda p: AnyOf(tuple(p))),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda p: Threshold(min(2, len(p)), tuple(p))),
    )


class TestMonotonicity:
    @settings(max_examples=80, deadline=None)
    @given(formulas(), st.sets(keys), st.sets(keys))
    def test_adding_trusted_keys_never_lowers_value(self, expr, s1, s2):
        smaller, larger = s1, s1 | s2
        rank = DEFAULT_VALUE_SET.rank
        v_small = expr.value(lambda k: MAX if k in smaller else MIN,
                             DEFAULT_VALUE_SET)
        v_large = expr.value(lambda k: MAX if k in larger else MIN,
                             DEFAULT_VALUE_SET)
        assert rank(v_large) >= rank(v_small)

    @settings(max_examples=40, deadline=None)
    @given(formulas())
    def test_round_trip_any_formula(self, expr):
        assert parse_licensees(licensees_to_text(expr)) == expr

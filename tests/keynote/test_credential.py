"""Tests for credential parsing, serialisation, signing and verification."""

import pytest

from repro.crypto import Keystore
from repro.errors import CredentialError, KeyNoteSyntaxError
from repro.keynote.credential import Credential
from repro.keynote.parser import parse_credentials, split_fields

FIG2_TEXT = '''
Authorizer: POLICY
licensees: "Kbob"
Conditions: app_domain=="SalariesDB" &&
            (oper=="read" || oper=="write");
'''

FIG4_TEXT = '''
Authorizer: "Kbob"
licensees: "Kalice"
Conditions: app_domain=="SalariesDB"
  && oper=="write";
'''


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kbob", "Kalice", "KWebCom"):
        ks.create(name)
    return ks


class TestSplitFields:
    def test_multiline_values(self):
        fields = split_fields(FIG2_TEXT)
        assert fields["authorizer"] == "POLICY"
        assert "oper" in fields["conditions"]
        assert "\n" in fields["conditions"]

    def test_case_insensitive_field_names(self):
        fields = split_fields('AUTHORIZER: POLICY\nLicensees: "K"')
        assert fields["authorizer"] == "POLICY"

    def test_duplicate_field_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            split_fields("Authorizer: POLICY\nAuthorizer: POLICY")

    def test_leading_garbage_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            split_fields("garbage\nAuthorizer: POLICY")


class TestParsing:
    def test_figure2_policy(self):
        cred = Credential.from_text(FIG2_TEXT)
        assert cred.is_policy
        assert cred.principals() == {"Kbob"}
        assert not cred.signature

    def test_figure4_credential(self):
        cred = Credential.from_text(FIG4_TEXT)
        assert not cred.is_policy
        assert cred.authorizer == "Kbob"
        assert cred.principals() == {"Kalice"}

    def test_missing_authorizer_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            Credential.from_text('Licensees: "K"\nConditions: x=="1";')

    def test_missing_licensees_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            Credential.from_text("Authorizer: POLICY\nConditions: x==\"1\";")

    def test_missing_conditions_defaults_to_true(self):
        cred = Credential.from_text('Authorizer: POLICY\nLicensees: "K"')
        assert cred.conditions_text == "true"

    def test_unsupported_version_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            Credential.from_text(
                'KeyNote-Version: 9\nAuthorizer: POLICY\nLicensees: "K"')

    def test_placeholder_signature_ignored(self):
        # The paper writes `Signature: ...` in its figures.
        cred = Credential.from_text(FIG4_TEXT + "Signature: ...\n")
        assert cred.signature == ""

    def test_local_constants_substitution(self):
        text = '''
        Local-Constants: ALICE = "kn-the-key"
        Authorizer: POLICY
        Licensees: ALICE
        Conditions: app_domain == "x";
        '''
        cred = Credential.from_text(text)
        assert cred.principals() == {"kn-the-key"}

    def test_comment_preserved(self):
        cred = Credential.from_text(
            'Comment: for the salaries app\n' + FIG2_TEXT.strip())
        assert cred.comment == "for the salaries app"


class TestRoundTrip:
    def test_text_round_trip_parses_equal(self):
        cred = Credential.from_text(FIG2_TEXT)
        again = Credential.from_text(cred.to_text())
        assert again.authorizer == cred.authorizer
        assert again.licensees == cred.licensees
        assert again.conditions == cred.conditions

    def test_round_trip_preserves_signature(self, keystore):
        cred = Credential.from_text(FIG4_TEXT).sign(keystore.pair("Kbob").private)
        again = Credential.from_text(cred.to_text())
        assert again.signature == cred.signature
        assert again.verify(keystore)


class TestSigning:
    def test_sign_and_verify(self, keystore):
        cred = Credential.from_text(FIG4_TEXT)
        signed = cred.sign(keystore.pair("Kbob").private)
        assert signed.verify(keystore)

    def test_signed_by_keystore_lookup(self, keystore):
        signed = Credential.from_text(FIG4_TEXT).signed_by(keystore)
        assert signed.verify(keystore)

    def test_wrong_signer_rejected(self, keystore):
        cred = Credential.from_text(FIG4_TEXT)
        forged = cred.sign(keystore.pair("Kalice").private)  # not Kbob!
        assert not forged.verify(keystore)

    def test_unsigned_fails_verification(self, keystore):
        assert not Credential.from_text(FIG4_TEXT).verify(keystore)

    def test_policy_assertions_never_signed(self, keystore):
        cred = Credential.from_text(FIG2_TEXT)
        with pytest.raises(CredentialError):
            cred.sign(keystore.pair("Kbob").private)
        assert cred.verify(keystore)  # vacuously valid

    def test_tampered_conditions_detected(self, keystore):
        signed = Credential.from_text(FIG4_TEXT).sign(keystore.pair("Kbob").private)
        tampered_text = signed.to_text().replace('oper=="write"', 'oper=="read"')
        tampered = Credential.from_text(tampered_text)
        assert not tampered.verify(keystore)

    def test_verify_or_raise(self, keystore):
        cred = Credential.from_text(FIG4_TEXT)
        with pytest.raises(CredentialError):
            cred.verify_or_raise(keystore)
        cred.sign(keystore.pair("Kbob").private).verify_or_raise(keystore)

    def test_encoded_key_authorizer_verifies_without_keystore(self, keystore):
        encoded = keystore.public("Kbob").encode()
        text = FIG4_TEXT.replace('"Kbob"', f'"{encoded}"')
        signed = Credential.from_text(text).sign(keystore.pair("Kbob").private)
        assert signed.verify()  # no keystore needed

    def test_symbolic_authorizer_needs_keystore(self, keystore):
        signed = Credential.from_text(FIG4_TEXT).sign(keystore.pair("Kbob").private)
        assert not signed.verify()  # cannot resolve "Kbob" without keystore


class TestBuild:
    def test_build_normalises_whitespace(self):
        cred = Credential.build("POLICY", '"K"', 'x ==\n   "1"')
        assert cred.conditions_text == 'x == "1"'

    def test_build_rejects_bad_conditions(self):
        with pytest.raises(KeyNoteSyntaxError):
            Credential.build("POLICY", '"K"', 'x === "1"')


class TestParseCredentials:
    def test_multiple_credentials_split(self, keystore):
        blob = FIG2_TEXT + "\n" + FIG4_TEXT
        creds = parse_credentials(blob)
        assert len(creds) == 2
        assert creds[0].is_policy
        assert creds[1].authorizer == "Kbob"

    def test_keynote_version_starts_new_credential(self):
        blob = ('KeyNote-Version: 2\nAuthorizer: POLICY\nLicensees: "Ka"\n'
                'KeyNote-Version: 2\nAuthorizer: POLICY\nLicensees: "Kb"\n')
        creds = parse_credentials(blob)
        assert len(creds) == 2

    def test_empty_blob(self):
        assert parse_credentials("\n  \n") == []

"""Tests for ordered compliance-value sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ComplianceError
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

TRI = ComplianceValueSet(("reject", "approve_with_log", "approve"))


class TestConstruction:
    def test_default_is_boolean(self):
        assert DEFAULT_VALUE_SET.minimum == "false"
        assert DEFAULT_VALUE_SET.maximum == "true"

    def test_needs_two_values(self):
        with pytest.raises(ComplianceError):
            ComplianceValueSet(("only",))

    def test_rejects_duplicates(self):
        with pytest.raises(ComplianceError):
            ComplianceValueSet(("a", "a"))

    def test_rejects_reserved_names(self):
        with pytest.raises(ComplianceError):
            ComplianceValueSet(("_MIN_TRUST", "x"))

    def test_of_constructor(self):
        assert ComplianceValueSet.of(["a", "b"]).values == ("a", "b")


class TestOrdering:
    def test_rank(self):
        assert TRI.rank("reject") == 0
        assert TRI.rank("approve") == 2

    def test_reserved_aliases(self):
        assert TRI.rank("_MIN_TRUST") == 0
        assert TRI.rank("_MAX_TRUST") == 2
        assert TRI.resolve("_MAX_TRUST") == "approve"
        assert TRI.resolve("approve_with_log") == "approve_with_log"

    def test_unknown_value_raises(self):
        with pytest.raises(ComplianceError):
            TRI.rank("maybe")

    def test_meet_join(self):
        assert TRI.meet(["approve", "reject"]) == "reject"
        assert TRI.join(["approve_with_log", "reject"]) == "approve_with_log"
        assert TRI.meet([]) == "approve"
        assert TRI.join([]) == "reject"

    def test_kth_largest(self):
        vals = ["approve", "reject", "approve_with_log"]
        assert TRI.kth_largest(vals, 1) == "approve"
        assert TRI.kth_largest(vals, 2) == "approve_with_log"
        assert TRI.kth_largest(vals, 3) == "reject"
        assert TRI.kth_largest(vals, 4) == "reject"  # more than available

    def test_kth_largest_validates_k(self):
        with pytest.raises(ComplianceError):
            TRI.kth_largest(["approve"], 0)

    def test_from_bool(self):
        assert TRI.from_bool(True) == "approve"
        assert TRI.from_bool(False) == "reject"

    def test_at_least(self):
        assert TRI.at_least("approve", "approve_with_log")
        assert not TRI.at_least("reject", "approve_with_log")

    def test_contains(self):
        assert "approve" in TRI
        assert "_MAX_TRUST" in TRI
        assert "nope" not in TRI

    def test_len(self):
        assert len(TRI) == 3


class TestLatticeProperties:
    values_strategy = st.lists(
        st.sampled_from(TRI.values), min_size=1, max_size=6)

    @settings(max_examples=50, deadline=None)
    @given(values_strategy)
    def test_meet_le_join(self, vals):
        assert TRI.rank(TRI.meet(vals)) <= TRI.rank(TRI.join(vals))

    @settings(max_examples=50, deadline=None)
    @given(values_strategy)
    def test_kth_largest_monotone_in_k(self, vals):
        ranks = [TRI.rank(TRI.kth_largest(vals, k))
                 for k in range(1, len(vals) + 1)]
        assert ranks == sorted(ranks, reverse=True)

    @settings(max_examples=50, deadline=None)
    @given(values_strategy)
    def test_first_largest_is_join(self, vals):
        assert TRI.kth_largest(vals, 1) == TRI.join(vals)

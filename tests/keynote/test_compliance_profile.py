"""Profiling counters and the taint rule of the compliance checker.

The fixpoint memoises principal values, but a value computed while a
cycle-break assumption was live may be an under-approximation and must not
be cached — unless it is already the maximum, which monotonicity makes safe.
These tests pin both sides of that rule down through the new memo hit/miss
counters, and check that the counters are inert when memoisation is off.
"""

import pytest

from repro.errors import CredentialError
from repro.crypto import Keystore
from repro.keynote.compliance import (
    ComplianceChecker,
    ComplianceStats,
    evaluate_query,
)
from repro.keynote.credential import Credential
from repro.keynote.values import ComplianceValueSet
from repro.obs.metrics import MetricsRegistry

TRI = ComplianceValueSet(("reject", "log", "approve"))


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Ka", "Kb", "Kc", "Kd", "Ke"):
        ks.create(name)
    return ks


def policy(licensees: str, conditions: str) -> Credential:
    return Credential.build("POLICY", licensees, conditions)


def signed(keystore: Keystore, authorizer: str, licensees: str,
           conditions: str) -> Credential:
    cred = Credential.build(authorizer, licensees, conditions)
    return cred.sign(keystore.pair(authorizer).private)


def diamond(keystore: Keystore) -> list[Credential]:
    """POLICY -> Ka -> (Kb and Kc) -> Kd -> Ke: Kd is reached twice."""
    return [
        policy('"Ka"', "true"),
        signed(keystore, "Ka", '"Kb" && "Kc"', "true"),
        signed(keystore, "Kb", '"Kd"', "true"),
        signed(keystore, "Kc", '"Kd"', "true"),
        signed(keystore, "Kd", '"Ke"', "true"),
    ]


class TestMemoCounters:
    def test_diamond_produces_memo_hit(self, keystore):
        checker = ComplianceChecker(diamond(keystore), keystore=keystore)
        assert checker.query({}, ["Ke"]) == "true"
        profile = checker.last_query_stats
        # Kd is evaluated through Kb (miss), then served from the memo
        # through Kc; POLICY, Ka, Kb, Kd, Kc are the five misses.
        assert profile.memo_hits == 1
        assert profile.memo_misses == 5
        assert profile.cycles_broken == 0
        assert profile.max_depth == 4  # POLICY -> Ka -> Kb -> Kd

    def test_counters_inert_without_memoisation(self, keystore):
        checker = ComplianceChecker(diamond(keystore), keystore=keystore,
                                    memoise=False)
        assert checker.query({}, ["Ke"]) == "true"
        profile = checker.last_query_stats
        assert profile.memo_hits == 0
        assert profile.memo_misses == 0
        # The search itself still happens — Kd's subtree is walked twice.
        assert profile.assertions_visited > 0

    def test_stats_accumulate_across_queries(self, keystore):
        # The decision cache would serve the repeat query without running
        # the fixpoint; disable it — this test measures the search itself.
        checker = ComplianceChecker(diamond(keystore), keystore=keystore,
                                    cache_decisions=False)
        checker.query({}, ["Ke"])
        first = checker.last_query_stats
        checker.query({}, ["Ke"])
        assert checker.stats.queries == 2
        assert checker.stats.memo_hits == 2 * first.memo_hits
        assert checker.stats.memo_misses == 2 * first.memo_misses
        # last_query_stats covers only the most recent query.
        assert checker.last_query_stats.queries == 1

    def test_metrics_registry_mirrors_profile(self, keystore):
        metrics = MetricsRegistry()
        checker = ComplianceChecker(diamond(keystore), keystore=keystore,
                                    metrics=metrics)
        checker.query({}, ["Ke"])
        assert metrics.counter("keynote.queries").value == 1
        assert metrics.counter("keynote.memo.hit").value == 1
        assert metrics.counter("keynote.memo.miss").value == 5
        assert metrics.histogram("keynote.fixpoint_depth").maximum() == 4


class TestTaintRule:
    def test_cycle_under_approximation_is_not_memoised(self, keystore):
        # Two policy assertions both reach the Ka <-> Kb cycle; nobody
        # delegates to the requester, so every value on the cycle is the
        # under-approximated minimum and must NOT be cached: the second
        # policy assertion has to re-walk Kb from scratch.
        assertions = [
            policy('"Ka"', "true"),
            policy('"Kb"', "true"),
            signed(keystore, "Ka", '"Kb"', "true"),
            signed(keystore, "Kb", '"Ka"', "true"),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Ke"]) == "false"
        profile = checker.last_query_stats
        # A cached under-approximation would have made the second walk a
        # hit; instead both walks are cold and both break the cycle.
        assert profile.memo_hits == 0
        assert profile.memo_misses == 7
        assert profile.cycles_broken == 2

    def test_maximum_under_taint_is_still_cached(self, keystore):
        # Kb sits on a cycle back to Ka, but one of its licensees is the
        # requester, so its value is the maximum — which is always safe to
        # cache (monotonicity: the true value cannot be lower).  The second
        # policy assertion then gets Kb straight from the memo.
        assertions = [
            policy('"Ka"', 'true -> "log"'),
            policy('"Kb"', "true"),
            signed(keystore, "Ka", '"Kb"', "true"),
            signed(keystore, "Kb", '"Ka" || "Ke"', "true"),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Ke"], TRI) == "approve"
        profile = checker.last_query_stats
        assert profile.memo_hits == 1  # Kb, despite the tainted subtree
        assert profile.cycles_broken == 1

    def test_cycle_cannot_raise_trust(self, keystore):
        # Sanity: the under-approximation is also the correct answer here.
        assertions = [
            policy('"Ka"', "true"),
            signed(keystore, "Ka", '"Kb"', "true"),
            signed(keystore, "Kb", '"Ka"', "true"),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Kc"]) == "false"
        assert checker.last_query_stats.cycles_broken >= 1


class TestEvaluateQueryParity:
    """The one-shot helper must honour the same knobs as the checker."""

    def test_memoise_flag_is_plumbed_through(self, keystore):
        for memoise in (True, False):
            value = evaluate_query(diamond(keystore), {}, ["Ke"],
                                   keystore=keystore, memoise=memoise)
            assert value == "true"

    def test_strict_flag_is_plumbed_through(self, keystore):
        unsigned = Credential.build("Ka", '"Kb"', "true")
        creds = [policy('"Ka"', "true"), unsigned]
        # Non-strict: the bad credential is silently discarded.
        assert evaluate_query(creds, {}, ["Kb"],
                              keystore=keystore) == "false"
        with pytest.raises(CredentialError):
            evaluate_query(creds, {}, ["Kb"], keystore=keystore, strict=True)


class TestComplianceStats:
    def test_merge_and_reset(self):
        stats = ComplianceStats(queries=1, memo_hits=2, memo_misses=3,
                                assertions_visited=4, max_depth=5,
                                cycles_broken=6)
        stats.merge(ComplianceStats(queries=1, memo_hits=1, memo_misses=1,
                                    assertions_visited=1, max_depth=2,
                                    cycles_broken=1))
        assert stats.as_dict() == {
            "queries": 2, "memo_hits": 3, "memo_misses": 4,
            "assertions_visited": 5, "max_depth": 5, "cycles_broken": 7,
        }
        stats.reset()
        assert stats.as_dict() == {
            "queries": 0, "memo_hits": 0, "memo_misses": 0,
            "assertions_visited": 0, "max_depth": 0, "cycles_broken": 0,
        }

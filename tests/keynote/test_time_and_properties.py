"""Time-limited credentials and compliance-checker properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.util.clock import SimulatedClock


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Ka", "Kb", "Kc", "Kd"):
        ks.create(name)
    return ks


class TestTimeLimitedCredentials:
    """The KeyNote expiry idiom: conditions test the `_cur_time` attribute
    the session injects from the simulated clock."""

    def test_credential_expires(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(
            'Authorizer: POLICY\nLicensees: "Ka"\n'
            'Conditions: app_domain=="db" && _cur_time < 100;')
        attrs = {"app_domain": "db"}
        assert session.query(attrs, ["Ka"])
        clock.advance(150.0)
        assert not session.query(attrs, ["Ka"])

    def test_not_yet_valid(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(
            'Authorizer: POLICY\nLicensees: "Ka"\n'
            'Conditions: _cur_time >= 50 && _cur_time <= 100;')
        assert not session.query({}, ["Ka"])
        clock.advance(60.0)
        assert session.query({}, ["Ka"])
        clock.advance(60.0)
        assert not session.query({}, ["Ka"])

    def test_expiring_delegation_link(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy('Authorizer: POLICY\nLicensees: "Ka"\n'
                           'Conditions: x=="1";')
        session.add_credential(Credential.build(
            "Ka", '"Kb"', 'x=="1" && _cur_time < 10').signed_by(keystore))
        assert session.query({"x": "1"}, ["Kb"])
        clock.advance(20.0)
        # The chain's middle link expired; the root is unaffected.
        assert not session.query({"x": "1"}, ["Kb"])
        assert session.query({"x": "1"}, ["Ka"])

    def test_explicit_cur_time_wins(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        session.add_policy('Authorizer: POLICY\nLicensees: "Ka"\n'
                           'Conditions: _cur_time < 100;')
        # Caller-supplied _cur_time overrides the clock (e.g. for auditing
        # a past decision).
        assert not session.query({"_cur_time": "500"}, ["Ka"])


# -- properties ---------------------------------------------------------------

keys = st.sampled_from(["Ka", "Kb", "Kc", "Kd"])
conds = st.sampled_from(['x=="1"', 'x=="1" || x=="2"', "true"])


@st.composite
def credential_sets(draw):
    """A policy plus a random bag of signed delegation credentials."""
    keystore = Keystore()
    for name in ("Ka", "Kb", "Kc", "Kd"):
        keystore.create(name)
    assertions = [Credential.build("POLICY", f'"{draw(keys)}"', draw(conds))]
    for _ in range(draw(st.integers(0, 5))):
        issuer, licensee = draw(keys), draw(keys)
        if issuer == licensee:
            continue
        assertions.append(Credential.build(
            issuer, f'"{licensee}"', draw(conds)).signed_by(keystore))
    return keystore, assertions


class TestComplianceProperties:
    @settings(max_examples=60, deadline=None)
    @given(credential_sets(), keys, conds)
    def test_adding_credentials_is_monotone(self, bag, extra_licensee,
                                            extra_cond):
        """Adding a credential never *lowers* a request's compliance value
        (KeyNote's monotonicity guarantee)."""
        keystore, assertions = bag
        extra = Credential.build("Ka", f'"{extra_licensee}"',
                                 extra_cond).signed_by(keystore) \
            if extra_licensee != "Ka" else None
        attrs = {"x": "1"}
        for requester in ("Ka", "Kb", "Kc", "Kd"):
            before = ComplianceChecker(assertions, keystore=keystore).query(
                attrs, [requester])
            augmented = assertions + ([extra] if extra else [])
            after = ComplianceChecker(augmented, keystore=keystore).query(
                attrs, [requester])
            assert not (before == "true" and after == "false")

    @settings(max_examples=60, deadline=None)
    @given(credential_sets())
    def test_memoised_equals_naive(self, bag):
        """The memoisation ablation, as a property over random graphs."""
        keystore, assertions = bag
        memo = ComplianceChecker(assertions, keystore=keystore, memoise=True)
        naive = ComplianceChecker(assertions, keystore=keystore,
                                  memoise=False)
        for requester in ("Ka", "Kb", "Kc", "Kd"):
            for attrs in ({"x": "1"}, {"x": "2"}, {"x": "9"}):
                assert memo.query(attrs, [requester]) == naive.query(
                    attrs, [requester])

    @settings(max_examples=40, deadline=None)
    @given(credential_sets())
    def test_queries_are_deterministic(self, bag):
        keystore, assertions = bag
        checker = ComplianceChecker(assertions, keystore=keystore)
        for requester in ("Ka", "Kd"):
            first = checker.query({"x": "1"}, [requester])
            second = checker.query({"x": "1"}, [requester])
            assert first == second

    @settings(max_examples=40, deadline=None)
    @given(credential_sets())
    def test_more_requesters_never_hurt(self, bag):
        """A request made by a superset of keys has at least the compliance
        value of any subset (joint requests are monotone too)."""
        keystore, assertions = bag
        checker = ComplianceChecker(assertions, keystore=keystore)
        single = checker.query({"x": "1"}, ["Kb"])
        joint = checker.query({"x": "1"}, ["Kb", "Kc"])
        assert not (single == "true" and joint == "false")

"""Tests for the condition expression evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNoteEvalError, KeyNoteSyntaxError
from repro.keynote.eval import ConditionEvaluator
from repro.keynote.parser import parse_conditions, parse_expression
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet


def check(text: str, attributes: dict[str, str] | None = None) -> bool:
    evaluator = ConditionEvaluator(attributes or {}, DEFAULT_VALUE_SET)
    return evaluator.test(parse_expression(text))


def value_of(text: str, attributes: dict[str, str] | None = None,
             values: ComplianceValueSet = DEFAULT_VALUE_SET) -> str:
    evaluator = ConditionEvaluator(attributes or {}, values)
    return evaluator.program_value(parse_conditions(text))


class TestStringComparisons:
    def test_equality(self):
        assert check('app_domain == "db"', {"app_domain": "db"})
        assert not check('app_domain == "db"', {"app_domain": "other"})

    def test_inequality(self):
        assert check('"a" != "b"')

    def test_lexicographic_order(self):
        assert check('"abc" < "abd"')
        assert check('"b" >= "a"')

    def test_missing_attribute_is_empty_string(self):
        assert check('missing == ""')
        assert not check('missing == "x"')

    def test_regex_match(self):
        assert check('name ~= "^fin.*ce$"', {"name": "finance"})
        assert not check('name ~= "^x"', {"name": "finance"})

    def test_bad_regex_raises(self):
        with pytest.raises(KeyNoteEvalError):
            check('name ~= "("', {"name": "x"})

    def test_string_concatenation(self):
        assert check('(a . b) == "helloworld"',
                     {"a": "hello", "b": "world"})


class TestNumericComparisons:
    def test_numeric_equality_across_formats(self):
        # "1" and "1.0" are numerically equal even though string-unequal.
        assert check('a == 1', {"a": "1.0"})
        assert check("1 == 1.0")

    def test_relational(self):
        assert check("2 < 10")
        # String comparison would say "2" > "10"; numeric context must win.
        assert check('a < b', {"a": "2", "b": "10"})

    def test_arithmetic(self):
        assert check("1 + 2 * 3 == 7")
        assert check("(1 + 2) * 3 == 9")
        assert check("10 % 3 == 1")
        assert check("2 ^ 3 == 8")
        assert check("7 / 2 == 3.5")

    def test_power_right_associative(self):
        assert check("2 ^ 3 ^ 2 == 512")

    def test_unary_minus(self):
        assert check("-3 < 0")
        assert check("- (2 + 1) == -3")

    def test_non_numeric_operand_fails_test(self):
        # RFC 2704: an invalid operand makes the test false, not an error.
        assert not check('a + 1 == 2', {"a": "not-a-number"})

    def test_mixed_ordered_comparison_fails_test(self):
        # `amount <= 1000` with a missing/non-numeric amount must deny, not
        # fall back to a lexicographic accident.
        assert not check("amount <= 1000", {})
        assert not check("amount <= 1000", {"amount": "lots"})
        assert check("amount <= 1000", {"amount": "500"})

    def test_mixed_equality_is_a_string_test(self):
        assert not check('a == 1', {"a": "one"})
        assert check('a != 1', {"a": "one"})

    def test_division_by_zero_fails_test(self):
        assert not check("1 / 0 == 0")
        assert not check("1 % 0 == 0")


class TestBooleanStructure:
    def test_and_or_not(self):
        attrs = {"x": "1", "y": "2"}
        assert check('x == "1" && y == "2"', attrs)
        assert not check('x == "1" && y == "3"', attrs)
        assert check('x == "9" || y == "2"', attrs)
        assert check('!(x == "9")', attrs)

    def test_precedence_and_binds_tighter(self):
        # a || b && c  ==  a || (b && c)
        assert check('"1"=="1" || "1"=="2" && "1"=="3"')

    def test_soft_failure_in_or_left(self):
        # Left operand fails numerically; right rescues the disjunction.
        assert check('(z + 1 == 2) || "a" == "a"', {"z": "nan-ish?"})

    def test_soft_failure_in_and_poisons(self):
        assert not check('(z + 1 == 2) && "a" == "a"', {"z": "bad"})

    def test_bare_numeric_truthiness(self):
        assert check("1")
        assert not check("0")

    def test_bare_true_string(self):
        assert check('"true"')
        assert not check('"yes"')


class TestDollarDeref:
    def test_indirect_attribute(self):
        attrs = {"ptr": "target", "target": "v"}
        assert check('$ptr == "v"', attrs)

    def test_nested_deref(self):
        attrs = {"a": "b", "b": "c", "c": "x"}
        assert check('$$a == "x"', attrs)


class TestConditionsPrograms:
    def test_single_clause_boolean(self):
        assert value_of('app_domain == "db"', {"app_domain": "db"}) == "true"
        assert value_of('app_domain == "db"', {"app_domain": "x"}) == "false"

    def test_clause_with_arrow_value(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        text = 'risk == "low" -> "approve"; risk == "high" -> "log"'
        assert value_of(text, {"risk": "low"}, tri) == "approve"
        assert value_of(text, {"risk": "high"}, tri) == "log"
        assert value_of(text, {"risk": "other"}, tri) == "reject"

    def test_multiple_true_clauses_take_join(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        text = 'x == "1" -> "log"; x == "1" -> "approve"'
        assert value_of(text, {"x": "1"}, tri) == "approve"

    def test_nested_braces(self):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        text = 'x == "1" -> { y == "2" -> "approve"; y != "2" -> "log" }'
        assert value_of(text, {"x": "1", "y": "2"}, tri) == "approve"
        assert value_of(text, {"x": "1", "y": "9"}, tri) == "log"
        assert value_of(text, {"x": "0", "y": "2"}, tri) == "reject"

    def test_max_trust_alias_in_arrow(self):
        assert value_of('x == "1" -> _MAX_TRUST', {"x": "1"}) == "true"

    def test_trailing_semicolon_allowed(self):
        assert value_of('x == "1";', {"x": "1"}) == "true"

    def test_empty_conditions_rejected(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_conditions("")


class TestParserErrors:
    def test_trailing_garbage(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_expression('"a" == "b" extra ,')

    def test_unbalanced_parens(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_expression('("a" == "b"')

    def test_missing_operand(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_expression('"a" ==')

    def test_bad_arrow_value(self):
        with pytest.raises(KeyNoteSyntaxError):
            parse_conditions('x == "1" -> 42')


class TestLocalConstantSubstitution:
    def test_constant_becomes_string(self):
        expr = parse_expression('K == "val"', constants={"K": "val"})
        evaluator = ConditionEvaluator({}, DEFAULT_VALUE_SET)
        assert evaluator.test(expr)


class TestEvaluatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_numeric_comparison_matches_python(self, a, b):
        assert check(f"{a} < {b}") == (a < b)
        assert check(f"{a} == {b}") == (a == b)

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="abc", max_size=5),
           st.text(alphabet="abc", max_size=5))
    def test_string_equality_matches_python(self, a, b):
        assert check(f'"{a}" == "{b}"') == (a == b)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20))
    def test_arithmetic_matches_python(self, a, b, c):
        assert check(f"{a} + {b} * {c} == {a + b * c}")

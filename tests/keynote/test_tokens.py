"""Tests for the expression tokenizer."""

import pytest

from repro.errors import KeyNoteSyntaxError
from repro.keynote.tokens import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokenize:
    def test_empty_input_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type is TokenType.EOF

    def test_string_literal(self):
        assert kinds('"hello"') == [(TokenType.STRING, "hello")]

    def test_string_with_escapes(self):
        assert kinds(r'"a\"b\\c"') == [(TokenType.STRING, 'a"b\\c')]

    def test_unterminated_string(self):
        with pytest.raises(KeyNoteSyntaxError):
            tokenize('"oops')

    def test_numbers(self):
        assert kinds("42 3.14") == [(TokenType.NUMBER, "42"),
                                    (TokenType.NUMBER, "3.14")]

    def test_number_then_concat_dot(self):
        # `1 . x`: the dot after a complete number is an operator.
        assert kinds("1.x") == [(TokenType.NUMBER, "1"), (TokenType.OP, "."),
                                (TokenType.IDENT, "x")]

    def test_identifiers(self):
        assert kinds("app_domain _x y2") == [
            (TokenType.IDENT, "app_domain"),
            (TokenType.IDENT, "_x"),
            (TokenType.IDENT, "y2"),
        ]

    def test_multi_char_operators_greedy(self):
        assert kinds("a==b") == [(TokenType.IDENT, "a"), (TokenType.OP, "=="),
                                 (TokenType.IDENT, "b")]
        assert kinds("a<=b>=c") == [
            (TokenType.IDENT, "a"), (TokenType.OP, "<="),
            (TokenType.IDENT, "b"), (TokenType.OP, ">="),
            (TokenType.IDENT, "c"),
        ]

    def test_arrow_vs_minus(self):
        assert kinds("a->b") == [(TokenType.IDENT, "a"), (TokenType.OP, "->"),
                                 (TokenType.IDENT, "b")]
        assert kinds("a-b") == [(TokenType.IDENT, "a"), (TokenType.OP, "-"),
                                (TokenType.IDENT, "b")]

    def test_logical_operators(self):
        assert kinds("&& || !") == [(TokenType.OP, "&&"), (TokenType.OP, "||"),
                                    (TokenType.OP, "!")]

    def test_comment_skipped(self):
        assert kinds("a # comment\nb") == [(TokenType.IDENT, "a"),
                                           (TokenType.IDENT, "b")]

    def test_position_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(KeyNoteSyntaxError) as err:
            tokenize("a @ b")
        assert "@" in str(err.value)

    def test_is_op_helper(self):
        tok = tokenize("&&")[0]
        assert tok.is_op("&&")
        assert tok.is_op("||", "&&")
        assert not tok.is_op("||")

"""Tests for the session-style KeyNote API."""

import pytest

from repro.crypto import Keystore
from repro.errors import CredentialError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.util.events import AuditLog

POLICY_TEXT = '''
Authorizer: POLICY
Licensees: "Kbob"
Conditions: app_domain=="SalariesDB" && (oper=="read" || oper=="write");
'''


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kbob", "Kalice"):
        ks.create(name)
    return ks


@pytest.fixture
def session(keystore) -> KeyNoteSession:
    s = KeyNoteSession(keystore=keystore)
    s.add_policy(POLICY_TEXT)
    return s


class TestSession:
    def test_query_result_fields(self, session):
        result = session.query({"app_domain": "SalariesDB", "oper": "read"},
                               ["Kbob"])
        assert result.authorized
        assert result.compliance_value == "true"
        assert result.authorizers == ("Kbob",)
        assert bool(result)

    def test_deny(self, session):
        assert not session.query({"app_domain": "Other"}, ["Kbob"])

    def test_add_policy_rejects_signed_credential(self, session, keystore):
        cred = Credential.build("Kbob", '"Kalice"', "true")
        with pytest.raises(CredentialError):
            session.add_policy(cred)

    def test_add_credential_rejects_policy(self, session):
        with pytest.raises(CredentialError):
            session.add_credential(POLICY_TEXT)

    def test_credential_accumulation(self, session, keystore):
        cred = Credential.build(
            "Kbob", '"Kalice"',
            'app_domain=="SalariesDB" && oper=="write"').signed_by(keystore)
        session.add_credential(cred)
        assert session.query({"app_domain": "SalariesDB", "oper": "write"},
                             ["Kalice"])
        assert len(session.credentials) == 1
        assert len(session.policies) == 1

    def test_extra_credentials_not_retained(self, session, keystore):
        cred = Credential.build(
            "Kbob", '"Kalice"',
            'app_domain=="SalariesDB" && oper=="write"').signed_by(keystore)
        attrs = {"app_domain": "SalariesDB", "oper": "write"}
        assert session.query(attrs, ["Kalice"], extra_credentials=[cred])
        # Without the extra credential the request is denied again.
        assert not session.query(attrs, ["Kalice"])

    def test_clear_credentials_keeps_policies(self, session, keystore):
        cred = Credential.build(
            "Kbob", '"Kalice"', "true").signed_by(keystore)
        session.add_credential(cred)
        session.clear_credentials()
        assert session.credentials == []
        assert len(session.policies) == 1

    def test_add_credentials_blob(self, session, keystore):
        a = Credential.build("Kbob", '"Kalice"', 'x=="1"').signed_by(keystore)
        b = Credential.build("Kbob", '"Kalice"', 'x=="2"').signed_by(keystore)
        blob = a.to_text() + "\n" + b.to_text()
        added = session.add_credentials(blob)
        assert len(added) == 2

    def test_audit_records_decisions(self, keystore):
        audit = AuditLog()
        s = KeyNoteSession(keystore=keystore, audit=audit)
        s.add_policy(POLICY_TEXT)
        s.query({"app_domain": "SalariesDB", "oper": "read"}, ["Kbob"])
        s.query({"app_domain": "Nope"}, ["Kbob"])
        assert len(audit.find(category="keynote.query")) == 2
        assert len(audit.find(outcome="allow")) == 1
        assert len(audit.find(outcome="deny")) == 1

    def test_checker_cache_invalidation(self, session, keystore):
        attrs = {"app_domain": "SalariesDB", "oper": "write"}
        assert not session.query(attrs, ["Kalice"])
        cred = Credential.build(
            "Kbob", '"Kalice"',
            'app_domain=="SalariesDB" && oper=="write"').signed_by(keystore)
        session.add_credential(cred)  # must invalidate the cached checker
        assert session.query(attrs, ["Kalice"])

    def test_doctest_example(self, keystore):
        s = KeyNoteSession(keystore=keystore)
        s.add_policy('Authorizer: POLICY\nLicensees: "Kbob"\n'
                     'Conditions: app_domain=="db";')
        assert bool(s.query({"app_domain": "db"}, authorizers=["Kbob"]))

"""Credential lifecycle robustness: expiry, revocation races, clock skew.

The PR-3 decision caches (compliance checker decision cache, stack
mediation cache) make revocation and expiry *racy* by construction: a
cached ALLOW must never outlive the credential it relied on.  And under
clock skew, naive per-query ``_cur_time`` expiry makes verdicts flap
between two clients whose clocks disagree — the structured
``expires_at`` + grace-window sweep is the deterministic alternative.
"""

import pytest

from repro.crypto import Keystore
from repro.errors import CredentialError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.obs import Observability
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.webcom.stack import AuthorisationStack, MediationRequest

POLICY_TEXT = '''
Authorizer: POLICY
Licensees: "Kbob"
Conditions: app_domain=="DB";
'''


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kbob", "Kalice"):
        ks.create(name)
    return ks


def _delegation(keystore, conditions='app_domain=="DB"'):
    return Credential.build("Kbob", '"Kalice"',
                            conditions).signed_by(keystore)


ATTRS = {"app_domain": "DB"}


class TestCurTimeExpiryBoundary:
    """A ``_cur_time < T`` credential flips exactly at T (exclusive)."""

    def test_passes_before_expiry_instant(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(
            keystore, 'app_domain=="DB" && _cur_time < 100.0'))
        clock.advance(99.0)
        assert session.query(ATTRS, ["Kalice"])

    def test_fails_exactly_at_expiry_instant(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(
            keystore, 'app_domain=="DB" && _cur_time < 100.0'))
        clock.advance(100.0)  # _cur_time == 100.0: 100.0 < 100.0 is false
        assert not session.query(ATTRS, ["Kalice"])

    def test_inclusive_boundary_passes_at_instant(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(
            keystore, 'app_domain=="DB" && _cur_time <= 100.0'))
        clock.advance(100.0)
        assert session.query(ATTRS, ["Kalice"])
        clock.advance(0.001)
        assert not session.query(ATTRS, ["Kalice"])


class TestRevocationRacesDecisionCaches:
    def test_revocation_invalidates_checker_decision_cache(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(POLICY_TEXT)
        cred = session.add_credential(_delegation(keystore))
        assert session.query(ATTRS, ["Kalice"])   # cached ALLOW
        assert session.revoke_credential(cred)
        assert not session.query(ATTRS, ["Kalice"])

    def test_revocation_invalidates_stack_mediation_cache(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(POLICY_TEXT)
        cred = session.add_credential(_delegation(keystore))
        stack = AuthorisationStack(clock=clock, cache_ttl=1000.0)
        stack.plug_trust_management(session)
        request = MediationRequest(user="alice", user_key="Kalice",
                                   object_type="DB", operation="read",
                                   attributes={"app_domain": "DB"})
        assert stack.mediate(request).allowed
        assert stack.mediate(request).allowed      # served from cache
        assert stack.cache_hits == 1
        session.revoke_credential(cred)
        # The cached ALLOW relied on the revoked credential: the session
        # fingerprint changed, so the hit is rejected and re-mediated.
        assert not stack.mediate(request).allowed

    def test_expiry_sweep_invalidates_stack_mediation_cache(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(keystore), expires_at=50.0)
        stack = AuthorisationStack(clock=clock, cache_ttl=1000.0)
        stack.plug_trust_management(session)
        request = MediationRequest(user="alice", user_key="Kalice",
                                   object_type="DB", operation="read",
                                   attributes={"app_domain": "DB"})
        assert stack.mediate(request).allowed
        clock.advance(60.0)
        assert session.sweep_expired()
        assert not stack.mediate(request).allowed


class TestGraceWindowBoundaries:
    def test_grace_defaults_to_twice_clock_skew(self, keystore):
        session = KeyNoteSession(keystore=keystore, clock_skew=3.0)
        assert session.expiry_grace == 6.0
        explicit = KeyNoteSession(keystore=keystore, clock_skew=3.0,
                                  expiry_grace=1.0)
        assert explicit.expiry_grace == 1.0

    def test_negative_skew_or_grace_rejected(self, keystore):
        with pytest.raises(CredentialError):
            KeyNoteSession(keystore=keystore, clock_skew=-1.0)
        with pytest.raises(CredentialError):
            KeyNoteSession(keystore=keystore, expiry_grace=-0.5)

    def test_not_swept_inside_grace_window(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock,
                                 clock_skew=5.0)  # grace = 10
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(keystore), expires_at=100.0)
        clock.advance(109.9)  # expired, but within expires_at + grace
        assert session.sweep_expired() == []
        assert session.query(ATTRS, ["Kalice"])

    def test_swept_exactly_at_grace_boundary(self, keystore):
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock,
                                 clock_skew=5.0)
        session.add_policy(POLICY_TEXT)
        cred = session.add_credential(_delegation(keystore), expires_at=100.0)
        clock.advance(110.0)  # now == expires_at + grace: inclusive sweep
        assert session.sweep_expired() == [cred]
        assert not session.query(ATTRS, ["Kalice"])
        assert session.expiring() == {}

    def test_no_flapping_between_sweeps(self, keystore):
        # Between sweeps the verdict is constant even as queries cross the
        # raw expiry instant — the deterministic alternative to per-query
        # clock comparisons under skew.
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock,
                                 clock_skew=5.0)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(keystore), expires_at=100.0)
        verdicts = []
        for _ in range(8):
            clock.advance(1.0)  # t = 96..103, crossing expires_at = 100
            verdicts.append(bool(session.query(ATTRS, ["Kalice"])))
        assert verdicts == [True] * 8

    def test_sweep_audits_and_counts_expiries(self, keystore):
        obs = Observability()
        audit = AuditLog()
        session = KeyNoteSession(keystore=keystore, clock=obs.clock,
                                 audit=audit, obs=obs)
        session.add_policy(POLICY_TEXT)
        session.add_credential(_delegation(keystore), expires_at=10.0)
        obs.clock.advance(20.0)
        assert len(session.sweep_expired()) == 1
        assert obs.metrics.counter("health.credential.expired").value == 1
        records = audit.find(category="keynote.expire")
        assert records and records[0].detail["expires_at"] == 10.0

    def test_rejects_non_finite_expiry(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(POLICY_TEXT)
        with pytest.raises(CredentialError):
            session.add_credential(_delegation(keystore),
                                   expires_at=float("nan"))

    def test_revoke_drops_expiry_entry(self, keystore):
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(POLICY_TEXT)
        cred = session.add_credential(_delegation(keystore), expires_at=5.0)
        session.revoke_credential(cred)
        assert session.expiring() == {}
        session.add_credential(_delegation(keystore), expires_at=5.0)
        session.clear_credentials()
        assert session.expiring() == {}

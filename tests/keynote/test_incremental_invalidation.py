"""Churn-metamorphic suite for dependency-indexed invalidation.

The metamorphic relation under test: after ANY mutation of the assertion
set, every decision the warm checker returns must equal what a cold
checker built from the post-mutation assertions computes — selective
eviction may keep or drop whatever it likes, but it must never change an
answer.  The companion direction: decisions whose recorded dependency
sets do not intersect a delta must *survive* it (entries retained, served
as hits), while dependent decisions are evicted.
"""

import random

import pytest

from repro.keynote.bench import _OPS, _attrs, build_delegation_universe
from repro.keynote.compliance import ComplianceChecker, incremental_default
from repro.keynote.credential import Credential
from repro.oracle.keynote_oracle import oracle_compliance_value


def small_universe():
    return build_delegation_universe(orgs=2, teams=4, users=24, seed=3)


def fresh_checker(universe, incremental=True, extra=()):
    assertions = (universe["policy_creds"] + universe["org_creds"]
                  + universe["team_creds"] + universe["proxy_creds"]
                  + list(extra))
    return ComplianceChecker(assertions=list(assertions),
                             verify_signatures=False,
                             incremental=incremental)


def probe(checker, universe, user, op="submit"):
    return checker.query(_attrs(universe, user, op),
                         [universe["proxy_keys"][user]])


class TestMetamorphicEquivalence:
    """cached == cold recompute after every mutation, for every probe."""

    def assert_agrees_with_cold(self, checker, universe):
        cold = ComplianceChecker(assertions=list(checker.assertions),
                                 verify_signatures=False, incremental=True)
        for user in range(universe["users"]):
            for op in _OPS:
                assert probe(checker, universe, user, op) == \
                    probe(cold, universe, user, op), \
                    f"user {user} op {op} diverged from cold recompute"

    def test_seeded_churn_never_changes_an_answer(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        proxy_creds = list(universe["proxy_creds"])
        for user in range(universe["users"]):  # warm every decision
            for op in _OPS:
                probe(checker, universe, user, op)
        rng = random.Random(99)
        for step in range(12):
            user = rng.randrange(universe["users"])
            if rng.random() < 0.5:
                checker.revoke_assertion(proxy_creds[user])
            else:
                renewed = Credential.build(
                    f"Kuser{user}", f'"Kproxy{user}"', 'app=="grid"',
                    local_constants={"renewal": str(step)})
                checker.add_assertion(renewed)
                proxy_creds[user] = renewed
            self.assert_agrees_with_cold(checker, universe)
        assert checker.full_flushes == 0  # the vocabulary never changed

    def test_post_churn_sample_agrees_with_oracle(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        for user in range(universe["users"]):
            probe(checker, universe, user)
        checker.revoke_assertion(universe["proxy_creds"][5])
        checker.revoke_assertion(universe["team_creds"][11])
        rng = random.Random(7)
        for _ in range(20):
            user = rng.randrange(universe["users"])
            op = rng.choice(_OPS)
            attributes = _attrs(universe, user, op)
            authorizers = [universe["proxy_keys"][user]]
            assert checker.query(attributes, authorizers) == \
                oracle_compliance_value(list(checker.assertions),
                                        attributes, authorizers)


class TestSelectiveEviction:
    """Dependent decisions are evicted, non-dependent ones survive and
    keep serving hits."""

    def test_unrelated_revocation_keeps_the_entry_and_the_hit(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        # user 0 (team 0) and user 1 (team 1): disjoint delegation cones.
        allow = probe(checker, universe, 0)
        probe(checker, universe, 1)
        key, cached = checker.cached_decision(
            _attrs(universe, 0, "submit"), [universe["proxy_keys"][0]])
        assert cached == allow
        hits = checker.cache_hits
        checker.revoke_assertion(universe["proxy_creds"][1])
        _key, still = checker.cached_decision(
            _attrs(universe, 0, "submit"), [universe["proxy_keys"][0]])
        assert still == allow, "non-dependent entry was evicted"
        assert probe(checker, universe, 0) == allow
        assert checker.cache_hits == hits + 1

    def test_dependent_decision_is_evicted_and_recomputed(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        assert probe(checker, universe, 2) == "true"
        checker.revoke_assertion(universe["proxy_creds"][2])
        _key, cached = checker.cached_decision(
            _attrs(universe, 2, "submit"), [universe["proxy_keys"][2]])
        assert cached is None, "dependent entry survived its own delta"
        assert checker.selective_evictions >= 1
        assert probe(checker, universe, 2) == "false"

    def test_new_credential_evicts_only_the_authorizers_cone(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        probe(checker, universe, 0)   # team 0
        probe(checker, universe, 3)   # team 3
        evicted_before = checker.selective_evictions
        # A second proxy credential for user 3 touches Kuser3's cone only.
        checker.add_assertion(Credential.build(
            "Kuser3", '"Kproxy3b"', 'app=="grid"'))
        _key, survivor = checker.cached_decision(
            _attrs(universe, 0, "submit"), [universe["proxy_keys"][0]])
        assert survivor is not None
        assert checker.selective_evictions >= evicted_before
        assert checker.full_flushes == 0

    def test_referenced_shape_change_falls_back_to_full_flush(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        probe(checker, universe, 0)
        probe(checker, universe, 1)
        assert checker.cache_info()["entries"] == 2
        # A brand-new attribute name changes the cache-key projection:
        # selective eviction cannot address old-projection entries.
        checker.add_assertion(Credential.build(
            "Kuser0", '"Kproxy0"', 'vo=="atlas"'))
        assert checker.full_flushes == 1
        assert checker.cache_info()["entries"] == 0

    def test_generation_flush_baseline_still_drops_everything(self):
        universe = small_universe()
        checker = fresh_checker(universe, incremental=False)
        probe(checker, universe, 0)
        probe(checker, universe, 1)
        checker.revoke_assertion(universe["proxy_creds"][23])  # unrelated
        assert checker.cache_info()["entries"] == 0
        assert checker.selective_evictions == 0

    def test_env_flag_selects_the_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_INVALIDATION", "0")
        assert incremental_default() is False
        monkeypatch.setenv("REPRO_INCREMENTAL_INVALIDATION", "1")
        assert incremental_default() is True


class TestRevokeEvictionOrdering:
    """Pins the revoke_assertion contract: dependents are evicted and the
    generation bumped BEFORE the prepared entry is structurally removed
    and the referenced-attribute state rebuilt.  A concurrent query that
    raced the old order could recompute against half-applied state and be
    cached under a stale dependency record."""

    def test_evict_then_bump_then_remove(self, monkeypatch):
        universe = small_universe()
        checker = fresh_checker(universe)
        probe(checker, universe, 4)
        events = []

        real_evict = checker._evict_dependents
        real_bump = checker._bump_generation
        real_rebuild = checker._rebuild_referenced

        def spy_evict(*args, **kwargs):
            events.append("evict")
            return real_evict(*args, **kwargs)

        def spy_bump(*args, **kwargs):
            events.append("bump")
            return real_bump(*args, **kwargs)

        def spy_rebuild(*args, **kwargs):
            # Structural removal happens immediately before the rebuild;
            # record what the structures say at this point.
            key = checker._canonical("Kuser4")
            events.append(("rebuild", key in checker._by_authorizer))
            return real_rebuild(*args, **kwargs)

        monkeypatch.setattr(checker, "_evict_dependents", spy_evict)
        monkeypatch.setattr(checker, "_bump_generation", spy_bump)
        monkeypatch.setattr(checker, "_rebuild_referenced", spy_rebuild)

        assert checker.revoke_assertion(universe["proxy_creds"][4])
        assert events == ["evict", "bump", ("rebuild", False)]

    def test_failed_revoke_neither_evicts_nor_bumps(self):
        universe = small_universe()
        checker = fresh_checker(universe)
        probe(checker, universe, 4)
        info = checker.cache_info()
        stranger = Credential.build("Knobody", '"Kno-one"', 'app=="grid"')
        assert not checker.revoke_assertion(stranger)
        after = checker.cache_info()
        assert after["entries"] == info["entries"]
        assert after["generation"] == info["generation"]
        assert after["selective_evictions"] == info["selective_evictions"]

"""Tests for the compliance checker — the heart of the trust-management layer.

Includes the paper's Example 1/2 narrative (Figures 2 and 4) and the
Figure 5/6/7 delegation chains.
"""

import pytest

from repro.crypto import Keystore
from repro.errors import ComplianceError, CredentialError
from repro.keynote.compliance import ComplianceChecker, evaluate_query
from repro.keynote.credential import Credential
from repro.keynote.values import ComplianceValueSet

SALARIES = {"app_domain": "SalariesDB"}


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kbob", "Kalice", "KWebCom", "Kclaire", "Kfred", "Ka", "Kb",
                 "Kc", "Kd"):
        ks.create(name)
    return ks


def policy(licensees: str, conditions: str) -> Credential:
    return Credential.build("POLICY", licensees, conditions)


def signed(keystore: Keystore, authorizer: str, licensees: str,
           conditions: str) -> Credential:
    cred = Credential.build(authorizer, licensees, conditions)
    return cred.sign(keystore.pair(authorizer).private)


class TestDirectAuthorisation:
    def test_paper_example1_bob(self, keystore):
        fig2 = policy('"Kbob"',
                      'app_domain=="SalariesDB" && (oper=="read" || oper=="write")')
        checker = ComplianceChecker([fig2], keystore=keystore)
        assert checker.query({**SALARIES, "oper": "read"}, ["Kbob"]) == "true"
        assert checker.query({**SALARIES, "oper": "write"}, ["Kbob"]) == "true"
        assert checker.query({**SALARIES, "oper": "delete"}, ["Kbob"]) == "false"
        assert checker.query({"app_domain": "Other", "oper": "read"},
                             ["Kbob"]) == "false"

    def test_unknown_requester_denied(self, keystore):
        checker = ComplianceChecker(
            [policy('"Kbob"', 'app_domain=="SalariesDB"')], keystore=keystore)
        assert checker.query(SALARIES, ["Kalice"]) == "false"

    def test_empty_authorizers_rejected(self, keystore):
        checker = ComplianceChecker([], keystore=keystore)
        with pytest.raises(ComplianceError):
            checker.query(SALARIES, [])

    def test_no_assertions_means_deny(self, keystore):
        checker = ComplianceChecker([], keystore=keystore)
        assert checker.query(SALARIES, ["Kbob"]) == "false"


class TestDelegationChains:
    def test_paper_example2_alice_via_bob(self, keystore):
        fig2 = policy('"Kbob"',
                      'app_domain=="SalariesDB" && (oper=="read" || oper=="write")')
        fig4 = signed(keystore, "Kbob", '"Kalice"',
                      'app_domain=="SalariesDB" && oper=="write"')
        checker = ComplianceChecker([fig2, fig4], keystore=keystore)
        # Alice may write (delegated) but not read (Bob only delegated write).
        assert checker.query({**SALARIES, "oper": "write"}, ["Kalice"]) == "true"
        assert checker.query({**SALARIES, "oper": "read"}, ["Kalice"]) == "false"
        # Bob keeps his own authority.
        assert checker.query({**SALARIES, "oper": "read"}, ["Kbob"]) == "true"

    def test_delegation_cannot_widen_authority(self, keystore):
        # Bob only holds write; delegating read to Alice grants nothing.
        pol = policy('"Kbob"', 'oper=="write"')
        cred = signed(keystore, "Kbob", '"Kalice"', 'oper=="read"')
        checker = ComplianceChecker([pol, cred], keystore=keystore)
        assert checker.query({"oper": "read"}, ["Kalice"]) == "false"

    def test_three_link_chain(self, keystore):
        chain = [
            policy('"Ka"', 'x=="1"'),
            signed(keystore, "Ka", '"Kb"', 'x=="1"'),
            signed(keystore, "Kb", '"Kc"', 'x=="1"'),
        ]
        checker = ComplianceChecker(chain, keystore=keystore)
        assert checker.query({"x": "1"}, ["Kc"]) == "true"
        assert checker.query({"x": "2"}, ["Kc"]) == "false"

    def test_chain_conditions_intersect(self, keystore):
        # Middle link narrows the conditions; the leaf only gets the
        # intersection.
        chain = [
            policy('"Ka"', 'x=="1" || x=="2"'),
            signed(keystore, "Ka", '"Kb"', 'x=="1"'),
        ]
        checker = ComplianceChecker(chain, keystore=keystore)
        assert checker.query({"x": "1"}, ["Kb"]) == "true"
        assert checker.query({"x": "2"}, ["Kb"]) == "false"

    def test_delegation_cycle_grants_nothing(self, keystore):
        chain = [
            signed(keystore, "Ka", '"Kb"', "true"),
            signed(keystore, "Kb", '"Ka"', "true"),
        ]
        checker = ComplianceChecker(chain, keystore=keystore)
        assert checker.query({"x": "1"}, ["Ka"]) == "false"

    def test_cycle_with_policy_escape(self, keystore):
        # A cycle exists but POLICY also trusts Ka directly: must allow.
        chain = [
            policy('"Ka"', "true"),
            signed(keystore, "Ka", '"Kb"', "true"),
            signed(keystore, "Kb", '"Ka"', "true"),
        ]
        checker = ComplianceChecker(chain, keystore=keystore)
        assert checker.query({}, ["Kb"]) == "true"

    def test_diamond_memoisation_sound(self, keystore):
        # Kd is reachable via Kb and Kc; both paths must be explored.
        chain = [
            policy('"Ka"', "true"),
            signed(keystore, "Ka", '"Kb"', 'oper=="read"'),
            signed(keystore, "Ka", '"Kc"', 'oper=="write"'),
            signed(keystore, "Kb", '"Kd"', "true"),
            signed(keystore, "Kc", '"Kd"', "true"),
        ]
        checker = ComplianceChecker(chain, keystore=keystore)
        assert checker.query({"oper": "read"}, ["Kd"]) == "true"
        assert checker.query({"oper": "write"}, ["Kd"]) == "true"
        assert checker.query({"oper": "other"}, ["Kd"]) == "false"

    def test_naive_and_memoised_agree(self, keystore):
        chain = [
            policy('"Ka"', "true"),
            signed(keystore, "Ka", '"Kb" && "Kc"', 'x=="1"'),
            signed(keystore, "Kb", '"Kd"', "true"),
            signed(keystore, "Kc", '"Kd"', "true"),
        ]
        memo = ComplianceChecker(chain, keystore=keystore, memoise=True)
        naive = ComplianceChecker(chain, keystore=keystore, memoise=False)
        for authorizers in (["Kd"], ["Kb", "Kc"], ["Kb"]):
            assert (memo.query({"x": "1"}, authorizers)
                    == naive.query({"x": "1"}, authorizers))


class TestConjunctiveLicensees:
    def test_joint_delegation_requires_both(self, keystore):
        pol = policy('"Ka" && "Kb"', "true")
        checker = ComplianceChecker([pol], keystore=keystore)
        assert checker.query({}, ["Ka"]) == "false"
        assert checker.query({}, ["Ka", "Kb"]) == "true"

    def test_conjunction_satisfied_via_mixed_chain(self, keystore):
        # Ka is a requester; Kb's trust flows via delegation to the requester Kc.
        assertions = [
            policy('"Ka" && "Kb"', "true"),
            signed(keystore, "Kb", '"Kc"', "true"),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Ka", "Kc"]) == "true"
        assert checker.query({}, ["Kc"]) == "false"

    def test_threshold_licensees(self, keystore):
        pol = policy('2-of("Ka", "Kb", "Kc")', "true")
        checker = ComplianceChecker([pol], keystore=keystore)
        assert checker.query({}, ["Ka"]) == "false"
        assert checker.query({}, ["Ka", "Kc"]) == "true"


class TestSignatureHandling:
    def test_unsigned_credential_discarded(self, keystore):
        cred = Credential.build("Kbob", '"Kalice"', "true")  # never signed
        checker = ComplianceChecker(
            [policy('"Kbob"', "true"), cred], keystore=keystore)
        assert checker.query({}, ["Kalice"]) == "false"
        assert len(checker.discarded) == 1

    def test_strict_mode_raises(self, keystore):
        cred = Credential.build("Kbob", '"Kalice"', "true")
        with pytest.raises(CredentialError):
            ComplianceChecker([cred], keystore=keystore, strict=True)

    def test_verification_can_be_disabled(self, keystore):
        cred = Credential.build("Kbob", '"Kalice"', "true")
        checker = ComplianceChecker(
            [policy('"Kbob"', "true"), cred], keystore=keystore,
            verify_signatures=False)
        assert checker.query({}, ["Kalice"]) == "true"

    def test_symbolic_and_encoded_principals_unify(self, keystore):
        # Policy names the symbolic "Kbob"; the request comes from the
        # encoded key.  The keystore canonicalises both.
        pol = policy('"Kbob"', "true")
        checker = ComplianceChecker([pol], keystore=keystore)
        encoded = keystore.public("Kbob").encode()
        assert checker.query({}, [encoded]) == "true"


class TestComplianceValues:
    def test_graded_approval(self, keystore):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        pol = policy('"Ka"', 'risk=="low" -> "approve"; risk=="mid" -> "log"')
        checker = ComplianceChecker([pol], keystore=keystore)
        assert checker.query({"risk": "low"}, ["Ka"], tri) == "approve"
        assert checker.query({"risk": "mid"}, ["Ka"], tri) == "log"
        assert checker.query({"risk": "high"}, ["Ka"], tri) == "reject"

    def test_chain_takes_weakest_link_value(self, keystore):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        assertions = [
            policy('"Ka"', 'true -> "approve"'),
            signed(keystore, "Ka", '"Kb"', 'true -> "log"'),
        ]
        checker = ComplianceChecker(assertions, keystore=keystore)
        assert checker.query({}, ["Kb"], tri) == "log"

    def test_authorises_threshold(self, keystore):
        tri = ComplianceValueSet(("reject", "log", "approve"))
        pol = policy('"Ka"', 'true -> "log"')
        checker = ComplianceChecker([pol], keystore=keystore)
        assert not checker.authorises({}, ["Ka"], tri)
        assert checker.authorises({}, ["Ka"], tri, threshold="log")


class TestEvaluateQueryHelper:
    def test_one_shot(self, keystore):
        value = evaluate_query([policy('"Ka"', "true")], {}, ["Ka"],
                               keystore=keystore)
        assert value == "true"

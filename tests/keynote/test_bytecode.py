"""Bytecode-vs-tree-walk equivalence for the condition compiler (PR 8).

The postfix bytecode in :mod:`repro.keynote.eval` must agree with the
tree-walking :class:`ConditionEvaluator` on every program: same value,
same soft-failure outcomes, and — crucially — the same *hard* errors (a
soft-failed left operand must keep the right operand unevaluated in both
implementations).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNoteEvalError
from repro.keynote.ast import (Attribute, Binary, Clause, ConditionsProgram,
                               Deref, NumberLit, StringLit, Unary)
from repro.keynote.eval import (ConditionEvaluator, compile_conditions,
                                compile_test, _run)
from repro.keynote.parser import parse_conditions
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

VALUES = ComplianceValueSet(("low", "medium", "high"))

_ATTR_NAMES = ("a", "b", "num", "flag")
_LEAVES = st.one_of(
    st.sampled_from([StringLit("x"), StringLit("true"), StringLit(""),
                     StringLit("3"), NumberLit("2"), NumberLit("0"),
                     NumberLit("3.5")]),
    st.sampled_from(_ATTR_NAMES).map(Attribute),
)
_UNARY_OPS = ("!", "-")
_BINARY_OPS = ("&&", "||", "==", "!=", "<", ">", "<=", ">=", "~=",
               "+", "-", "*", "/", "%", "^", ".")


def _exprs(children):
    return st.one_of(
        st.tuples(st.sampled_from(_UNARY_OPS), children)
        .map(lambda t: Unary(t[0], t[1])),
        children.map(Deref),
        st.tuples(st.sampled_from(_BINARY_OPS), children, children)
        .map(lambda t: Binary(t[0], t[1], t[2])),
    )


EXPRESSIONS = st.recursive(_LEAVES, _exprs, max_leaves=12)
ATTRIBUTES = st.fixed_dictionaries(
    {}, optional={name: st.sampled_from(["", "1", "2", "x", "true", "b"])
                  for name in _ATTR_NAMES})


def _program_outcomes(program, attributes, values):
    """(tree outcome, bytecode outcome) where an outcome is a value string
    or the marker ``("error", message)``."""
    try:
        tree = ConditionEvaluator(attributes, values).program_value(program)
    except KeyNoteEvalError as exc:
        tree = ("error", str(exc))
    compiled = compile_conditions(program)
    try:
        byte = compiled.value(attributes, values)
    except KeyNoteEvalError as exc:
        byte = ("error", str(exc))
    return tree, byte


class TestGeneratedEquivalence:
    @given(expr=EXPRESSIONS, attributes=ATTRIBUTES)
    @settings(max_examples=300, deadline=None)
    def test_single_clause_value(self, expr, attributes):
        program = ConditionsProgram((Clause(expr, None),))
        tree, byte = _program_outcomes(program, attributes, DEFAULT_VALUE_SET)
        assert tree == byte

    @given(exprs=st.lists(EXPRESSIONS, min_size=1, max_size=3),
           attributes=ATTRIBUTES)
    @settings(max_examples=150, deadline=None)
    def test_multi_clause_named_values(self, exprs, attributes):
        names = ("low", "medium", "high")
        program = ConditionsProgram(tuple(
            Clause(expr, names[i % 3]) for i, expr in enumerate(exprs)))
        tree, byte = _program_outcomes(program, attributes, VALUES)
        assert tree == byte

    @given(expr=EXPRESSIONS, inner=EXPRESSIONS, attributes=ATTRIBUTES)
    @settings(max_examples=100, deadline=None)
    def test_nested_programs(self, expr, inner, attributes):
        program = ConditionsProgram((
            Clause(expr, ConditionsProgram((Clause(inner, "medium"),))),))
        tree, byte = _program_outcomes(program, attributes, VALUES)
        assert tree == byte


def _value(text, attributes, values=DEFAULT_VALUE_SET):
    program = parse_conditions(text)
    tree, byte = _program_outcomes(program, attributes, values)
    assert tree == byte
    return byte


class TestTargetedSemantics:
    def test_soft_failure_skips_right_operand(self):
        # The left comparison soft-fails (string vs number ordered), so
        # the right operand's bad regex must stay unevaluated — in the
        # tree walker the exception unwinds first, in the bytecode the
        # JFAIL jump skips it.
        assert _value('(("x" < 1) == (a ~= "[")) || true',
                      {"a": "x"}) == "true"

    def test_dynamic_bad_regex_is_a_hard_error(self):
        program = parse_conditions('a ~= b')
        compiled = compile_conditions(program)
        with pytest.raises(KeyNoteEvalError):
            compiled.value({"a": "x", "b": "["}, DEFAULT_VALUE_SET)

    def test_literal_bad_regex_is_deferred_not_compile_time(self):
        # Compilation must not raise; the error surfaces per query,
        # exactly when the tree walker would raise it.
        program = parse_conditions('a ~= "["')
        compiled = compile_conditions(program)
        with pytest.raises(KeyNoteEvalError):
            compiled.value({"a": "x"}, DEFAULT_VALUE_SET)

    def test_or_absorbs_left_soft_failure(self):
        assert _value('("x" < 1) || true', {}) == "true"

    def test_and_propagates_soft_failure_to_false(self):
        assert _value('("x" < 1) && true', {}) == "false"

    def test_unknown_value_name_raises_only_when_test_passes(self):
        program = parse_conditions('a == "1" -> "no-such-value"')
        compiled = compile_conditions(program)
        assert compiled.value({"a": "0"}, VALUES) == "low"
        with pytest.raises(Exception):
            compiled.value({"a": "1"}, VALUES)


class TestConstantFolding:
    def test_constant_program_emits_no_instructions(self):
        compiled = compile_conditions(parse_conditions('1 < 2 && 3 == 3'))
        assert compiled.instruction_count() == 0
        assert compiled.value({}, DEFAULT_VALUE_SET) == "true"

    def test_statically_false_clause_is_dropped(self):
        compiled = compile_conditions(
            parse_conditions('1 > 2 -> "high"; a == "1" -> "medium"'))
        assert len(compiled._clauses) == 1
        assert compiled.value({"a": "1"}, VALUES) == "medium"
        assert compiled.value({"a": "0"}, VALUES) == "low"

    def test_constant_subexpression_is_folded(self):
        from repro.keynote.eval import OP_ARITH, OP_CONST
        code = compile_test(parse_conditions('a == 2 * 3').clauses[0].test)
        ops = [op for op, _ in code]
        assert OP_ARITH not in ops  # 2 * 3 folded at compile time
        assert (OP_CONST, 6.0) in code

    def test_short_circuit_skips_right_arm(self):
        # A statically-true left arm folds the whole || to a constant.
        compiled = compile_conditions(parse_conditions('1 < 2 || a == "1"'))
        assert compiled.instruction_count() == 0

    def test_referenced_attributes(self):
        compiled = compile_conditions(parse_conditions('a == "1" && b < 2'))
        assert compiled.referenced_attributes() == frozenset({"a", "b"})
        dynamic = compile_conditions(parse_conditions('$a == "1"'))
        assert dynamic.referenced_attributes() is None

    def test_disassemble_lists_opcodes(self):
        compiled = compile_conditions(parse_conditions('a == "1" && b < 2'))
        listing = "\n".join(compiled.disassemble())
        assert "ATTR" in listing and "JFALSE" in listing and "CMP" in listing

"""Tests for the administrative reports."""

from repro.core.scenarios import salaries_policy
from repro.crypto import Keystore
from repro.keynote.credential import Credential
from repro.rbac.model import DomainRole
from repro.report import (
    delegation_graph,
    delegation_graph_dot,
    delegation_paths,
    effective_permissions,
    effective_permissions_report,
)
from repro.translate.to_keynote import encode_full


class TestEffectivePermissions:
    def test_expansion_matches_decisions(self):
        policy = salaries_policy()
        rows = effective_permissions(policy)
        expanded = {(r.user, r.object_type, r.permission) for r in rows}
        for user in policy.users():
            for permission in ("read", "write"):
                expected = policy.check_access(user, "SalariesDB", permission)
                assert ((user, "SalariesDB", permission) in expanded) \
                    == expected

    def test_provenance_recorded(self):
        rows = effective_permissions(salaries_policy())
        bob_rows = [r for r in rows if r.user == "Bob"]
        assert all(r.role == "Manager" and r.domain == "Finance"
                   for r in bob_rows)
        assert len(bob_rows) == 2  # read + write

    def test_hierarchy_aware(self):
        policy = salaries_policy()
        policy.hierarchy.add_inheritance(DomainRole("Finance", "Manager"),
                                         DomainRole("Finance", "Clerk"))
        rows = effective_permissions(policy)
        # Bob now also reaches Clerk's write grant (same perm via two roles).
        via = {(r.role, r.permission) for r in rows if r.user == "Bob"}
        assert ("Clerk", "write") in via

    def test_report_renders(self):
        report = effective_permissions_report(salaries_policy())
        assert "Via role" in report
        assert "Finance/Manager" in report
        # Dave appears in no row: his role holds nothing.
        assert "Dave" not in report


class TestDelegationGraph:
    def credentials(self):
        keystore = Keystore()
        policy_cred, memberships = encode_full(salaries_policy(), "KWebCom",
                                               keystore)
        claire_delegates = Credential.build(
            "Kclaire", '"Kfred"',
            'app_domain=="WebCom" && Domain=="Sales" && Role=="Manager"',
        ).signed_by(keystore)
        return [policy_cred] + memberships + [claire_delegates]

    def test_graph_structure(self):
        graph = delegation_graph(self.credentials())
        assert graph.has_edge("POLICY", "KWebCom")
        assert graph.has_edge("KWebCom", "Kclaire")
        assert graph.has_edge("Kclaire", "Kfred")

    def test_paths_to_fred(self):
        paths = delegation_paths(self.credentials(), "Kfred")
        assert paths == [["POLICY", "KWebCom", "Kclaire", "Kfred"]]

    def test_paths_to_unknown(self):
        assert delegation_paths(self.credentials(), "Kmallory") == []

    def test_dot_export(self):
        dot = delegation_graph_dot(self.credentials())
        assert dot.startswith("digraph delegation {")
        assert '"POLICY" -> "KWebCom"' in dot
        assert dot.rstrip().endswith("}")

    def test_edge_conditions_attached(self):
        graph = delegation_graph(self.credentials())
        conditions = graph.edges["Kclaire", "Kfred"]["conditions"]
        assert 'Domain=="Sales"' in conditions

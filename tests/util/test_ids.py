"""Tests for deterministic id generation."""

from repro.util.ids import IdGenerator, stable_digest


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("msg") == "msg-1"
        assert gen.next("msg") == "msg-2"
        assert gen.next("node") == "node-1"

    def test_peek_does_not_advance(self):
        gen = IdGenerator()
        gen.next("x")
        assert gen.peek("x") == 1
        assert gen.peek("x") == 1

    def test_peek_unknown_prefix_is_zero(self):
        assert IdGenerator().peek("nope") == 0

    def test_reset_single_prefix(self):
        gen = IdGenerator()
        gen.next("a")
        gen.next("b")
        gen.reset("a")
        assert gen.next("a") == "a-1"
        assert gen.next("b") == "b-2"

    def test_reset_all(self):
        gen = IdGenerator()
        gen.next("a")
        gen.next("b")
        gen.reset()
        assert gen.next("a") == "a-1"
        assert gen.next("b") == "b-1"


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest("a", "b") == stable_digest("a", "b")

    def test_length_parameter(self):
        assert len(stable_digest("x", length=8)) == 8
        assert len(stable_digest("x", length=64)) == 64

    def test_no_concatenation_collision(self):
        assert stable_digest("ab", "c") != stable_digest("a", "bc")

    def test_different_inputs_differ(self):
        assert stable_digest("a") != stable_digest("b")

"""Tests for the simulated clock, audit log and text helpers."""

import pytest

from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.util.text import format_table, indent_block, quote, unquote


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(10.0).now() == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1.0)

    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0
        clock.advance_to(3.0)  # no-op: already past
        assert clock.now() == 7.0


class TestAuditLog:
    def test_record_and_len(self):
        log = AuditLog()
        log.record(0.0, "keynote.query", "Kbob", "allow")
        assert len(log) == 1

    def test_find_filters(self):
        log = AuditLog()
        log.record(0.0, "keynote.query", "Kbob", "allow")
        log.record(1.0, "keynote.query", "Kalice", "deny")
        log.record(2.0, "keycom.update", "Kalice", "allow")
        assert len(log.find(category="keynote.query")) == 2
        assert len(log.find(subject="Kalice")) == 2
        assert len(log.find(outcome="deny")) == 1
        assert len(log.find(category="keynote.query", outcome="allow")) == 1

    def test_last(self):
        log = AuditLog()
        assert log.last() is None
        log.record(0.0, "a", "x", "allow")
        log.record(1.0, "b", "y", "deny")
        assert log.last().category == "b"
        assert log.last(category="a").subject == "x"

    def test_listener_notified(self):
        log = AuditLog()
        seen = []
        log.subscribe(seen.append)
        log.record(0.0, "a", "x", "allow")
        assert len(seen) == 1
        assert seen[0].outcome == "allow"

    def test_clear_keeps_listeners(self):
        log = AuditLog()
        seen = []
        log.subscribe(seen.append)
        log.record(0.0, "a", "x", "allow")
        log.clear()
        assert len(log) == 0
        log.record(1.0, "b", "y", "deny")
        assert len(seen) == 2

    def test_detail_payload(self):
        log = AuditLog()
        rec = log.record(0.0, "a", "x", "allow", layer="L2", op="read")
        assert rec.detail["layer"] == "L2"


class TestQuoting:
    def test_round_trip_simple(self):
        assert unquote(quote("hello")) == "hello"

    def test_round_trip_with_quotes_and_backslashes(self):
        for s in ['say "hi"', "back\\slash", 'both "\\" mixed', ""]:
            assert unquote(quote(s)) == s

    def test_unquote_rejects_unquoted(self):
        with pytest.raises(ValueError):
            unquote("bare")

    def test_unquote_rejects_dangling_escape(self):
        with pytest.raises(ValueError):
            unquote('"abc\\')

    def test_unquote_rejects_embedded_quote(self):
        with pytest.raises(ValueError):
            unquote('"a"b"')


class TestFormatTable:
    def test_basic_table(self):
        out = format_table(["Domain", "Role"], [("Finance", "Clerk")])
        lines = out.splitlines()
        assert lines[0].startswith("Domain")
        assert "Finance" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [("only-one",)])

    def test_empty_rows(self):
        out = format_table(["A"], [])
        assert out.splitlines()[0] == "A"


class TestIndentBlock:
    def test_indents_nonempty_lines(self):
        assert indent_block("a\n\nb", "  ") == "  a\n\n  b"

"""The Clock abstraction: simulated and wall timescales, shared defaults."""

import time

from repro.util.clock import (
    SIMULATED_SCHEDULING_DEFAULTS,
    WALL_SCHEDULING_DEFAULTS,
    Clock,
    SimulatedClock,
    WallClock,
)


class TestClockProtocol:
    def test_both_clocks_satisfy_the_protocol(self):
        assert isinstance(SimulatedClock(), Clock)
        assert isinstance(WallClock(), Clock)

    def test_timescales_are_distinct(self):
        assert SimulatedClock().timescale == "simulated"
        assert WallClock().timescale == "wall"


class TestWallClock:
    def test_starts_at_epoch_zero(self):
        assert 0.0 <= WallClock().now() < 1.0

    def test_is_monotonic(self):
        clock = WallClock()
        samples = [clock.now() for _ in range(100)]
        assert samples == sorted(samples)

    def test_actually_tracks_real_time(self):
        clock = WallClock()
        before = clock.now()
        time.sleep(0.01)
        assert clock.now() - before >= 0.005

    def test_two_clocks_have_independent_origins(self):
        first = WallClock()
        time.sleep(0.01)
        second = WallClock()
        assert first.now() > second.now()


class TestSchedulingDefaults:
    def test_simulated_defaults_are_the_historical_constants(self):
        # The exact numbers the master hardcoded before the Clock routing:
        # changing them would silently change every simulated scenario.
        assert SimulatedClock().scheduling_defaults() == {
            "request_timeout": 10.0,
            "heartbeat_interval": 15.0,
            "heartbeat_timeout": 5.0,
            "request_deadline": 30.0,
        }

    def test_wall_defaults_are_subseconds_to_seconds(self):
        defaults = WallClock().scheduling_defaults()
        assert set(defaults) == set(SIMULATED_SCHEDULING_DEFAULTS)
        assert all(0.0 < value <= 5.0 for value in defaults.values())

    def test_defaults_are_copies(self):
        clock = SimulatedClock()
        clock.scheduling_defaults()["request_timeout"] = 999.0
        assert clock.scheduling_defaults() == SIMULATED_SCHEDULING_DEFAULTS
        assert WALL_SCHEDULING_DEFAULTS["heartbeat_timeout"] == 1.0

"""The recovery path: snapshot + tail assembly and its refusals."""

import pytest

from repro.errors import RecoveryError
from repro.store.recovery import recover
from repro.store.snapshot import SnapshotStore
from repro.store.wal import WriteAheadLog


def _stores(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log").open()
    snaps = SnapshotStore(tmp_path / "snaps")
    return wal, snaps


def test_log_only_recovery(tmp_path):
    wal, snaps = _stores(tmp_path)
    wal.append({"kind": "a"})
    wal.append({"kind": "b"})
    state = recover(wal, snaps)
    assert state.state == {}
    assert [r["kind"] for r in state.tail] == ["a", "b"]
    assert not state.used_snapshot()
    assert state.next_lsn == 2


def test_snapshot_plus_tail(tmp_path):
    wal, snaps = _stores(tmp_path)
    wal.append({"kind": "covered"})
    snaps.save({"total": 1}, wal_lsn=wal.next_lsn)
    wal.append({"kind": "tail1"})
    wal.append({"kind": "tail2"})
    state = recover(wal, snaps)
    assert state.state == {"total": 1}
    assert [r["kind"] for r in state.tail] == ["tail1", "tail2"]
    assert state.snapshot_lsn == 1
    assert state.used_snapshot()


def test_corrupt_latest_snapshot_replays_longer_tail(tmp_path):
    wal, snaps = _stores(tmp_path)
    wal.append({"kind": "old"})
    snaps.save({"gen": 1}, wal_lsn=wal.next_lsn)
    wal.append({"kind": "mid"})
    newest = snaps.save({"gen": 2}, wal_lsn=wal.next_lsn)
    wal.append({"kind": "new"})
    newest.write_text("garbage")
    state = recover(wal, snaps)
    assert state.state == {"gen": 1}
    assert [r["kind"] for r in state.tail] == ["mid", "new"]
    assert state.skipped_snapshots == 1


def test_compacted_past_every_snapshot_refuses(tmp_path):
    wal, snaps = _stores(tmp_path)
    for i in range(4):
        wal.append({"i": i})
    wal.compact(3)
    with pytest.raises(RecoveryError):
        recover(wal, snaps)


def test_snapshot_behind_compacted_base_refuses(tmp_path):
    wal, snaps = _stores(tmp_path)
    for i in range(4):
        wal.append({"i": i})
    snaps.save({"gen": 1}, wal_lsn=1)
    wal.compact(3)
    with pytest.raises(RecoveryError):
        recover(wal, snaps)

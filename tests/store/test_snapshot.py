"""Snapshots: atomic rename, corrupt-fallback, retention and the
compaction floor."""

import json

import pytest

from repro.errors import SimulatedCrashError
from repro.store.snapshot import SnapshotStore
from repro.webcom.faults import CrashPointInjector, CrashPointPlan


def test_save_load_roundtrip(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    path = store.save({"a": 1, "nested": {"b": [1, 2]}}, wal_lsn=7)
    assert path.name == "snapshot-0000000001.json"
    loaded = store.load_latest()
    assert loaded.state == {"a": 1, "nested": {"b": [1, 2]}}
    assert loaded.wal_lsn == 7
    assert loaded.seq == 1
    assert store.skipped == 0


def test_latest_wins_and_retention_prunes(tmp_path):
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    for i in range(4):
        store.save({"i": i}, wal_lsn=i * 10)
    assert store.load_latest().state == {"i": 3}
    names = sorted(p.name for p in (tmp_path / "snaps").iterdir())
    assert names == ["snapshot-0000000003.json", "snapshot-0000000004.json"]


def test_corrupt_latest_falls_back(tmp_path):
    store = SnapshotStore(tmp_path / "snaps", keep=3)
    store.save({"i": 0}, wal_lsn=0)
    newest = store.save({"i": 1}, wal_lsn=5)
    doc = json.loads(newest.read_text())
    doc["state"]["i"] = 999  # state no longer matches the checksum
    newest.write_text(json.dumps(doc))
    loaded = store.load_latest()
    assert loaded.state == {"i": 0}
    assert store.skipped == 1


def test_unparseable_latest_falls_back(tmp_path):
    store = SnapshotStore(tmp_path / "snaps", keep=3)
    store.save({"i": 0}, wal_lsn=0)
    newest = store.save({"i": 1}, wal_lsn=5)
    newest.write_text('{"half a docum')
    assert store.load_latest().state == {"i": 0}


def test_retained_floor_is_oldest_valid(tmp_path):
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    store.save({"i": 0}, wal_lsn=3)
    store.save({"i": 1}, wal_lsn=9)
    assert store.retained_floor() == 3
    # corrupt the older one: the floor moves up to the newest valid
    older = tmp_path / "snaps" / "snapshot-0000000001.json"
    older.write_text("junk")
    assert store.retained_floor() == 9


def test_no_snapshots(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    assert store.load_latest() is None
    assert store.retained_floor() is None


@pytest.mark.parametrize("site", ["snapshot.begin", "snapshot.tmp_partial",
                                  "snapshot.tmp_written"])
def test_crash_before_rename_leaves_previous_snapshot(tmp_path, site):
    clean = SnapshotStore(tmp_path / "snaps")
    clean.save({"i": 0}, wal_lsn=0)
    injector = CrashPointInjector(CrashPointPlan.kill_at(site))
    store = SnapshotStore(tmp_path / "snaps", crash=injector.reached)
    with pytest.raises(SimulatedCrashError):
        store.save({"i": 1}, wal_lsn=5)
    assert clean.load_latest().state == {"i": 0}


def test_crash_after_rename_keeps_new_snapshot(tmp_path):
    injector = CrashPointInjector(CrashPointPlan.kill_at("snapshot.renamed"))
    store = SnapshotStore(tmp_path / "snaps", crash=injector.reached)
    with pytest.raises(SimulatedCrashError):
        store.save({"i": 1}, wal_lsn=5)
    assert SnapshotStore(tmp_path / "snaps").load_latest().state == {"i": 1}


def test_half_written_tmp_is_never_loaded_and_gets_pruned(tmp_path):
    injector = CrashPointInjector(
        CrashPointPlan.kill_at("snapshot.tmp_partial"))
    store = SnapshotStore(tmp_path / "snaps", crash=injector.reached)
    with pytest.raises(SimulatedCrashError):
        store.save({"i": 1}, wal_lsn=5)
    assert list((tmp_path / "snaps").glob("*.json.tmp"))
    clean = SnapshotStore(tmp_path / "snaps")
    assert clean.load_latest() is None
    clean.save({"i": 2}, wal_lsn=9)  # save prunes stale tmps
    assert not list((tmp_path / "snaps").glob("*.json.tmp"))

"""Checked-in shrunk recovery fixtures replay to their pinned verdicts.

Each JSON file under ``cases/`` describes a byte-level on-disk scenario
(WAL records, injected damage, snapshot documents) plus the recovery
verdict it must produce.  A fixture that stops matching means the recovery
contract regressed: acknowledged history silently dropped, damage silently
accepted, or a fallback path broken.
"""

import json
from pathlib import Path

import pytest

from repro.store.harness import replay_recovery_case

CASES_DIR = Path(__file__).parent / "cases"
CASE_FILES = sorted(CASES_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def test_fixture_directory_is_populated():
    assert len(CASE_FILES) >= 3


@pytest.mark.parametrize("path", CASE_FILES, ids=lambda p: p.stem)
def test_fixture_replays_to_its_pinned_verdict(path):
    result = replay_recovery_case(_load(path))
    assert result["ok"], (f"{result['name']}: expected "
                          f"{result['expected']}, observed "
                          f"{result['observed']}")


def test_midlog_fixture_pins_the_refusal():
    """The mid-log damage fixture must keep *refusing* (CorruptLogError),
    never degrade into silent truncation."""
    result = replay_recovery_case(
        _load(CASES_DIR / "midlog_corruption_refused.json"))
    assert result["observed"]["error"] == "CorruptLogError"


def test_fallback_fixture_pins_the_skip_count():
    result = replay_recovery_case(
        _load(CASES_DIR / "corrupt_snapshot_fallback.json"))
    assert result["observed"]["skipped_snapshots"] == 1
    assert result["observed"]["state"] == {"gen": 1}

"""The write-ahead log: append/reopen, torn tails, mid-log corruption."""

import pytest

from repro.errors import CorruptLogError, SimulatedCrashError, StoreError
from repro.store.wal import (HEADER_SIZE, WriteAheadLog, encode_header,
                             encode_record, scan_records)
from repro.webcom.faults import CrashPointInjector, CrashPointPlan


def _open(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path / "wal.log", **kwargs).open()


class TestAppendReopen:
    def test_append_returns_consecutive_lsns(self, tmp_path):
        wal = _open(tmp_path)
        assert wal.append({"kind": "a"}) == 0
        assert wal.append({"kind": "b"}) == 1
        assert wal.next_lsn == 2

    def test_reopen_replays_exact_payloads(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"kind": "x", "n": 1})
        wal.append({"kind": "y", "text": "héllo\nworld"})
        wal.close()
        again = _open(tmp_path)
        assert again.records() == [(0, {"kind": "x", "n": 1}),
                                   (1, {"kind": "y", "text": "héllo\nworld"})]
        assert again.truncated_bytes == 0

    def test_append_on_closed_log_raises(self, tmp_path):
        wal = _open(tmp_path)
        wal.close()
        with pytest.raises(StoreError):
            wal.append({"kind": "late"})

    def test_empty_file_is_reinitialised(self, tmp_path):
        (tmp_path / "wal.log").write_bytes(b"")
        wal = _open(tmp_path)
        assert wal.records() == []
        assert wal.base_lsn == 0


class TestTornTail:
    def test_half_record_is_truncated(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"kind": "keep"})
        wal.close()
        path = tmp_path / "wal.log"
        record = encode_record({"kind": "torn"})
        path.write_bytes(path.read_bytes() + record[:len(record) // 2])
        again = _open(tmp_path)
        assert [p for _l, p in again.records()] == [{"kind": "keep"}]
        assert again.truncated_bytes > 0
        # the truncation is physical: a further reopen is clean
        again.append({"kind": "next"})
        again.close()
        final = _open(tmp_path)
        assert [p["kind"] for _l, p in final.records()] == ["keep", "next"]
        assert final.truncated_bytes == 0

    def test_bitflipped_last_record_is_truncated(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"kind": "keep"})
        wal.append({"kind": "doomed"})
        wal.close()
        path = tmp_path / "wal.log"
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        again = _open(tmp_path)
        assert [p["kind"] for _l, p in again.records()] == ["keep"]

    def test_torn_header_restarts_empty(self, tmp_path):
        (tmp_path / "wal.log").write_bytes(encode_header(0)[:7])
        wal = _open(tmp_path)
        assert wal.records() == []
        assert wal.truncated_bytes == 7


class TestMidLogCorruption:
    def test_flip_before_valid_record_raises(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"kind": "first"})
        wal.append({"kind": "second"})
        wal.close()
        path = tmp_path / "wal.log"
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE + 10] ^= 0xFF  # inside the first record's body
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptLogError) as err:
            _open(tmp_path)
        assert err.value.reason == "checksum"
        assert err.value.offset == HEADER_SIZE

    def test_corrupt_header_with_valid_records_raises(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"kind": "survivor"})
        wal.close()
        path = tmp_path / "wal.log"
        data = bytearray(path.read_bytes())
        data[3] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptLogError) as err:
            _open(tmp_path)
        assert err.value.reason == "header"

    def test_scan_records_reports_area_offsets(self):
        good = encode_record({"kind": "ok"})
        bad = bytearray(encode_record({"kind": "bad"}))
        bad[-1] ^= 0xFF
        with pytest.raises(CorruptLogError) as err:
            scan_records(bytes(bad) + good, path="x", area_offset=100)
        assert err.value.offset == 100


class TestCompaction:
    def test_compact_drops_covered_records(self, tmp_path):
        wal = _open(tmp_path)
        for i in range(5):
            wal.append({"i": i})
        assert wal.compact(3) == 3
        assert wal.base_lsn == 3
        assert wal.records() == [(3, {"i": 3}), (4, {"i": 4})]
        wal.append({"i": 5})
        wal.close()
        again = _open(tmp_path)
        assert again.base_lsn == 3
        assert [l for l, _p in again.records()] == [3, 4, 5]

    def test_compact_below_base_is_noop(self, tmp_path):
        wal = _open(tmp_path)
        wal.append({"i": 0})
        assert wal.compact(0) == 0

    def test_crash_before_rename_keeps_original(self, tmp_path):
        injector = CrashPointInjector(CrashPointPlan.kill_at("wal.compact.tmp"))
        wal = _open(tmp_path, crash=injector.reached)
        for i in range(4):
            wal.append({"i": i})
        with pytest.raises(SimulatedCrashError):
            wal.compact(2)
        wal.close()
        again = _open(tmp_path)  # also removes the stale .tmp
        assert again.base_lsn == 0
        assert len(again) == 4
        assert not (tmp_path / "wal.log.tmp").exists()

    def test_crash_after_rename_keeps_compacted(self, tmp_path):
        injector = CrashPointInjector(
            CrashPointPlan.kill_at("wal.compact.renamed"))
        wal = _open(tmp_path, crash=injector.reached)
        for i in range(4):
            wal.append({"i": i})
        with pytest.raises(SimulatedCrashError):
            wal.compact(2)
        again = _open(tmp_path)
        assert again.base_lsn == 2
        assert [l for l, _p in again.records()] == [2, 3]


class TestAppendCrashSites:
    @pytest.mark.parametrize("site", ["wal.append.begin", "wal.append.header",
                                      "wal.append.body"])
    def test_crash_before_sync_loses_only_inflight(self, tmp_path, site):
        injector = CrashPointInjector(CrashPointPlan.kill_at(site, hit=2))
        wal = _open(tmp_path, crash=injector.reached)
        wal.append({"kind": "acked"})
        with pytest.raises(SimulatedCrashError):
            wal.append({"kind": "torn"})
        wal.close()
        again = _open(tmp_path)
        assert [p["kind"] for _l, p in again.records()] == ["acked"]

    def test_crash_at_synced_preserves_record(self, tmp_path):
        injector = CrashPointInjector(
            CrashPointPlan.kill_at("wal.append.synced", hit=2))
        wal = _open(tmp_path, crash=injector.reached)
        wal.append({"kind": "acked"})
        with pytest.raises(SimulatedCrashError):
            wal.append({"kind": "durable_unacked"})
        wal.close()
        again = _open(tmp_path)
        assert [p["kind"] for _l, p in again.records()] == \
            ["acked", "durable_unacked"]

"""The durable store facade, component restores and the full node."""

import pytest

from repro.errors import WebComError
from repro.keynote.credential import Credential
from repro.middleware.ejb import EJBServer
from repro.rbac.diff import PolicyDelta, delta_from_dict, delta_to_dict
from repro.rbac.model import Assignment, Grant
from repro.store.durable import (DurablePolicyNode, DurableStore,
                                 restore_checkpoint, restore_keycom)
from repro.store.harness import (DOMAIN_A, KEYCOM_DOMAIN, _recover_node,
                                 apply_op)
from repro.webcom.failover import GraphCheckpoint
from repro.webcom.keycom import PolicyUpdateRequest

POLICY = ('Authorizer: POLICY\nLicensees: "Kroot"\n'
          'Conditions: app_domain=="db";')


def _credential(key: str) -> str:
    return Credential.build(authorizer="Kroot", licensees=f'"{key}"',
                            conditions='app_domain=="db"').to_text()


class TestDurableStore:
    def test_append_and_reopen(self, tmp_path):
        store = DurableStore(tmp_path / "node")
        store.open()
        store.append("rbac.grant", domain="D", role="R",
                     object_type="O", permission="read")
        store.close()
        again = DurableStore(tmp_path / "node")
        recovered = again.open()
        assert recovered.tail == [{"kind": "rbac.grant", "domain": "D",
                                   "role": "R", "object_type": "O",
                                   "permission": "read"}]
        again.close()

    def test_snapshot_compacts_to_retained_floor(self, tmp_path):
        store = DurableStore(tmp_path / "node", keep=2)
        store.open()
        for i in range(6):
            store.append("checkpoint.mark", graph="g", node_id=f"n{i}",
                         result=i)
        store.snapshot({"gen": 1})  # covers lsn 6
        store.append("checkpoint.mark", graph="g", node_id="n6", result=6)
        store.snapshot({"gen": 2})  # covers lsn 7; floor stays at 6
        assert store.wal.base_lsn == 6
        recovered = DurableStore(tmp_path / "node").open()
        assert recovered.state == {"gen": 2}
        assert recovered.tail == []


class TestGraphCheckpointRoundTrip:
    def test_to_from_dict(self):
        checkpoint = GraphCheckpoint("payroll")
        checkpoint.mark("n1", 17)
        checkpoint.mark("n2", "seventeen")
        data = checkpoint.to_dict()
        assert data == {"graph_name": "payroll",
                        "completed": {"n1": 17, "n2": "seventeen"}}
        again = GraphCheckpoint.from_dict(data)
        assert again.graph_name == "payroll"
        assert again.completed == checkpoint.completed
        assert len(again) == 2

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(WebComError):
            GraphCheckpoint.from_dict({"graph_name": "x"})
        with pytest.raises(WebComError):
            GraphCheckpoint.from_dict({"graph_name": 3, "completed": {}})

    def test_marks_journal_ahead_and_restore(self, tmp_path):
        store = DurableStore(tmp_path / "node")
        recovered = store.open()
        checkpoint = restore_checkpoint(recovered, "wf", store=store)
        checkpoint.mark("a", 1)
        checkpoint.mark("b", 2)
        store.close()
        again = DurableStore(tmp_path / "node")
        restored = restore_checkpoint(again.open(), "wf", store=again)
        assert restored.completed == {"a": 1, "b": 2}
        again.close()


class TestKeyComReplayDedup:
    def _node(self, root):
        return _recover_node(root)

    def test_duplicate_records_do_not_double_apply(self, tmp_path):
        """A WAL holding the same keycom.apply request id twice (a client
        retry that crashed between append and ack) must apply once."""
        store = DurableStore(tmp_path / "node")
        recovered = store.open()
        for _ in range(2):  # the duplicate pair
            store.append("keycom.apply", user="Alice",
                         domain=KEYCOM_DOMAIN, role="Clerk",
                         request_id="r1")
        store.close()
        again = DurableStore(tmp_path / "node")
        middleware = EJBServer("hostC", "ejb")
        from repro.keynote.api import KeyNoteSession
        service = restore_keycom(again.open(), middleware,
                                 KeyNoteSession(verify_signatures=False),
                                 store=again)
        assert service.duplicates == 1
        assert service.applied_ids == {"r1"}
        assignments = middleware.extract_rbac().sorted_assignments()
        assert assignments == [Assignment("Alice", KEYCOM_DOMAIN, "Clerk")]
        again.close()

    def test_dedup_holds_across_restarts(self, tmp_path):
        node = self._node(tmp_path / "node")
        apply_op(node, ("policy", 'Authorizer: POLICY\n'
                                  'Licensees: "Kadmin"\n'
                                  'Conditions: app_domain=="WebCom";'))
        request = PolicyUpdateRequest(
            user="Bob", user_key="Kadmin", domain=KEYCOM_DOMAIN,
            role="Manager", credentials=(), request_id="r42")
        assert node.keycom.submit(request)
        node.close()
        again = self._node(tmp_path / "node")
        assert again.keycom.submit(request)  # redelivery after restart
        assert again.keycom.duplicates == 1
        members = [a for a in again.keycom.middleware.extract_rbac()
                   .sorted_assignments() if a.user == "Bob"]
        assert len(members) == 1
        again.close()


class TestRecoveryFlushesCaches:
    def test_decision_cache_cannot_survive_a_crash(self, tmp_path):
        """Pre-crash ALLOWs cached by the compliance checker must not be
        served after recovery: the recovered session starts with no
        compiled checker and re-derives the (revoked) verdict."""
        node = _recover_node(tmp_path / "node")
        node.session.add_policy(POLICY)
        credential = _credential("Ku1")
        node.session.add_credential(credential)
        attributes = {"app_domain": "db"}
        assert bool(node.session.query(attributes, ["Ku1"]))
        assert node.session._checker is not None  # warm decision cache
        assert node.session.state_fingerprint()[2] >= 0
        node.session.revoke_credential(Credential.from_text(credential))
        node.close()  # crash: the warm checker dies with the process
        again = _recover_node(tmp_path / "node")
        assert again.session._checker is None  # cold on arrival
        assert again.session.state_fingerprint()[2] == -1
        assert not bool(again.session.query(attributes, ["Ku1"]))
        again.close()

    def test_mediation_cache_fingerprint_is_cold_after_recovery(self,
                                                                tmp_path):
        """The stack mediation cache keys entries by the TM session's
        state fingerprint; a recovered session reports the cold-checker
        fingerprint, so no pre-crash entry could ever validate."""
        node = _recover_node(tmp_path / "node")
        node.session.add_policy(POLICY)
        node.session.add_credential(_credential("Ku2"))
        bool(node.session.query({"app_domain": "db"}, ["Ku2"]))
        warm = node.session.state_fingerprint()
        node.close()
        again = _recover_node(tmp_path / "node")
        assert again.session.state_fingerprint() != warm
        assert again.session.state_fingerprint()[2] == -1
        again.close()


class TestFullNode:
    def test_state_roundtrip_through_snapshot_and_tail(self, tmp_path):
        node = _recover_node(tmp_path / "node")
        node.session.add_policy(POLICY)
        node.session.add_credential(_credential("Ku1"), expires_at=50.0)
        node.local_policy.grant("Finance", "Clerk", "SalariesDB", "write")
        node.local_policy.assign("Alice", "Finance", "Clerk")
        node.engine.apply_delta(PolicyDelta(
            added_grants=frozenset({Grant(DOMAIN_A, "Clerk",
                                          "ReportSvc", "read")}),
            added_assignments=frozenset({Assignment("Bob", DOMAIN_A,
                                                    "Clerk")})),
            update_id="u1")
        node.snapshot()
        node.local_policy.assign("Carol", "Finance", "Clerk")
        node.checkpoints["payroll"].mark("n1", 7)
        before = node.state()
        node.close()
        again = _recover_node(tmp_path / "node")
        assert again.state() == before
        assert again.recovered.used_snapshot()
        # the replica middleware converged to the authoritative slice
        for name in again.engine.applied_versions:
            assert (again.engine.replica_digest(name)
                    == again.engine.expected_digest(name))
        again.close()

    def test_delta_dict_roundtrip(self):
        delta = PolicyDelta(
            added_grants=frozenset({Grant("D", "R", "O", "p")}),
            removed_grants=frozenset({Grant("D", "R2", "O", "q")}),
            added_assignments=frozenset({Assignment("u", "D", "R")}),
            removed_assignments=frozenset({Assignment("v", "D", "R2")}))
        assert delta_from_dict(delta_to_dict(delta)) == delta

    def test_delta_from_dict_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            delta_from_dict({"added_grants": [["only", "three", "cols"]]})

    def test_engine_vectors_survive_restart_for_reconcile(self, tmp_path):
        node = _recover_node(tmp_path / "node")
        node.engine.apply_delta(PolicyDelta(
            added_assignments=frozenset({Assignment("Dave", DOMAIN_A,
                                                    "Clerk")})))
        vectors = dict(node.engine.applied_versions)
        assert any(v > 0 for v in vectors.values())
        node.close()
        again = _recover_node(tmp_path / "node")
        assert again.engine.applied_versions == vectors
        assert again.engine.reconcile().converged
        again.close()

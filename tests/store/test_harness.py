"""The durability sweep: determinism, crash coverage and the gate."""

import pytest

from repro.store.harness import (build_ops, run_durability_sweep,
                                 run_workload, verify_recovery)
from repro.webcom.faults import CrashPointInjector, CrashPointPlan

EXPECTED_SITES = {
    "wal.append.begin", "wal.append.header", "wal.append.body",
    "wal.append.synced", "wal.compact.begin", "wal.compact.tmp",
    "wal.compact.renamed", "snapshot.begin", "snapshot.tmp_partial",
    "snapshot.tmp_written", "snapshot.renamed",
}


def test_ops_are_deterministic_per_seed():
    assert build_ops(3, 24) == build_ops(3, 24)
    assert build_ops(3, 24) != build_ops(4, 24)


def test_workload_visits_every_write_site(tmp_path):
    profiler = CrashPointInjector()
    _acked, in_flight, crashed = run_workload(tmp_path / "w", 0, 24,
                                              crash=profiler.reached)
    assert not crashed and in_flight is None
    assert set(profiler.counts) == EXPECTED_SITES


def test_crash_and_verify_single_site(tmp_path):
    plan = CrashPointPlan.kill_at("wal.append.body", hit=5)
    injector = CrashPointInjector(plan)
    root = tmp_path / "crash"
    acked, in_flight, crashed = run_workload(root, 1, 24,
                                             crash=injector.reached)
    assert crashed and in_flight is not None
    outcome = verify_recovery(root, acked, in_flight, tmp_path / "models")
    assert outcome["matched"] == "acked"  # body crash: record not durable
    assert not outcome["acked_loss"]
    assert outcome["oracle_disagreements"] == []
    assert outcome["cold_caches"]


def test_crash_at_synced_keeps_inflight(tmp_path):
    plan = CrashPointPlan.kill_at("wal.append.synced", hit=4)
    injector = CrashPointInjector(plan)
    root = tmp_path / "crash"
    acked, in_flight, crashed = run_workload(root, 2, 24,
                                             crash=injector.reached)
    assert crashed
    outcome = verify_recovery(root, acked, in_flight, tmp_path / "models")
    assert outcome["matched"] in ("acked", "acked+inflight")
    assert not outcome["acked_loss"]


def test_small_sweep_is_clean():
    report = run_durability_sweep(seeds=2, ops=18)
    assert report["report"] == "DURABILITY_6"
    assert report["ok"]
    assert report["crashes"] == report["crash_runs"] > 0
    assert report["acked_loss_total"] == 0
    assert report["oracle_disagreements_total"] == 0
    assert set(report["write_sites"]) == EXPECTED_SITES


@pytest.mark.slow
def test_full_sweep_every_site_ten_seeds():
    """The CI gate's shape: >= 10 seeds, every write site killed."""
    report = run_durability_sweep(seeds=10, ops=24)
    assert report["ok"]
    assert report["seeds"] == 10
    for site, stats in report["sites"].items():
        assert stats["crashes"] == stats["runs"] == 10, site
    # the durable-but-unacknowledged path is actually exercised
    survived = sum(s["matched_inflight"] for s in report["sites"].values())
    assert survived > 0

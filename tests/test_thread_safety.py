"""Concurrency-safety regressions for the shared decision caches.

The serve daemon exposes the authorisation plane to many concurrent
callers, and test harnesses drive checkers from worker threads; the
process-wide signature cache, the compliance checker's decision cache and
the stack's mediation / last-known-good stores are all mutated on those
paths.  These tests hammer each cache from racing threads (lost-update /
torn-counter regressions) and pin the *stale-fresh confusion* property
deterministically: a decision computed against state that changed
mid-mediation must never be served as fresh afterwards.
"""

import threading

from repro.crypto.keys import KeyPair
from repro.crypto.keystore import Keystore, SignatureVerificationCache
from repro.keynote.api import KeyNoteSession
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.webcom.stack import AuthorisationStack, MediationRequest


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestSignatureCacheThreads:
    def test_concurrent_verifies_and_clears_keep_counters_consistent(self):
        cache = SignatureVerificationCache()
        pair = KeyPair.generate("Kthread")
        messages = [f"message-{n}".encode() for n in range(4)]
        signatures = [pair.private.sign(m) for m in messages]
        rounds = 200
        errors = []

        def verifier():
            try:
                for n in range(rounds):
                    m = messages[n % len(messages)]
                    s = signatures[n % len(signatures)]
                    assert cache.verify(pair.public, m, s)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def clearer():
            for _ in range(20):
                cache.clear()

        _run_threads([verifier] * 4 + [clearer])
        assert not errors
        stats = cache.stats()
        # Every verify call was counted exactly once as a hit or a miss
        # since the last clear; no torn counter, no lost update.
        assert stats["hits"] + stats["misses"] <= 4 * rounds
        assert stats["entries"] <= len(messages)
        assert cache.verify(pair.public, messages[0], signatures[0])


class TestComplianceCheckerThreads:
    def test_queries_racing_mutations_never_corrupt_the_checker(self):
        keystore = Keystore()
        for name in ("Kroot", "Kworker"):
            keystore.create(name)
        policy = Credential.from_text(
            'Authorizer: POLICY\nLicensees: "Kroot"\n'
            'Conditions: app_domain=="db";')
        grant = Credential.build(
            "Kroot", '"Kworker"', 'app_domain=="db"',
        ).sign(keystore.pair("Kroot").private)
        checker = ComplianceChecker(assertions=[policy], keystore=keystore)
        attributes = {"app_domain": "db", "_cur_time": "0.0"}
        errors = []

        def querier():
            try:
                for _ in range(150):
                    value = checker.query(attributes, ("Kworker",))
                    assert value in ("true", "false")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def churner():
            for _ in range(30):
                checker.add_assertion(grant)
                checker.revoke_assertion(grant)

        _run_threads([querier] * 4 + [churner])
        assert not errors
        # The churner's last act was a revoke: the worker's delegation is
        # gone, and no stale cached ALLOW may answer for it.
        assert checker.query(attributes, ("Kworker",)) == "false"
        checker.add_assertion(grant)
        assert checker.query(attributes, ("Kworker",)) == "true"


class _RevokingOS:
    """An L0 backend that revokes a TM credential *during* mediation.

    The stack consults layers top-down (L2 before L0), so by the time this
    check runs the TM layer has already allowed — the decision being
    assembled is stale the moment it is produced.
    """

    platform = "revoking-test-os"

    def __init__(self, session, credential):
        self.session = session
        self.credential = credential
        self.fired = False

    def check(self, user, os_object, access):
        if not self.fired:
            self.fired = True
            assert self.session.revoke_credential(self.credential)
        return True


class TestStackStaleFreshConfusion:
    def _stack(self):
        keystore = Keystore()
        keystore.create("Kroot")
        keystore.create("Kuser")
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(
            'Authorizer: POLICY\nLicensees: "Kroot"\n'
            'Conditions: app_domain=="WebCom";')
        grant = session.add_credential(Credential.build(
            "Kroot", '"Kuser"', 'app_domain=="WebCom"',
        ).sign(keystore.pair("Kroot").private))
        stack = AuthorisationStack(cache_ttl=60.0)
        stack.plug_trust_management(session)
        return session, grant, stack

    def test_mid_mediation_revocation_is_never_served_as_fresh(self):
        session, grant, stack = self._stack()
        stack.plug_os(_RevokingOS(session, grant))
        request = MediationRequest(
            user="alice", user_key="Kuser", object_type="graph",
            operation="run", attributes={"app_domain": "WebCom"})
        # First mediation: TM allows (credential still present), then the
        # OS layer revokes it mid-flight.  The ALLOW it produced reflects
        # pre-revocation state.
        assert stack.mediate(request).allowed
        # The stale ALLOW must not satisfy the next mediation from cache:
        # its stored fingerprint predates the revocation.
        second = stack.mediate(request)
        assert not second.allowed
        assert stack.cache_hits == 0

    def test_mid_mediation_revocation_on_the_selective_eviction_path(
            self, monkeypatch):
        """PR 10 regression: dependency-indexed invalidation narrows what a
        revocation evicts — but a revocation landing *mid-mediation* must
        still never let the dependent decision be cached as fresh, while a
        non-dependent principal's warm entry survives the same churn."""
        # Pin the selective mode on even under the generation-flush ablation.
        monkeypatch.setenv("REPRO_INCREMENTAL_INVALIDATION", "1")
        keystore = Keystore()
        keystore.create("Kroot")
        keystore.create("Kuser")
        keystore.create("Kother")
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(
            'Authorizer: POLICY\nLicensees: "Kroot"\n'
            'Conditions: app_domain=="WebCom";')
        # Bob's credential first: his fixpoint short-circuits at max value
        # before ever reading Alice's, so his decision does not depend on it.
        session.add_credential(Credential.build(
            "Kroot", '"Kother"', 'app_domain=="WebCom"',
        ).sign(keystore.pair("Kroot").private))
        grant = session.add_credential(Credential.build(
            "Kroot", '"Kuser"', 'app_domain=="WebCom"',
        ).sign(keystore.pair("Kroot").private))
        stack = AuthorisationStack(cache_ttl=60.0)
        stack.plug_trust_management(session)
        alice = MediationRequest(
            user="alice", user_key="Kuser", object_type="graph",
            operation="run", attributes={"app_domain": "WebCom"})
        bob = MediationRequest(
            user="bob", user_key="Kother", object_type="graph",
            operation="run", attributes={"app_domain": "WebCom"})

        class _AliceTriggeredOS:
            platform = "revoking-test-os"
            fired = False

            def check(self, user, os_object, access):
                if user == "alice" and not self.fired:
                    self.fired = True
                    assert session.revoke_credential(grant)
                return True

        stack.plug_os(_AliceTriggeredOS())
        assert stack.mediate(bob).allowed      # warm the independent entry
        assert stack.mediate(alice).allowed    # revoked mid-flight
        # The stale ALLOW was never stored: the checker's dependency index
        # evicted Alice's decision, so the store-time fingerprint refused it.
        assert not stack.mediate(alice).allowed
        # Bob's entry was NOT collateral damage of Alice's revocation — it
        # serves a hit, counted as having survived the churn.
        hits = stack.cache_hits
        assert stack.mediate(bob).allowed
        assert stack.cache_hits == hits + 1
        assert stack.cache_survived_churn >= 1

    def test_threads_mediating_against_revocations_end_consistent(self):
        session, grant, stack = self._stack()
        request = MediationRequest(
            user="alice", user_key="Kuser", object_type="graph",
            operation="run", attributes={"app_domain": "WebCom"})
        errors = []

        def mediator():
            try:
                for _ in range(100):
                    stack.mediate(request)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def revoker():
            for _ in range(20):
                session.revoke_credential(grant)
                session.add_credential(grant)

        _run_threads([mediator] * 4 + [revoker])
        assert not errors
        # The revoker's final state has the credential present; after the
        # dust settles the stack must agree — and once it is revoked for
        # good, deny without ever consulting a stale cache entry.
        assert stack.mediate(request).allowed
        session.revoke_credential(grant)
        assert not stack.mediate(request).allowed

"""Tests for the RBAC policy relations and decisions.

The fixture mirrors the paper's Figure 1 exactly.
"""

import pytest

from repro.errors import UnknownRoleError
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def salaries() -> RBACPolicy:
    """The Figure-1 policy: Salaries Database."""
    return RBACPolicy.from_relations(
        "salaries",
        grants=[
            ("Finance", "Clerk", "SalariesDB", "write"),
            ("Finance", "Manager", "SalariesDB", "read"),
            ("Finance", "Manager", "SalariesDB", "write"),
            ("Sales", "Manager", "SalariesDB", "read"),
        ],
        assignments=[
            ("Alice", "Finance", "Clerk"),
            ("Bob", "Finance", "Manager"),
            ("Claire", "Sales", "Manager"),
            ("Dave", "Sales", "Assistant"),
            ("Elaine", "Sales", "Manager"),
        ],
    )


class TestRelations:
    def test_counts(self, salaries):
        assert len(salaries.grants) == 4
        assert len(salaries.assignments) == 5
        assert len(salaries) == 9

    def test_vocabulary(self, salaries):
        assert salaries.domains() == {"Finance", "Sales"}
        assert salaries.users() == {"Alice", "Bob", "Claire", "Dave", "Elaine"}
        assert salaries.object_types() == {"SalariesDB"}
        assert DomainRole("Sales", "Assistant") in salaries.domain_roles()

    def test_sorted_deterministic(self, salaries):
        assert salaries.sorted_grants() == salaries.sorted_grants()
        assert salaries.sorted_assignments() == sorted(salaries.assignments)

    def test_grant_idempotent(self, salaries):
        before = len(salaries.grants)
        salaries.grant("Finance", "Clerk", "SalariesDB", "write")
        assert len(salaries.grants) == before


class TestDecisions:
    def test_figure1_narrative(self, salaries):
        # Clerk Alice writes but cannot read.
        assert salaries.check_access("Alice", "SalariesDB", "write")
        assert not salaries.check_access("Alice", "SalariesDB", "read")
        # Finance Manager Bob reads and writes.
        assert salaries.check_access("Bob", "SalariesDB", "read")
        assert salaries.check_access("Bob", "SalariesDB", "write")
        # Sales Managers Claire and Elaine read only.
        for user in ("Claire", "Elaine"):
            assert salaries.check_access(user, "SalariesDB", "read")
            assert not salaries.check_access(user, "SalariesDB", "write")
        # Assistant Dave has no access.
        assert not salaries.check_access("Dave", "SalariesDB", "read")
        assert not salaries.check_access("Dave", "SalariesDB", "write")

    def test_unknown_user_denied(self, salaries):
        assert not salaries.check_access("Mallory", "SalariesDB", "read")

    def test_unknown_object_type_denied(self, salaries):
        assert not salaries.check_access("Bob", "OtherDB", "read")

    def test_role_has_permission(self, salaries):
        assert salaries.role_has_permission("Finance", "Manager", "SalariesDB", "read")
        assert not salaries.role_has_permission("Sales", "Manager", "SalariesDB", "write")

    def test_authorised_users(self, salaries):
        assert salaries.authorised_users("SalariesDB", "write") == {"Alice", "Bob"}
        assert salaries.authorised_users("SalariesDB", "read") == {"Bob", "Claire", "Elaine"}

    def test_members_and_roles(self, salaries):
        assert salaries.members_of("Sales", "Manager") == {"Claire", "Elaine"}
        assert salaries.roles_of("Bob") == {DomainRole("Finance", "Manager")}


class TestMutation:
    def test_revoke_grant(self, salaries):
        assert salaries.revoke_grant("Finance", "Clerk", "SalariesDB", "write")
        assert not salaries.check_access("Alice", "SalariesDB", "write")
        assert not salaries.revoke_grant("Finance", "Clerk", "SalariesDB", "write")

    def test_unassign(self, salaries):
        assert salaries.unassign("Bob", "Finance", "Manager")
        assert not salaries.check_access("Bob", "SalariesDB", "read")
        assert not salaries.unassign("Bob", "Finance", "Manager")

    def test_revoke_user_removes_all_assignments(self, salaries):
        salaries.assign("Claire", "Finance", "Clerk")
        assert salaries.revoke_user("Claire") == 2
        assert "Claire" not in salaries.users()
        # Grants untouched — the paper's point about RBAC administration.
        assert len(salaries.grants) == 4

    def test_require_role(self, salaries):
        salaries.require_role("Finance", "Clerk")
        with pytest.raises(UnknownRoleError):
            salaries.require_role("Finance", "Intern")


class TestCopyEquality:
    def test_copy_is_equal_but_independent(self, salaries):
        clone = salaries.copy()
        assert clone == salaries
        clone.grant("Sales", "Assistant", "SalariesDB", "read")
        assert clone != salaries

    def test_equality_ignores_name(self, salaries):
        clone = salaries.copy(name="renamed")
        assert clone == salaries

    def test_is_empty(self):
        assert RBACPolicy().is_empty()

    def test_iteration_yields_all_facts(self, salaries):
        assert len(list(salaries)) == 9


class TestPresentation:
    def test_has_permission_table_contains_rows(self, salaries):
        table = salaries.has_permission_table()
        assert "Finance" in table
        assert "SalariesDB" in table
        assert len(table.splitlines()) == 2 + 4

    def test_user_assignment_table(self, salaries):
        table = salaries.user_assignment_table()
        assert "Elaine" in table
        assert len(table.splitlines()) == 2 + 5

    def test_repr(self, salaries):
        assert "grants=4" in repr(salaries)

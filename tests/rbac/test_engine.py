"""Tests for the compiled bitset RBAC engine (PR 8).

Every query is cross-checked three ways: compiled engine, the retained
set-based :class:`RBACPolicy` path, and the naive PR 5
:class:`RBACOracle` — under deterministic churn sequences including
hierarchy edge removal, which forces a closure rebuild.
"""

import random

import pytest

from repro.errors import HierarchyError
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.engine import RBACEngine
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Assignment, DomainRole, Grant
from repro.rbac.policy import RBACPolicy, compiled_default

USERS = [f"u{i}" for i in range(12)]
ROLES = [DomainRole("d", f"r{i}") for i in range(8)]
OBJECTS = ["invoice", "ledger", "queue"]
PERMS = ["read", "write"]


def _assert_policy_agrees(policy: RBACPolicy) -> None:
    """Compiled, set-based, and oracle answers must coincide everywhere."""
    oracle = RBACOracle.from_policy(policy)
    plain = policy.copy()
    plain.compiled = False
    for user in USERS:
        compiled_roles = {(dr.domain, dr.role) for dr in policy.roles_of(user)}
        assert compiled_roles == oracle.roles_of(user)
        assert policy.roles_of(user) == plain.roles_of(user)
        for obj in OBJECTS:
            for perm in PERMS:
                got = policy.check_access(user, obj, perm)
                assert got == oracle.check_access(user, obj, perm)
                assert got == plain.check_access(user, obj, perm)
    for role in ROLES:
        assert (policy.permissions_of(role.domain, role.role)
                == plain.permissions_of(role.domain, role.role))
        assert (policy.members_of(role.domain, role.role)
                == oracle.members_of(role.domain, role.role))
    for obj in OBJECTS:
        for perm in PERMS:
            assert (policy.authorised_users(obj, perm)
                    == oracle.authorised_users(obj, perm))


def _churn_policy(seed: int, steps: int = 60) -> RBACPolicy:
    """Drive a compiled policy through seeded mutations, checking the
    three-way agreement after every step."""
    rng = random.Random(seed)
    policy = RBACPolicy("churn", compiled=True)
    # Touch the engine early so every later mutation exercises the
    # incremental delta paths rather than a fresh build.
    policy.check_access(USERS[0], OBJECTS[0], PERMS[0])
    for _ in range(steps):
        action = rng.randrange(7)
        role = rng.choice(ROLES)
        if action == 0:
            policy.grant(role.domain, role.role, rng.choice(OBJECTS),
                         rng.choice(PERMS))
        elif action == 1:
            policy.revoke_grant(role.domain, role.role, rng.choice(OBJECTS),
                                rng.choice(PERMS))
        elif action == 2:
            policy.assign(rng.choice(USERS), role.domain, role.role)
        elif action == 3:
            policy.unassign(rng.choice(USERS), role.domain, role.role)
        elif action == 4:
            policy.revoke_user(rng.choice(USERS))
        elif action == 5:
            senior, junior = rng.sample(ROLES, 2)
            try:
                policy.hierarchy.add_inheritance(senior, junior)
            except HierarchyError:
                pass
        else:
            senior, junior = rng.sample(ROLES, 2)
            policy.hierarchy.remove_inheritance(senior, junior)
        _assert_policy_agrees(policy)
    return policy


class TestChurnEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_three_way_agreement_under_churn(self, seed):
        policy = _churn_policy(seed)
        stats = policy.engine_stats()
        assert stats is not None
        assert stats["builds"] == 1  # mutations were deltas, not rebuilds
        assert stats["deltas"] > 0

    def test_hierarchy_removal_is_an_edge_delta_not_a_rebuild(self):
        policy = RBACPolicy("h", compiled=True)
        senior, junior = ROLES[0], ROLES[1]
        policy.hierarchy.add_inheritance(senior, junior)
        policy.grant(junior.domain, junior.role, "invoice", "read")
        policy.assign("alice", senior.domain, senior.role)
        assert policy.check_access("alice", "invoice", "read")
        stats = policy.engine_stats()
        rebuilds = stats["hierarchy_rebuilds"]
        edge_deltas = stats["edge_deltas"]
        policy.hierarchy.remove_inheritance(senior, junior)
        # The revoked inheritance takes effect...
        assert not policy.check_access("alice", "invoice", "read")
        stats = policy.engine_stats()
        # ...through delta replay of the hierarchy log, not a full resync.
        assert stats["hierarchy_rebuilds"] == rebuilds
        assert stats["edge_deltas"] == edge_deltas + 1


class TestBatchAPI:
    def test_check_access_many_matches_singles(self):
        policy = _churn_policy(seed=4, steps=25)
        requests = [(u, o, p) for u in USERS for o in OBJECTS for p in PERMS]
        batch = policy.check_access_many(requests)
        assert batch == [policy.check_access(u, o, p)
                         for u, o, p in requests]
        plain = policy.copy()
        plain.compiled = False
        assert batch == plain.check_access_many(requests)

    def test_check_access_many_without_hierarchy(self):
        policy = RBACPolicy("flat", compiled=True)
        policy.hierarchy.add_inheritance(ROLES[0], ROLES[1])
        policy.grant("d", "r1", "invoice", "read")
        policy.assign("alice", "d", "r0")
        assert policy.check_access_many([("alice", "invoice", "read")]) \
            == [True]
        assert policy.check_access_many([("alice", "invoice", "read")],
                                        use_hierarchy=False) == [False]


class TestEngineDirect:
    def test_from_relations_matches_incremental(self):
        grants = [Grant("d", "r0", "invoice", "read"),
                  Grant("d", "r1", "ledger", "write")]
        assignments = [Assignment("alice", "d", "r0"),
                       Assignment("bob", "d", "r1")]
        hierarchy = RoleHierarchy()
        hierarchy.add_inheritance(ROLES[0], ROLES[1])
        bulk = RBACEngine.from_relations(grants, assignments, hierarchy)
        incremental = RBACEngine()
        for grant in grants:
            incremental.add_grant(grant)
        for assignment in assignments:
            incremental.add_assignment(assignment)
        incremental.sync_hierarchy(hierarchy)
        for user in ("alice", "bob", "nobody"):
            for obj in ("invoice", "ledger"):
                for perm in ("read", "write"):
                    assert (bulk.check_access(user, obj, perm)
                            == incremental.check_access(user, obj, perm))
        assert bulk.authorised_users("ledger", "write") \
            == incremental.authorised_users("ledger", "write") \
            == {"alice", "bob"}

    def test_unknown_names_deny_cleanly(self):
        engine = RBACEngine()
        assert not engine.check_access("ghost", "invoice", "read")
        assert engine.roles_of("ghost") == set()
        assert engine.permissions_of("d", "missing") == set()
        assert engine.authorised_users("invoice", "read") == set()

    def test_external_hierarchy_mutation_is_picked_up(self):
        hierarchy = RoleHierarchy()
        engine = RBACEngine.from_relations(
            [Grant("d", "r1", "invoice", "read")],
            [Assignment("alice", "d", "r0")], hierarchy)
        assert not engine.check_access("alice", "invoice", "read")
        hierarchy.add_inheritance(ROLES[0], ROLES[1])
        engine.sync_hierarchy(hierarchy)
        assert engine.check_access("alice", "invoice", "read")


class TestCompiledFlag:
    def test_env_var_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_ENGINE", "0")
        assert compiled_default() is False
        assert RBACPolicy("p").engine() is None
        monkeypatch.setenv("REPRO_COMPILED_ENGINE", "1")
        assert compiled_default() is True

    def test_copy_preserves_flag_and_rebuilds_lazily(self):
        policy = RBACPolicy("p", compiled=True)
        policy.grant("d", "r0", "invoice", "read")
        policy.assign("alice", "d", "r0")
        assert policy.check_access("alice", "invoice", "read")
        clone = policy.copy()
        assert clone.compiled
        assert clone.engine_stats() is None  # engine not yet built
        assert clone.check_access("alice", "invoice", "read")
        assert clone.engine_stats() is not None

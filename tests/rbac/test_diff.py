"""Tests for policy diff/merge (the maintenance substrate)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rbac.diff import diff_policies, merge_policies
from repro.rbac.policy import RBACPolicy


def small_policy(grants, assignments) -> RBACPolicy:
    return RBACPolicy.from_relations("p", grants, assignments)


class TestDiff:
    def test_identical_policies_empty_delta(self):
        a = small_policy([("D", "r", "T", "read")], [("u", "D", "r")])
        b = a.copy()
        delta = diff_policies(a, b)
        assert delta.is_empty()
        assert len(delta) == 0

    def test_added_and_removed(self):
        old = small_policy([("D", "r", "T", "read")], [("u", "D", "r")])
        new = small_policy([("D", "r", "T", "write")], [("u", "D", "r"), ("v", "D", "r")])
        delta = diff_policies(old, new)
        assert len(delta.added_grants) == 1
        assert len(delta.removed_grants) == 1
        assert len(delta.added_assignments) == 1
        assert not delta.removed_assignments

    def test_apply_transforms_old_into_new(self):
        old = small_policy([("D", "r", "T", "read")], [("u", "D", "r")])
        new = small_policy([("D", "r", "T", "write"), ("E", "s", "T", "read")],
                           [("v", "E", "s")])
        delta = diff_policies(old, new)
        assert delta.apply_to(old.copy()) == new

    def test_inverse_round_trip(self):
        old = small_policy([("D", "r", "T", "read")], [("u", "D", "r")])
        new = small_policy([], [("v", "D", "r")])
        delta = diff_policies(old, new)
        restored = delta.inverse().apply_to(delta.apply_to(old.copy()))
        assert restored == old

    def test_summary_format(self):
        old = small_policy([], [])
        new = small_policy([("D", "r", "T", "read")], [])
        assert diff_policies(old, new).summary() == "+1g -0g +0a -0a"


# Hypothesis strategies over small vocabularies so collisions happen.
_D = st.sampled_from(["D1", "D2"])
_R = st.sampled_from(["r1", "r2"])
_T = st.sampled_from(["T1", "T2"])
_P = st.sampled_from(["read", "write"])
_U = st.sampled_from(["u1", "u2", "u3"])

grants_strategy = st.lists(st.tuples(_D, _R, _T, _P), max_size=8)
assignments_strategy = st.lists(st.tuples(_U, _D, _R), max_size=8)


class TestDiffProperties:
    @settings(max_examples=60, deadline=None)
    @given(grants_strategy, assignments_strategy, grants_strategy,
           assignments_strategy)
    def test_apply_diff_reaches_target(self, g1, a1, g2, a2):
        old = small_policy(g1, a1)
        new = small_policy(g2, a2)
        assert diff_policies(old, new).apply_to(old.copy()) == new

    @settings(max_examples=60, deadline=None)
    @given(grants_strategy, assignments_strategy)
    def test_self_diff_is_empty(self, g, a):
        p = small_policy(g, a)
        assert diff_policies(p, p.copy()).is_empty()


class TestMerge:
    def test_union_semantics(self):
        a = small_policy([("D", "r", "T", "read")], [("u", "D", "r")])
        b = small_policy([("E", "s", "T", "write")], [("v", "E", "s")])
        merged, conflicts = merge_policies("global", [a, b])
        assert len(merged.grants) == 2
        assert len(merged.assignments) == 2
        assert conflicts == []

    def test_divergence_reported(self):
        a = RBACPolicy("sysA")
        a.grant("D", "r", "T", "read")
        b = RBACPolicy("sysB")
        b.grant("D", "r", "T", "read")
        b.grant("D", "r", "T", "write")
        merged, conflicts = merge_policies("global", [a, b])
        assert len(conflicts) == 1
        assert conflicts[0].key == ("D", "r", "T")
        assert conflicts[0].permissions_by_source["sysA"] == frozenset({"read"})
        assert "sysA" in str(conflicts[0])

    def test_merge_of_nothing_is_empty(self):
        merged, conflicts = merge_policies("global", [])
        assert merged.is_empty()
        assert conflicts == []

    @settings(max_examples=40, deadline=None)
    @given(grants_strategy, assignments_strategy, grants_strategy,
           assignments_strategy)
    def test_merge_contains_both_sources(self, g1, a1, g2, a2):
        a = small_policy(g1, a1)
        b = small_policy(g2, a2)
        merged, _ = merge_policies("global", [a, b])
        assert a.grants <= merged.grants
        assert b.grants <= merged.grants
        assert a.assignments <= merged.assignments

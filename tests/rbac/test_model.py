"""Tests for RBAC value types."""

import pytest

from repro.rbac.model import Assignment, DomainRole, Grant


class TestDomainRole:
    def test_str(self):
        assert str(DomainRole("Finance", "Clerk")) == "Finance/Clerk"

    def test_parse_round_trip(self):
        dr = DomainRole("Finance", "Clerk")
        assert DomainRole.parse(str(dr)) == dr

    def test_parse_rejects_missing_separator(self):
        with pytest.raises(ValueError):
            DomainRole.parse("no-separator")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            DomainRole("", "Clerk")
        with pytest.raises(ValueError):
            DomainRole("Finance", "")

    def test_ordering_is_total(self):
        roles = [DomainRole("B", "x"), DomainRole("A", "y"), DomainRole("A", "x")]
        assert sorted(roles) == [DomainRole("A", "x"), DomainRole("A", "y"),
                                 DomainRole("B", "x")]

    def test_hashable(self):
        assert len({DomainRole("A", "r"), DomainRole("A", "r")}) == 1


class TestGrant:
    def test_domain_role_property(self):
        g = Grant("Finance", "Clerk", "SalariesDB", "write")
        assert g.domain_role == DomainRole("Finance", "Clerk")

    def test_str(self):
        g = Grant("Finance", "Clerk", "SalariesDB", "write")
        assert "Finance/Clerk" in str(g)
        assert "write" in str(g)

    def test_rejects_empty_fields(self):
        with pytest.raises(ValueError):
            Grant("Finance", "Clerk", "", "write")
        with pytest.raises(ValueError):
            Grant("Finance", "Clerk", "SalariesDB", "")


class TestAssignment:
    def test_domain_role_property(self):
        a = Assignment("Alice", "Finance", "Clerk")
        assert a.domain_role == DomainRole("Finance", "Clerk")

    def test_str(self):
        assert str(Assignment("Alice", "Finance", "Clerk")) == "Alice in Finance/Clerk"

    def test_rejects_empty_user(self):
        with pytest.raises(ValueError):
            Assignment("", "Finance", "Clerk")

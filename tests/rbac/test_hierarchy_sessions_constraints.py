"""Tests for role hierarchies, sessions and separation-of-duty constraints."""

import pytest

from repro.errors import ConstraintViolationError, HierarchyError, SessionError
from repro.rbac.constraints import ConstraintSet, SoDConstraint
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy
from repro.rbac.sessions import SessionManager

FM = DomainRole("Finance", "Manager")
FC = DomainRole("Finance", "Clerk")
FA = DomainRole("Finance", "Auditor")


@pytest.fixture
def policy() -> RBACPolicy:
    p = RBACPolicy("h")
    p.grant("Finance", "Clerk", "SalariesDB", "write")
    p.grant("Finance", "Manager", "SalariesDB", "read")
    p.grant("Finance", "Auditor", "SalariesDB", "audit")
    p.assign("Bob", "Finance", "Manager")
    p.assign("Alice", "Finance", "Clerk")
    p.hierarchy.add_inheritance(FM, FC)
    return p


class TestRoleHierarchy:
    def test_juniors_transitive(self):
        h = RoleHierarchy()
        a, b, c = DomainRole("D", "a"), DomainRole("D", "b"), DomainRole("D", "c")
        h.add_inheritance(a, b)
        h.add_inheritance(b, c)
        assert h.juniors(a) == {b, c}
        assert h.seniors(c) == {a, b}

    def test_dominates(self):
        h = RoleHierarchy()
        h.add_inheritance(FM, FC)
        assert h.dominates(FM, FC)
        assert h.dominates(FM, FM)
        assert not h.dominates(FC, FM)

    def test_self_loop_rejected(self):
        h = RoleHierarchy()
        with pytest.raises(HierarchyError):
            h.add_inheritance(FM, FM)

    def test_cycle_rejected(self):
        h = RoleHierarchy()
        h.add_inheritance(FM, FC)
        with pytest.raises(HierarchyError):
            h.add_inheritance(FC, FM)

    def test_remove_edge(self):
        h = RoleHierarchy()
        h.add_inheritance(FM, FC)
        assert h.remove_inheritance(FM, FC)
        assert not h.remove_inheritance(FM, FC)
        assert h.is_empty()

    def test_edges_deterministic(self):
        h = RoleHierarchy()
        h.add_inheritance(FM, FC)
        h.add_inheritance(FM, FA)
        assert list(h.edges()) == [(FM, FA), (FM, FC)]

    def test_copy_independent(self):
        h = RoleHierarchy()
        h.add_inheritance(FM, FC)
        clone = h.copy()
        clone.add_inheritance(FM, FA)
        assert h != clone


class TestHierarchyInPolicy:
    def test_senior_inherits_permissions(self, policy):
        # Manager inherits Clerk's write via the hierarchy.
        assert policy.check_access("Bob", "SalariesDB", "write")
        assert policy.check_access("Bob", "SalariesDB", "read")

    def test_hierarchy_can_be_bypassed(self, policy):
        assert not policy.check_access("Bob", "SalariesDB", "write",
                                       use_hierarchy=False)

    def test_members_of_includes_seniors(self, policy):
        assert policy.members_of("Finance", "Clerk") == {"Alice", "Bob"}
        assert policy.members_of("Finance", "Clerk", use_hierarchy=False) == {"Alice"}


class TestSessions:
    def test_activate_and_check(self, policy):
        mgr = SessionManager(policy)
        sess = mgr.open_session("Bob", roles=(("Finance", "Manager"),))
        assert sess.check_access("SalariesDB", "read")
        # Hierarchy applies inside the session too.
        assert sess.check_access("SalariesDB", "write")

    def test_no_roles_no_access(self, policy):
        sess = SessionManager(policy).open_session("Bob")
        assert not sess.check_access("SalariesDB", "read")

    def test_cannot_activate_unassigned_role(self, policy):
        sess = SessionManager(policy).open_session("Alice")
        with pytest.raises(SessionError):
            sess.activate("Finance", "Manager")

    def test_can_activate_inherited_role(self, policy):
        # Bob holds Manager which dominates Clerk, so Clerk is activatable.
        sess = SessionManager(policy).open_session("Bob")
        sess.activate("Finance", "Clerk")
        assert sess.check_access("SalariesDB", "write")
        assert not sess.check_access("SalariesDB", "read")

    def test_deactivate(self, policy):
        mgr = SessionManager(policy)
        sess = mgr.open_session("Bob", roles=(("Finance", "Manager"),))
        sess.deactivate("Finance", "Manager")
        assert not sess.check_access("SalariesDB", "read")

    def test_closed_session_rejects_operations(self, policy):
        mgr = SessionManager(policy)
        sess = mgr.open_session("Bob")
        sess.close()
        with pytest.raises(SessionError):
            sess.check_access("SalariesDB", "read")
        with pytest.raises(SessionError):
            sess.activate("Finance", "Manager")

    def test_manager_lookup_and_close_all(self, policy):
        mgr = SessionManager(policy)
        s1 = mgr.open_session("Bob")
        s2 = mgr.open_session("Alice")
        assert mgr.get(s1.session_id) is s1
        assert len(mgr.open_sessions()) == 2
        assert mgr.close_all("Bob") == 1
        assert len(mgr.open_sessions()) == 1
        assert mgr.close_all() == 1
        with pytest.raises(SessionError):
            mgr.get("sess-999")
        assert s2.closed


class TestSoDConstraints:
    def test_static_violation_detection(self, policy):
        policy.assign("Alice", "Finance", "Auditor")
        sod = SoDConstraint.exclusive(
            "clerk-auditor", [("Finance", "Clerk"), ("Finance", "Auditor")])
        assert sod.violations(policy) == ["Alice"]

    def test_static_ok_when_disjoint(self, policy):
        sod = SoDConstraint.exclusive(
            "clerk-auditor", [("Finance", "Clerk"), ("Finance", "Auditor")])
        assert sod.violations(policy) == []

    def test_dynamic_constraint_blocks_activation(self, policy):
        policy.assign("Alice", "Finance", "Auditor")
        sod = SoDConstraint.exclusive(
            "dyn", [("Finance", "Clerk"), ("Finance", "Auditor")], dynamic=True)
        mgr = SessionManager(policy, constraints=(sod,))
        sess = mgr.open_session("Alice", roles=(("Finance", "Clerk"),))
        with pytest.raises(ConstraintViolationError):
            sess.activate("Finance", "Auditor")

    def test_dynamic_constraint_ignored_statically(self, policy):
        policy.assign("Alice", "Finance", "Auditor")
        sod = SoDConstraint.exclusive(
            "dyn", [("Finance", "Clerk"), ("Finance", "Auditor")], dynamic=True)
        assert sod.violations(policy) == []

    def test_cardinality_validation(self):
        with pytest.raises(ValueError):
            SoDConstraint("bad", frozenset({FC, FA}), cardinality=0)
        with pytest.raises(ValueError):
            SoDConstraint("bad", frozenset({FC}))

    def test_cardinality_two(self, policy):
        policy.assign("Alice", "Finance", "Auditor")
        sod = SoDConstraint("loose", frozenset({FC, FA, FM}), cardinality=2)
        assert sod.violations(policy) == []

    def test_constraint_set_report(self, policy):
        policy.assign("Alice", "Finance", "Auditor")
        cs = ConstraintSet()
        cs.add(SoDConstraint.exclusive(
            "clerk-auditor", [("Finance", "Clerk"), ("Finance", "Auditor")]))
        cs.add(SoDConstraint.exclusive(
            "dyn-only", [("Finance", "Clerk"), ("Finance", "Manager")], dynamic=True))
        report = cs.check(policy)
        assert report == {"clerk-auditor": ["Alice"]}
        assert len(cs.dynamic_constraints()) == 1

    def test_str_representation(self):
        sod = SoDConstraint.exclusive(
            "x", [("Finance", "Clerk"), ("Finance", "Auditor")])
        assert "static" in str(sod)

"""Tests for RBAC policy JSON serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy
from repro.rbac.serialize import (
    policy_from_dict,
    policy_from_json,
    policy_to_dict,
    policy_to_json,
)


def sample_policy() -> RBACPolicy:
    policy = RBACPolicy.from_relations(
        "sample",
        grants=[("Finance", "Clerk", "SalariesDB", "write"),
                ("Finance", "Manager", "SalariesDB", "read")],
        assignments=[("Alice", "Finance", "Clerk")])
    policy.hierarchy.add_inheritance(DomainRole("Finance", "Manager"),
                                     DomainRole("Finance", "Clerk"))
    return policy


class TestRoundTrip:
    def test_json_round_trip(self):
        policy = sample_policy()
        restored = policy_from_json(policy_to_json(policy))
        assert restored == policy
        assert restored.name == "sample"
        assert restored.hierarchy == policy.hierarchy

    def test_hierarchy_effective_after_round_trip(self):
        restored = policy_from_json(policy_to_json(sample_policy()))
        # Manager inherits Clerk's write through the restored hierarchy.
        restored.assign("Bob", "Finance", "Manager")
        assert restored.check_access("Bob", "SalariesDB", "write")

    def test_dict_round_trip(self):
        policy = sample_policy()
        assert policy_from_dict(policy_to_dict(policy)) == policy

    def test_stable_output(self):
        assert policy_to_json(sample_policy()) == policy_to_json(sample_policy())

    def test_empty_policy(self):
        assert policy_from_json(policy_to_json(RBACPolicy("e"))).is_empty()


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(ValueError):
            policy_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(ValueError):
            policy_from_json("[1, 2]")

    def test_unknown_format_version(self):
        with pytest.raises(ValueError):
            policy_from_dict({"format": 99})


_D = st.sampled_from(["D1", "D2"])
_R = st.sampled_from(["r1", "r2"])


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(_D, _R, st.sampled_from(["T1", "T2"]),
                              st.sampled_from(["read", "write"])),
                    max_size=8),
           st.lists(st.tuples(st.sampled_from(["u1", "u2"]), _D, _R),
                    max_size=6))
    def test_any_policy_round_trips(self, grants, assignments):
        policy = RBACPolicy.from_relations("p", grants, assignments)
        assert policy_from_json(policy_to_json(policy)) == policy

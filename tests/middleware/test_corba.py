"""Tests for the CORBA ORB simulator."""

import pytest

from repro.errors import DeploymentError, UnknownComponentError
from repro.middleware.corba import CorbaOrb
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def orb() -> CorbaOrb:
    o = CorbaOrb(machine="hosty", orb_name="orb1")
    o.register_interface("SalariesDB", operations=("read", "write"))
    o.declare_role("Manager")
    o.declare_role("Clerk")
    o.grant_right("Manager", "SalariesDB", "read")
    o.grant_right("Clerk", "SalariesDB", "write")
    o.assign_role("Manager", "Claire")
    o.assign_role("Clerk", "Alice")
    return o


class TestInterfaces:
    def test_repository_id(self, orb):
        iface = orb.interfaces()[0]
        assert iface.repository_id == "IDL:SalariesDB:1.0"

    def test_duplicate_interface_rejected(self, orb):
        with pytest.raises(DeploymentError):
            orb.register_interface("SalariesDB", operations=("x",))

    def test_interface_needs_operations(self, orb):
        with pytest.raises(DeploymentError):
            orb.register_interface("Empty", operations=())

    def test_bind_and_resolve(self, orb):
        ref = orb.bind_object("SalariesDB")
        assert ref.ior.startswith("IOR:")
        assert orb.resolve(ref.ior) is ref

    def test_bind_unknown_interface(self, orb):
        with pytest.raises(UnknownComponentError):
            orb.bind_object("Nope")

    def test_resolve_dangling_ior(self, orb):
        with pytest.raises(UnknownComponentError):
            orb.resolve("IOR:deadbeef")

    def test_distinct_iors(self, orb):
        assert orb.bind_object("SalariesDB").ior != orb.bind_object(
            "SalariesDB").ior


class TestPolicy:
    def test_grant_requires_declared_role(self, orb):
        with pytest.raises(DeploymentError):
            orb.grant_right("Intern", "SalariesDB", "read")

    def test_grant_requires_known_operation(self, orb):
        with pytest.raises(DeploymentError):
            orb.grant_right("Manager", "SalariesDB", "drop")

    def test_assign_requires_declared_role(self, orb):
        with pytest.raises(DeploymentError):
            orb.assign_role("Intern", "X")

    def test_users(self, orb):
        assert orb.users() == {"Claire", "Alice"}


class TestMediation:
    def test_decisions(self, orb):
        assert orb.invoke("Claire", "SalariesDB", "read")
        assert not orb.invoke("Claire", "SalariesDB", "write")
        assert orb.invoke("Alice", "SalariesDB", "write")
        assert not orb.invoke("Mallory", "SalariesDB", "read")


class TestRBACInterpretation:
    def test_domain_is_machine_slash_orb(self, orb):
        assert orb.domain == "hosty/orb1"

    def test_extract(self, orb):
        policy = orb.extract_rbac()
        assert Grant("hosty/orb1", "Manager", "SalariesDB", "read") in policy.grants
        assert Assignment("Claire", "hosty/orb1", "Manager") in policy.assignments

    def test_round_trip(self, orb):
        policy = orb.extract_rbac()
        clone = CorbaOrb(machine="hosty", orb_name="orb1")
        clone.apply_rbac(policy)
        assert clone.extract_rbac() == policy

    def test_apply_foreign_domain_rejected(self, orb):
        with pytest.raises(UnknownComponentError):
            orb.apply_grant(Grant("other/orb", "R", "X", "op"))
        with pytest.raises(UnknownComponentError):
            orb.apply_assignment(Assignment("u", "other/orb", "R"))

    def test_apply_creates_interface_and_role(self):
        fresh = CorbaOrb(machine="m", orb_name="o")
        fresh.apply_rbac(RBACPolicy.from_relations(
            "p", grants=[("m/o", "R", "NewIface", "op")],
            assignments=[("u", "m/o", "R")]))
        assert fresh.invoke("u", "NewIface", "op")

    def test_components(self, orb):
        comps = orb.components()
        assert len(comps) == 1
        assert comps[0].component_id == "hosty/orb1#SalariesDB"

"""Tests for the EJB server simulator."""

import pytest

from repro.errors import DeploymentError, UnknownComponentError
from repro.middleware.ejb import EJBServer
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def server() -> EJBServer:
    s = EJBServer(host="hostx", server_name="ejb1")
    s.deploy_container("Payroll")
    s.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    s.declare_role("Payroll", "Clerk")
    s.declare_role("Payroll", "Manager")
    s.add_method_permission("Payroll", "SalariesDB", "Clerk", "write")
    s.add_method_permission("Payroll", "SalariesDB", "Manager", "read")
    s.add_method_permission("Payroll", "SalariesDB", "Manager", "write")
    s.add_user("Alice")
    s.add_user("Bob")
    s.assign_role("Payroll", "Clerk", "Alice")
    s.assign_role("Payroll", "Manager", "Bob")
    return s


class TestDeployment:
    def test_duplicate_container_rejected(self, server):
        with pytest.raises(DeploymentError):
            server.deploy_container("Payroll")

    def test_duplicate_bean_rejected(self, server):
        with pytest.raises(DeploymentError):
            server.deploy_bean("Payroll", "SalariesDB", methods=("x",))

    def test_bean_needs_methods(self, server):
        with pytest.raises(DeploymentError):
            server.deploy_bean("Payroll", "Empty", methods=())

    def test_unknown_container(self, server):
        with pytest.raises(UnknownComponentError):
            server.deploy_bean("Nope", "B", methods=("m",))

    def test_method_permission_validation(self, server):
        with pytest.raises(DeploymentError):
            server.add_method_permission("Payroll", "SalariesDB",
                                         "Intern", "read")
        with pytest.raises(DeploymentError):
            server.add_method_permission("Payroll", "SalariesDB",
                                         "Clerk", "no_such_method")
        with pytest.raises(UnknownComponentError):
            server.add_method_permission("Payroll", "NoBean", "Clerk", "read")

    def test_assign_requires_registered_user(self, server):
        with pytest.raises(DeploymentError):
            server.assign_role("Payroll", "Clerk", "Mallory")

    def test_assign_requires_declared_role(self, server):
        with pytest.raises(DeploymentError):
            server.assign_role("Payroll", "Intern", "Alice")


class TestMediation:
    def test_clerk_writes_only(self, server):
        assert server.invoke("Alice", "SalariesDB", "write")
        assert not server.invoke("Alice", "SalariesDB", "read")

    def test_manager_reads_and_writes(self, server):
        assert server.invoke("Bob", "SalariesDB", "read")
        assert server.invoke("Bob", "SalariesDB", "write")

    def test_unknown_user_denied(self, server):
        assert not server.invoke("Mallory", "SalariesDB", "read")

    def test_unknown_bean_denied(self, server):
        assert not server.invoke("Bob", "NoBean", "read")

    def test_unassign_revokes(self, server):
        assert server.unassign_role("Payroll", "Clerk", "Alice")
        assert not server.invoke("Alice", "SalariesDB", "write")
        assert not server.unassign_role("Payroll", "Clerk", "Alice")


class TestInterrogation:
    def test_components_list(self, server):
        comps = server.components()
        assert len(comps) == 1
        assert comps[0].object_type == "SalariesDB"
        assert comps[0].operations == ("read", "write")
        assert comps[0].component_id == "hostx:ejb1/Payroll#SalariesDB"

    def test_domain_mapping(self, server):
        assert server.domain_of("Payroll") == "hostx:ejb1/Payroll"
        assert server.container_of_domain("hostx:ejb1/Payroll") == "Payroll"
        with pytest.raises(UnknownComponentError):
            server.container_of_domain("other:server/X")


class TestRBACInterpretation:
    def test_extract_rbac(self, server):
        policy = server.extract_rbac()
        domain = "hostx:ejb1/Payroll"
        assert Grant(domain, "Clerk", "SalariesDB", "write") in policy.grants
        assert Grant(domain, "Manager", "SalariesDB", "read") in policy.grants
        assert Assignment("Alice", domain, "Clerk") in policy.assignments
        assert len(policy.grants) == 3
        assert len(policy.assignments) == 2

    def test_extract_apply_round_trip(self, server):
        policy = server.extract_rbac()
        clone = EJBServer(host="hostx", server_name="ejb1")
        clone.apply_rbac(policy)
        assert clone.extract_rbac() == policy

    def test_apply_creates_missing_structure(self):
        fresh = EJBServer(host="h", server_name="s")
        policy = RBACPolicy.from_relations(
            "p",
            grants=[("h:s/C", "R", "Obj", "op")],
            assignments=[("u", "h:s/C", "R")])
        fresh.apply_rbac(policy)
        assert fresh.invoke("u", "Obj", "op")

    def test_apply_foreign_domain_rejected(self):
        fresh = EJBServer(host="h", server_name="s")
        with pytest.raises(UnknownComponentError):
            fresh.apply_grant(Grant("elsewhere:x/C", "R", "Obj", "op"))

    def test_mediation_matches_rbac_semantics(self, server):
        policy = server.extract_rbac()
        for user in ("Alice", "Bob"):
            for op in ("read", "write"):
                assert (server.invoke(user, "SalariesDB", op)
                        == policy.check_access(user, "SalariesDB", op))

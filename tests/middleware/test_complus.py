"""Tests for the COM+ catalogue simulator."""

import pytest

from repro.errors import (
    DeploymentError,
    UnknownComponentError,
    UnknownPrincipalError,
)
from repro.middleware.complus import ComPlusCatalogue, _nearest_com_permission
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def windows() -> WindowsSecurity:
    w = WindowsSecurity()
    w.add_domain("FINANCE")
    w.add_user("FINANCE", "alice")
    w.add_user("FINANCE", "bob")
    return w


@pytest.fixture
def catalogue(windows) -> ComPlusCatalogue:
    c = ComPlusCatalogue("machine-y", windows)
    c.create_application("Payroll", nt_domain="FINANCE")
    c.register_component("Payroll", "SalariesDB")
    c.declare_role("Payroll", "Clerk")
    c.declare_role("Payroll", "Manager")
    c.grant_permission("Payroll", "Clerk", "SalariesDB", "Access")
    c.grant_permission("Payroll", "Manager", "SalariesDB", "Access")
    c.grant_permission("Payroll", "Manager", "SalariesDB", "Launch")
    c.add_role_member("Payroll", "Clerk", "FINANCE", "alice")
    c.add_role_member("Payroll", "Manager", "FINANCE", "bob")
    return c


class TestCatalogue:
    def test_duplicate_application_rejected(self, catalogue):
        with pytest.raises(DeploymentError):
            catalogue.create_application("Payroll", nt_domain="FINANCE")

    def test_application_needs_known_domain(self, catalogue):
        with pytest.raises(DeploymentError):
            catalogue.create_application("X", nt_domain="NOPE")

    def test_clsid_deterministic_and_unique(self, catalogue, windows):
        other = ComPlusCatalogue("machine-y", windows)
        other.create_application("Payroll", nt_domain="FINANCE")
        comp = other.register_component("Payroll", "SalariesDB")
        assert comp.clsid == catalogue._application(
            "Payroll").components["SalariesDB"].clsid
        comp2 = other.register_component("Payroll", "OtherDB")
        assert comp.clsid != comp2.clsid

    def test_duplicate_component_rejected(self, catalogue):
        with pytest.raises(DeploymentError):
            catalogue.register_component("Payroll", "SalariesDB")

    def test_permission_vocabulary_enforced(self, catalogue):
        with pytest.raises(DeploymentError):
            catalogue.grant_permission("Payroll", "Clerk", "SalariesDB",
                                       "read")

    def test_role_member_requires_windows_principal(self, catalogue):
        with pytest.raises(UnknownPrincipalError):
            catalogue.add_role_member("Payroll", "Clerk", "FINANCE",
                                      "mallory")

    def test_unknown_application(self, catalogue):
        with pytest.raises(UnknownComponentError):
            catalogue.register_component("Nope", "X")

    def test_remove_role_member(self, catalogue):
        assert catalogue.remove_role_member("Payroll", "Clerk", "FINANCE",
                                            "alice")
        assert not catalogue.invoke("FINANCE\\alice", "SalariesDB", "Access")
        assert not catalogue.remove_role_member("Payroll", "Clerk", "FINANCE",
                                                "alice")

    def test_applications_sorted(self, catalogue):
        assert catalogue.applications() == ["Payroll"]


class TestMediation:
    def test_clerk_access_only(self, catalogue):
        assert catalogue.invoke("FINANCE\\alice", "SalariesDB", "Access")
        assert not catalogue.invoke("FINANCE\\alice", "SalariesDB", "Launch")

    def test_manager_launch(self, catalogue):
        assert catalogue.invoke("FINANCE\\bob", "SalariesDB", "Launch")

    def test_unknown_principal_denied(self, catalogue):
        assert not catalogue.invoke("FINANCE\\mallory", "SalariesDB", "Access")

    def test_unqualified_user_denied(self, catalogue):
        assert not catalogue.invoke("alice", "SalariesDB", "Access")


class TestRBACInterpretation:
    def test_extract_uses_nt_domain(self, catalogue):
        policy = catalogue.extract_rbac()
        assert Grant("FINANCE", "Clerk", "SalariesDB", "Access") in policy.grants
        assert Assignment("alice", "FINANCE", "Clerk") in policy.assignments

    def test_round_trip(self, catalogue, windows):
        policy = catalogue.extract_rbac()
        clone = ComPlusCatalogue("machine-z", WindowsSecurity())
        clone.apply_rbac(policy)
        assert clone.extract_rbac() == policy

    def test_apply_creates_windows_principals(self):
        w = WindowsSecurity()
        cat = ComPlusCatalogue("m", w)
        cat.apply_rbac(RBACPolicy.from_relations(
            "p", grants=[("NEWDOM", "R", "Comp", "Access")],
            assignments=[("u", "NEWDOM", "R")]))
        assert w.has_user("NEWDOM\\u")
        assert cat.invoke("NEWDOM\\u", "Comp", "Access")

    def test_apply_maps_foreign_permissions(self):
        cat = ComPlusCatalogue("m", WindowsSecurity())
        cat.apply_grant(Grant("D", "R", "Comp", "read"))
        policy = cat.extract_rbac()
        assert Grant("D", "R", "Comp", "Access") in policy.grants

    def test_components_carry_com_permissions(self, catalogue):
        comps = catalogue.components()
        assert len(comps) == 1
        assert comps[0].operations == ("Launch", "Access", "RunAs")


class TestRunAsIdentity:
    def test_default_is_launcher(self, catalogue):
        assert catalogue.effective_identity("Payroll", "FINANCE\\bob") \
            == "FINANCE\\bob"

    def test_configured_run_as(self, catalogue):
        catalogue.set_run_as("Payroll", "FINANCE", "alice")
        assert catalogue.effective_identity("Payroll", "FINANCE\\bob") \
            == "FINANCE\\alice"

    def test_run_as_requires_known_principal(self, catalogue):
        with pytest.raises(UnknownPrincipalError):
            catalogue.set_run_as("Payroll", "FINANCE", "ghost")

    def test_run_as_permission_gates_launch_entitlement(self, catalogue):
        catalogue.grant_permission("Payroll", "Manager", "SalariesDB",
                                   "RunAs")
        assert catalogue.invoke("FINANCE\\bob", "SalariesDB", "RunAs")
        assert not catalogue.invoke("FINANCE\\alice", "SalariesDB", "RunAs")


class TestPermissionMapping:
    @pytest.mark.parametrize("foreign,expected", [
        ("read", "Access"),
        ("write", "Access"),
        ("execute", "Launch"),
        ("launch_app", "Launch"),
        ("start", "Launch"),
        ("run_as_user", "RunAs"),
        ("Access", "Access"),
    ])
    def test_nearest_mapping(self, foreign, expected):
        assert _nearest_com_permission(foreign) == expected

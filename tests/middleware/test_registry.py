"""Tests for the middleware registry."""

import pytest

from repro.errors import UnknownComponentError
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.middleware.registry import MiddlewareRegistry


@pytest.fixture
def registry() -> MiddlewareRegistry:
    reg = MiddlewareRegistry()
    ejb = EJBServer(host="hx", server_name="s1")
    ejb.deploy_container("C")
    ejb.deploy_bean("C", "BeanA", methods=("m1",))
    orb = CorbaOrb(machine="hy", orb_name="o1")
    orb.register_interface("IfaceB", operations=("op1", "op2"))
    reg.register(ejb)
    reg.register(orb)
    return reg


class TestRegistry:
    def test_register_and_get(self, registry):
        assert registry.get("hx:s1").kind == "ejb"
        assert "hy/o1" in registry
        assert len(registry) == 2

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(EJBServer(host="hx", server_name="s1"))

    def test_get_unknown(self, registry):
        with pytest.raises(UnknownComponentError):
            registry.get("nope")

    def test_iteration_sorted_by_name(self, registry):
        assert [m.name for m in registry] == ["hx:s1", "hy/o1"]

    def test_all_components(self, registry):
        ids = {c.component_id for c in registry.all_components()}
        assert ids == {"hx:s1/C#BeanA", "hy/o1#IfaceB"}

    def test_find_component(self, registry):
        middleware, component = registry.find_component("hy/o1#IfaceB")
        assert middleware.kind == "corba"
        assert component.object_type == "IfaceB"

    def test_find_unknown_component(self, registry):
        with pytest.raises(UnknownComponentError):
            registry.find_component("nope#nothing")

    def test_extract_all(self, registry):
        policies = registry.extract_all()
        assert len(policies) == 2
        assert {p.name for p in policies} == {"ejb:hx:s1", "corba:hy/o1"}

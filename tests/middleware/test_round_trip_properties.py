"""Property tests: extract/apply round-trips across the middleware
simulators, over random policies — the invariant the whole translation
pipeline rests on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware.complus import COM_PERMISSIONS, ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.policy import RBACPolicy

_ROLES = st.sampled_from(["r1", "r2", "r3"])
_TYPES = st.sampled_from(["T1", "T2"])
_USERS = st.sampled_from(["u1", "u2", "u3"])


def ejb_policies():
    domains = st.sampled_from(["h:s/C1", "h:s/C2"])
    grants = st.lists(st.tuples(domains, _ROLES, _TYPES,
                                st.sampled_from(["read", "write"])),
                      max_size=8)
    assignments = st.lists(st.tuples(_USERS, domains, _ROLES), max_size=6)
    return st.tuples(grants, assignments)


def com_policies():
    domains = st.sampled_from(["NTD1", "NTD2"])
    grants = st.lists(st.tuples(domains, _ROLES, _TYPES,
                                st.sampled_from(COM_PERMISSIONS)),
                      max_size=8)
    assignments = st.lists(st.tuples(_USERS, domains, _ROLES), max_size=6)
    return st.tuples(grants, assignments)


def corba_policies():
    domains = st.just("m/o")
    grants = st.lists(st.tuples(domains, _ROLES, _TYPES,
                                st.sampled_from(["read", "write"])),
                      max_size=8)
    assignments = st.lists(st.tuples(_USERS, domains, _ROLES), max_size=6)
    return st.tuples(grants, assignments)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(ejb_policies())
    def test_ejb_apply_extract_identity(self, relations):
        grants, assignments = relations
        policy = RBACPolicy.from_relations("p", grants, assignments)
        server = EJBServer(host="h", server_name="s")
        server.apply_rbac(policy)
        assert server.extract_rbac() == policy

    @settings(max_examples=40, deadline=None)
    @given(com_policies())
    def test_com_apply_extract_identity(self, relations):
        grants, assignments = relations
        policy = RBACPolicy.from_relations("p", grants, assignments)
        catalogue = ComPlusCatalogue("m", WindowsSecurity())
        catalogue.apply_rbac(policy)
        assert catalogue.extract_rbac() == policy

    @settings(max_examples=40, deadline=None)
    @given(corba_policies())
    def test_corba_apply_extract_identity(self, relations):
        grants, assignments = relations
        policy = RBACPolicy.from_relations("p", grants, assignments)
        orb = CorbaOrb(machine="m", orb_name="o")
        orb.apply_rbac(policy)
        assert orb.extract_rbac() == policy

    @settings(max_examples=30, deadline=None)
    @given(ejb_policies())
    def test_mediation_agrees_with_extraction(self, relations):
        """For every (user, type, permission) in the vocabulary, the native
        decision equals the RBAC reading's decision."""
        grants, assignments = relations
        policy = RBACPolicy.from_relations("p", grants, assignments)
        server = EJBServer(host="h", server_name="s")
        server.apply_rbac(policy)
        extracted = server.extract_rbac()
        for user in ("u1", "u2", "u3"):
            for obj in ("T1", "T2"):
                for perm in ("read", "write"):
                    assert (server.invoke(user, obj, perm)
                            == extracted.check_access(user, obj, perm))

    @settings(max_examples=30, deadline=None)
    @given(ejb_policies(), ejb_policies())
    def test_apply_is_cumulative_union(self, first, second):
        """Applying two policies yields the union of their relations."""
        p1 = RBACPolicy.from_relations("a", *first)
        p2 = RBACPolicy.from_relations("b", *second)
        server = EJBServer(host="h", server_name="s")
        server.apply_rbac(p1)
        server.apply_rbac(p2)
        merged = server.extract_rbac()
        assert merged.grants == p1.grants | p2.grants
        assert merged.assignments == p1.assignments | p2.assignments

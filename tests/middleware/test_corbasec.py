"""Tests for the CORBASec required-rights model and its ORB integration."""

import pytest

from repro.errors import DeploymentError
from repro.middleware.corba import CorbaOrb
from repro.middleware.corbasec import CorbaSecPolicy, RequiredRights
from repro.rbac.model import Grant


@pytest.fixture
def policy() -> CorbaSecPolicy:
    p = CorbaSecPolicy()
    # Standard CORBASec documentation example shapes:
    p.set_required("SalariesDB", "read", {"get"})
    p.set_required("SalariesDB", "write", {"get", "set"}, combinator="all")
    p.set_required("SalariesDB", "audit", {"manage", "use"},
                   combinator="any")
    p.declare_role("Clerk")
    p.declare_role("Manager")
    p.grant_rights("Clerk", {"get"})
    p.grant_rights("Manager", {"get", "set"})
    p.assign_role("Clerk", "alice")
    p.assign_role("Manager", "bob")
    return p


class TestRequiredRights:
    def test_all_combinator(self):
        req = RequiredRights(frozenset({"get", "set"}), "all")
        assert req.satisfied_by(frozenset({"get", "set", "use"}))
        assert not req.satisfied_by(frozenset({"get"}))

    def test_any_combinator(self):
        req = RequiredRights(frozenset({"manage", "use"}), "any")
        assert req.satisfied_by(frozenset({"use"}))
        assert not req.satisfied_by(frozenset({"get"}))

    def test_unknown_right_rejected(self):
        with pytest.raises(DeploymentError):
            RequiredRights(frozenset({"fly"}))

    def test_bad_combinator_rejected(self):
        with pytest.raises(DeploymentError):
            RequiredRights(frozenset({"get"}), "most")

    def test_empty_rights_rejected(self):
        with pytest.raises(DeploymentError):
            RequiredRights(frozenset())


class TestPolicyDecisions:
    def test_clerk_reads_only(self, policy):
        assert policy.access_allowed("alice", "SalariesDB", "read")
        assert not policy.access_allowed("alice", "SalariesDB", "write")

    def test_manager_reads_and_writes(self, policy):
        assert policy.access_allowed("bob", "SalariesDB", "read")
        assert policy.access_allowed("bob", "SalariesDB", "write")

    def test_any_combinator_decision(self, policy):
        policy.declare_role("Auditor")
        policy.grant_rights("Auditor", {"use"})
        policy.assign_role("Auditor", "carol")
        assert policy.access_allowed("carol", "SalariesDB", "audit")
        assert not policy.access_allowed("bob", "SalariesDB", "audit")

    def test_unprotected_operation_closed(self, policy):
        assert not policy.access_allowed("bob", "SalariesDB", "unlisted")

    def test_rights_accumulate_across_roles(self, policy):
        policy.declare_role("Setter")
        policy.grant_rights("Setter", {"set"})
        policy.assign_role("Setter", "alice")
        # alice: get (Clerk) + set (Setter) => write now allowed.
        assert policy.access_allowed("alice", "SalariesDB", "write")

    def test_remove_member(self, policy):
        assert policy.remove_member("Clerk", "alice")
        assert not policy.access_allowed("alice", "SalariesDB", "read")
        assert not policy.remove_member("Clerk", "alice")

    def test_grant_requires_declared_role(self, policy):
        with pytest.raises(DeploymentError):
            policy.grant_rights("Intern", {"get"})
        with pytest.raises(DeploymentError):
            policy.assign_role("Intern", "x")
        with pytest.raises(DeploymentError):
            policy.grant_rights("Clerk", {"warp"})

    def test_tables_render(self, policy):
        assert "Combinator" in policy.required_rights_table()
        assert "Manager" in policy.granted_rights_table()


class TestOrbIntegration:
    @pytest.fixture
    def orb(self, policy) -> CorbaOrb:
        orb = CorbaOrb(machine="m", orb_name="o")
        orb.register_interface("SalariesDB",
                               operations=("read", "write", "audit"))
        orb.attach_corbasec(policy)
        return orb

    def test_mediation_uses_rights(self, orb):
        assert orb.invoke("alice", "SalariesDB", "read")
        assert not orb.invoke("alice", "SalariesDB", "write")
        assert orb.invoke("bob", "SalariesDB", "write")

    def test_extract_rbac_flattens_rights(self, orb):
        policy = orb.extract_rbac()
        assert Grant("m/o", "Clerk", "SalariesDB", "read") in policy.grants
        assert Grant("m/o", "Manager", "SalariesDB", "write") in policy.grants
        assert Grant("m/o", "Clerk", "SalariesDB", "write") not in policy.grants
        assert policy.members_of("m/o", "Manager") == {"bob"}

    def test_flattened_policy_matches_decisions(self, orb):
        """The flattening is faithful: RBAC decisions == rights decisions."""
        flattened = orb.extract_rbac()
        for user in ("alice", "bob"):
            for op in ("read", "write", "audit"):
                assert (flattened.check_access(user, "SalariesDB", op)
                        == orb.invoke(user, "SalariesDB", op)), (user, op)

    def test_detach_returns_to_plain_policy(self, orb):
        orb.detach_corbasec()
        assert orb.corbasec is None
        assert not orb.invoke("alice", "SalariesDB", "read")

    def test_migration_from_corbasec_orb(self, orb):
        """The Figure-9 style pipeline works from a rights-mediated ORB."""
        from repro.middleware.ejb import EJBServer
        from repro.translate.migrate import DomainMapping, migrate_policy

        target = EJBServer(host="h", server_name="s")
        migrate_policy(orb, target,
                       DomainMapping(explicit={"m/o": "h:s/Payroll"}))
        assert target.invoke("alice", "SalariesDB", "read")
        assert not target.invoke("alice", "SalariesDB", "write")

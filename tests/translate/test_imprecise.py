"""Tests for imprecise delegation ([13])."""

import pytest

from repro.crypto import Keystore
from repro.keynote.credential import Credential
from repro.translate.imprecise import ImpreciseChecker, harvest_vocabulary


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kbob", "Kalice"):
        ks.create(name)
    return ks


def assertions(keystore):
    policy = Credential.build(
        "POLICY", '"Kbob"',
        'app_domain=="WebCom" && Domain=="Finance" && Role=="Manager" '
        '&& Permission=="read"')
    delegation = Credential.build(
        "Kbob", '"Kalice"',
        'app_domain=="WebCom" && Domain=="Finance" && Role=="Manager" '
        '&& Permission=="read"').signed_by(keystore)
    return [policy, delegation]


class TestVocabulary:
    def test_harvest(self, keystore):
        vocab = harvest_vocabulary(assertions(keystore))
        assert vocab["Domain"] == {"Finance"}
        assert vocab["Role"] == {"Manager"}
        assert vocab["app_domain"] == {"WebCom"}

    def test_non_relational_conditions_skipped(self, keystore):
        weird = Credential.build("POLICY", '"Kbob"', 'size < 10')
        vocab = harvest_vocabulary([weird] + assertions(keystore))
        assert "size" not in vocab


class TestExactMatch:
    def test_exact_query_scores_one(self, keystore):
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        result = checker.query(
            {"app_domain": "WebCom", "Domain": "Finance",
             "Role": "Manager", "Permission": "read"}, ["Kbob"])
        assert result.authorized
        assert result.similarity == 1.0
        assert result.is_exact()


class TestImpreciseMatch:
    def test_near_miss_domain_authorised_with_score(self, keystore):
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        result = checker.query(
            {"app_domain": "WebCom", "Domain": "FinanceDept",
             "Role": "Manager", "Permission": "read"}, ["Kbob"])
        assert result.authorized
        assert result.similarity < 1.0
        assert result.substitutions == {"Domain": "Finance"}

    def test_near_miss_through_delegation_chain(self, keystore):
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        result = checker.query(
            {"app_domain": "WebCom", "Domain": "finance",
             "Role": "Managers", "Permission": "read"}, ["Kalice"])
        assert result.authorized
        assert set(result.substitutions) <= {"Domain", "Role"}

    def test_unrelated_values_denied(self, keystore):
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        result = checker.query(
            {"app_domain": "WebCom", "Domain": "Zebra",
             "Role": "Wombat", "Permission": "read"}, ["Kbob"])
        assert not result.authorized
        assert result.similarity == 0.0

    def test_threshold_controls_relaxation(self, keystore):
        strict = ImpreciseChecker(assertions(keystore), keystore=keystore,
                                  threshold=0.99)
        result = strict.query(
            {"app_domain": "WebCom", "Domain": "FinanceDept",
             "Role": "Manager", "Permission": "read"}, ["Kbob"])
        assert not result.authorized

    def test_max_substitutions_cap(self, keystore):
        capped = ImpreciseChecker(assertions(keystore), keystore=keystore,
                                  max_substitutions=1)
        result = capped.query(
            {"app_domain": "WebCom", "Domain": "FinanceDept",
             "Role": "Managers", "Permission": "read"}, ["Kbob"])
        assert not result.authorized  # would need two substitutions

    def test_permission_mismatch_never_relaxed_to_grant_more(self, keystore):
        """'read' vs 'write' are dissimilar enough that imprecision must not
        widen authority across permissions."""
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        result = checker.query(
            {"app_domain": "WebCom", "Domain": "Finance",
             "Role": "Manager", "Permission": "write"}, ["Kbob"])
        assert not result.authorized

    def test_similarity_floor(self, keystore):
        checker = ImpreciseChecker(assertions(keystore), keystore=keystore)
        attrs = {"app_domain": "WebCom", "Domain": "FinanceDept",
                 "Role": "Manager", "Permission": "read"}
        relaxed = checker.query_with_floor(attrs, ["Kbob"], 0.5)
        assert relaxed.authorized
        strict = checker.query_with_floor(attrs, ["Kbob"], 0.99)
        assert not strict.authorized
        assert strict.similarity > 0  # evidence existed, just too weak

    def test_threshold_validation(self, keystore):
        with pytest.raises(ValueError):
            ImpreciseChecker(assertions(keystore), keystore=keystore,
                             threshold=0.0)

"""Tests for migration, consistency checking and maintenance propagation."""

import pytest

from repro.errors import InconsistentPolicyError, MigrationError
from repro.middleware.complus import ComPlusCatalogue, COM_PERMISSIONS
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.diff import PolicyDelta, diff_policies
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy
from repro.translate.consistency import check_consistency
from repro.translate.migrate import DomainMapping, migrate_policy, translate_policy
from repro.translate.propagate import PropagationEngine
from repro.util.events import AuditLog


def make_com(machine="legacy-y"):
    windows = WindowsSecurity()
    windows.add_domain("FINANCE")
    windows.add_user("FINANCE", "alice")
    windows.add_user("FINANCE", "bob")
    cat = ComPlusCatalogue(machine, windows)
    cat.create_application("Payroll", nt_domain="FINANCE")
    cat.register_component("Payroll", "SalariesDB")
    cat.declare_role("Payroll", "Clerk")
    cat.grant_permission("Payroll", "Clerk", "SalariesDB", "Access")
    cat.add_role_member("Payroll", "Clerk", "FINANCE", "alice")
    return cat


class TestDomainMapping:
    def test_explicit_mapping(self):
        mapping = DomainMapping(explicit={"A": "B"})
        assert mapping.map("A") == "B"
        with pytest.raises(MigrationError):
            mapping.map("unknown")

    def test_default_function(self):
        mapping = DomainMapping(default=lambda d: f"x/{d}")
        assert mapping.map("A") == "x/A"

    def test_to_single(self):
        mapping = DomainMapping.to_single("one")
        assert mapping.map("anything") == "one"

    def test_identity(self):
        assert DomainMapping.identity().map("D") == "D"


class TestTranslatePolicy:
    def test_vocabulary_mapping_applied(self):
        source = RBACPolicy.from_relations(
            "s", grants=[("D", "R", "T", "read")], assignments=[])
        translated, report = translate_policy(
            source, DomainMapping.identity(),
            target_permissions=COM_PERMISSIONS)
        assert Grant("D", "R", "T", "Access") in translated.grants
        assert report.vocabulary_map == {"read": "Access"}

    def test_unmappable_permission_dropped_and_reported(self):
        source = RBACPolicy.from_relations(
            "s", grants=[("D", "R", "T", "zzzqqq")], assignments=[])
        translated, report = translate_policy(
            source, DomainMapping.identity(),
            target_permissions=COM_PERMISSIONS, similarity_threshold=0.9)
        assert translated.grants == frozenset()
        assert len(report.dropped) == 1
        assert "dropped" in report.summary()


class TestMigration:
    def test_legacy_com_to_ejb(self):
        """The Figure-9 narrative: a legacy COM policy configures the
        replacement EJB system."""
        legacy = make_com()
        replacement = EJBServer(host="hostx", server_name="ejb1")
        mapping = DomainMapping(explicit={"FINANCE": "hostx:ejb1/Payroll"})
        report = migrate_policy(legacy, replacement, mapping)
        assert report.migrated_grants == 1
        assert report.migrated_assignments == 1
        # Alice's COM Access right became an EJB method permission.
        assert replacement.invoke("alice", "SalariesDB", "Access")

    def test_ejb_to_com_uses_permission_vocabulary(self):
        ejb = EJBServer(host="hostx", server_name="ejb1")
        ejb.deploy_container("Payroll")
        ejb.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
        ejb.declare_role("Payroll", "Clerk")
        ejb.add_method_permission("Payroll", "SalariesDB", "Clerk", "read")
        ejb.add_user("Alice")
        ejb.assign_role("Payroll", "Clerk", "Alice")

        target = ComPlusCatalogue("machine-z", WindowsSecurity())
        mapping = DomainMapping.to_single("FINANCE")
        report = migrate_policy(ejb, target, mapping,
                                target_permissions=COM_PERMISSIONS)
        assert report.vocabulary_map == {"read": "Access"}
        assert target.invoke("FINANCE\\Alice", "SalariesDB", "Access")

    def test_corba_identity_migration(self):
        orb = CorbaOrb(machine="m", orb_name="o")
        orb.register_interface("I", operations=("op",))
        orb.declare_role("R")
        orb.grant_right("R", "I", "op")
        orb.assign_role("R", "u")
        clone = CorbaOrb(machine="m", orb_name="o")
        migrate_policy(orb, clone, DomainMapping.identity())
        assert clone.extract_rbac() == orb.extract_rbac()


class TestConsistency:
    def test_consistent_systems(self):
        com = make_com()
        reference = com.extract_rbac()
        report = check_consistency(reference, [com])
        assert report.is_consistent()
        assert report.inconsistent_systems() == []

    def test_drift_detected(self):
        com = make_com()
        reference = com.extract_rbac()
        com.remove_role_member("Payroll", "Clerk", "FINANCE", "alice")
        report = check_consistency(reference, [com],
                                   responsibilities={com.name: {"FINANCE"}})
        assert not report.is_consistent()
        drift = report.drifts[0]
        assert Assignment("alice", "FINANCE", "Clerk") in drift.missing_assignments

    def test_extra_facts_detected(self):
        com = make_com()
        reference = com.extract_rbac()
        com.add_role_member("Payroll", "Clerk", "FINANCE", "bob")
        report = check_consistency(reference, [com])
        assert not report.is_consistent()
        assert "+" in str(report)

    def test_responsibilities_catch_missing_domains(self):
        com = make_com()
        reference = com.extract_rbac()
        reference.grant("OTHER", "R", "T", "Access")
        # Without explicit responsibilities the missing domain hides:
        assert check_consistency(reference, [com]).is_consistent()
        # With them it shows:
        report = check_consistency(
            reference, [com],
            responsibilities={com.name: {"FINANCE", "OTHER"}})
        assert not report.is_consistent()


class TestPropagation:
    def _engine(self):
        com = make_com()
        ejb = EJBServer(host="hostx", server_name="ejb1")
        global_policy = RBACPolicy("global")
        global_policy.grant("FINANCE", "Clerk", "SalariesDB", "Access")
        global_policy.assign("alice", "FINANCE", "Clerk")
        global_policy.grant("hostx:ejb1/Payroll", "Clerk", "SalariesDB",
                            "write")
        global_policy.assign("alice", "hostx:ejb1/Payroll", "Clerk")
        audit = AuditLog()
        engine = PropagationEngine(global_policy, audit=audit)
        engine.register(com, {"FINANCE"})
        engine.register(ejb, {"hostx:ejb1/Payroll"})
        return engine, com, ejb, audit

    def test_push_all_configures_everything(self):
        engine, com, ejb, audit = self._engine()
        engine.push_all()
        assert com.invoke("FINANCE\\alice", "SalariesDB", "Access")
        assert ejb.invoke("alice", "SalariesDB", "write")
        assert engine.check().is_consistent()
        assert len(audit.find(category="propagate.push")) == 2

    def test_delta_propagates_to_responsible_system_only(self):
        engine, com, ejb, _ = self._engine()
        engine.push_all()
        delta = PolicyDelta(
            added_assignments=frozenset(
                {Assignment("bob", "FINANCE", "Clerk")}))
        report = engine.apply_delta(delta)
        assert com.invoke("FINANCE\\bob", "SalariesDB", "Access")
        assert not ejb.invoke("bob", "SalariesDB", "write")
        assert report.is_consistent()

    def test_set_policy_computes_delta(self):
        engine, com, _, _ = self._engine()
        engine.push_all()
        new_policy = engine.global_policy.copy()
        new_policy.assign("bob", "FINANCE", "Clerk")
        engine.set_policy(new_policy)
        assert com.invoke("FINANCE\\bob", "SalariesDB", "Access")

    def test_listener_notified(self):
        engine, _, _, _ = self._engine()
        engine.push_all()
        seen = []
        engine.subscribe(seen.append)
        delta = PolicyDelta(added_grants=frozenset(
            {Grant("FINANCE", "Clerk", "SalariesDB", "Launch")}))
        engine.apply_delta(delta)
        assert seen == [delta]

    def test_strict_check_raises_on_drift(self):
        engine, com, _, _ = self._engine()
        engine.push_all()
        com.remove_role_member("Payroll", "Clerk", "FINANCE", "alice")
        with pytest.raises(InconsistentPolicyError):
            engine.check(strict=True)

    def test_diff_then_apply_converges(self):
        engine, com, ejb, _ = self._engine()
        engine.push_all()
        target = engine.global_policy.copy()
        target.grant("FINANCE", "Manager", "SalariesDB", "Launch")
        target.assign("bob", "FINANCE", "Manager")
        delta = diff_policies(engine.global_policy, target)
        report = engine.apply_delta(delta)
        assert report.is_consistent()
        assert com.invoke("FINANCE\\bob", "SalariesDB", "Launch")

"""Tests for the similarity metrics ([13])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.translate.similarity import (
    best_match,
    jaccard,
    levenshtein,
    match_vocabulary,
    name_similarity,
)


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("same", "same", 0),
    ])
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abcd", max_size=8),
           st.text(alphabet="abcd", max_size=8))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abc", max_size=6),
           st.text(alphabet="abc", max_size=6),
           st.text(alphabet="abc", max_size=6))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abcd", max_size=8))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestNameSimilarity:
    def test_case_insensitive_exact(self):
        assert name_similarity("Manager", "manager") == 1.0

    def test_separator_variants(self):
        assert name_similarity("SalariesDB", "salaries_db") == 1.0

    def test_synonyms(self):
        assert name_similarity("read", "Access") == 1.0
        assert name_similarity("execute", "Launch") == 1.0
        assert name_similarity("run", "invoke") == 1.0

    def test_unrelated_names_low(self):
        assert name_similarity("Manager", "Zebra") < 0.5

    def test_close_names_high(self):
        assert name_similarity("Managers", "Manager") > 0.8

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abcXYZ_", min_size=1, max_size=10),
           st.text(alphabet="abcXYZ_", min_size=1, max_size=10))
    def test_bounded(self, a, b):
        assert 0.0 <= name_similarity(a, b) <= 1.0


class TestMatching:
    def test_best_match_picks_closest(self):
        assert best_match("Mangaer", ["Manager", "Clerk"]) == "Manager"

    def test_best_match_none_below_threshold(self):
        assert best_match("xyz", ["Manager", "Clerk"], threshold=0.9) is None

    def test_match_vocabulary_is_injective(self):
        mapping = match_vocabulary(["read", "reader"], ["read", "Access"])
        assert len(set(mapping.values())) == len(mapping)

    def test_match_vocabulary_com_permissions(self):
        mapping = match_vocabulary(["execute"], ["Launch", "Access", "RunAs"])
        assert mapping == {"execute": "Launch"}

    def test_empty_inputs(self):
        assert match_vocabulary([], ["a"]) == {}
        assert match_vocabulary(["a"], []) == {}

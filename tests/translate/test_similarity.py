"""Tests for the similarity metrics ([13])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rbac.policy import RBACPolicy
from repro.translate.similarity import (
    best_match,
    jaccard,
    levenshtein,
    match_vocabulary,
    name_similarity,
)

#: identifier-shaped names for the hypothesis properties below
identifiers = st.text(
    alphabet="abcdefgXYZ0123_", min_size=1, max_size=12).filter(
        lambda s: s.strip("_"))


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("same", "same", 0),
    ])
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abcd", max_size=8),
           st.text(alphabet="abcd", max_size=8))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abc", max_size=6),
           st.text(alphabet="abc", max_size=6),
           st.text(alphabet="abc", max_size=6))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abcd", max_size=8))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestNameSimilarity:
    def test_case_insensitive_exact(self):
        assert name_similarity("Manager", "manager") == 1.0

    def test_separator_variants(self):
        assert name_similarity("SalariesDB", "salaries_db") == 1.0

    def test_synonyms(self):
        assert name_similarity("read", "Access") == 1.0
        assert name_similarity("execute", "Launch") == 1.0
        assert name_similarity("run", "invoke") == 1.0

    def test_unrelated_names_low(self):
        assert name_similarity("Manager", "Zebra") < 0.5

    def test_close_names_high(self):
        assert name_similarity("Managers", "Manager") > 0.8

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abcXYZ_", min_size=1, max_size=10),
           st.text(alphabet="abcXYZ_", min_size=1, max_size=10))
    def test_bounded(self, a, b):
        assert 0.0 <= name_similarity(a, b) <= 1.0


class TestMatching:
    def test_best_match_picks_closest(self):
        assert best_match("Mangaer", ["Manager", "Clerk"]) == "Manager"

    def test_best_match_none_below_threshold(self):
        assert best_match("xyz", ["Manager", "Clerk"], threshold=0.9) is None

    def test_match_vocabulary_is_injective(self):
        mapping = match_vocabulary(["read", "reader"], ["read", "Access"])
        assert len(set(mapping.values())) == len(mapping)

    def test_match_vocabulary_com_permissions(self):
        mapping = match_vocabulary(["execute"], ["Launch", "Access", "RunAs"])
        assert mapping == {"execute": "Launch"}

    def test_empty_inputs(self):
        assert match_vocabulary([], ["a"]) == {}
        assert match_vocabulary(["a"], []) == {}


class TestSelfSimilarity:
    @settings(max_examples=80, deadline=None)
    @given(identifiers)
    def test_every_name_is_similar_to_itself(self, name):
        assert name_similarity(name, name) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.sets(identifiers, min_size=1, max_size=6))
    def test_vocabulary_self_match_is_total_and_exact(self, names):
        """Matching a vocabulary against itself covers every source, and
        every assigned pair is an exact (1.0) match — identity up to
        similarity ties."""
        mapping = match_vocabulary(sorted(names), sorted(names))
        assert set(mapping) == names
        assert all(name_similarity(source, target) == 1.0
                   for source, target in mapping.items())

    @settings(max_examples=40, deadline=None)
    @given(identifiers, st.sets(identifiers, min_size=1, max_size=5))
    def test_best_match_prefers_self(self, name, others):
        candidates = sorted(others | {name})
        match = best_match(name, candidates)
        assert match is not None
        assert name_similarity(name, match) == 1.0


class TestPolicyEdgeCases:
    def test_empty_policies_match_to_nothing(self):
        """Two empty policies have empty vocabularies: every direction of
        matching is the empty mapping, not an error."""
        a = RBACPolicy.from_relations("a", [], [])
        b = RBACPolicy.from_relations("b", [], [])
        for source, target in ((a, b), (b, a)):
            roles = sorted({g.role for g in source.grants})
            permissions = sorted({g.permission for g in source.grants})
            assert roles == [] and permissions == []
            assert match_vocabulary(
                roles, sorted({g.role for g in target.grants})) == {}
            assert match_vocabulary(
                permissions,
                sorted({g.permission for g in target.grants})) == {}

    def test_one_empty_side(self):
        policy = RBACPolicy.from_relations(
            "p", [("D", "Manager", "T", "read")], [("Alice", "D", "Manager")])
        roles = sorted({g.role for g in policy.grants})
        assert match_vocabulary(roles, []) == {}
        assert match_vocabulary([], roles) == {}
        assert best_match("Manager", []) is None

    def test_disjoint_role_sets_yield_no_confident_match(self):
        """Role vocabularies with nothing in common must not be force-mapped
        once the threshold asks for real similarity."""
        ours = ["Manager", "Clerk", "Auditor"]
        theirs = ["Xylophone", "Quasar", "Bzzt"]
        assert match_vocabulary(ours, theirs, threshold=0.8) == {}
        for role in ours:
            assert best_match(role, theirs, threshold=0.8) is None

    def test_disjoint_sets_below_default_threshold_stay_unmapped(self):
        mapping = match_vocabulary(["Manager"], ["Qx"], threshold=0.5)
        assert mapping == {}

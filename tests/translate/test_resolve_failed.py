"""Regression: comprehension discloses keystore resolution failures.

``_licensee_users`` used to swallow *every* exception from the keystore
with a bare ``except Exception`` — a genuine lookup miss and a programming
error (a broken keystore stub) were both silently mapped to the raw key
name.  Now only :class:`~repro.errors.UnknownKeyError` / :class:`LookupError`
fall back, each disclosed as a ``translate.resolve_failed`` audit event;
anything else propagates.
"""

import pytest

from repro.crypto.keystore import Keystore
from repro.keynote.credential import Credential
from repro.translate.from_keynote import (
    comprehend_credentials,
    comprehend_membership,
)
from repro.translate.to_keynote import membership_conditions
from repro.rbac.policy import RBACPolicy
from repro.util.events import AuditLog


def _membership(keystore, authorizer, user_key, domain="Payroll",
                role="Clerk"):
    return Credential.build(
        authorizer=authorizer, licensees=f'"{user_key}"',
        conditions=membership_conditions(domain, role),
    ).sign(keystore.pair(authorizer).private)


class TestResolveFailedDisclosure:
    def test_unknown_licensee_falls_back_and_audits(self):
        keystore = Keystore()
        keystore.create("KWebCom")
        # The licensee key is *not* registered: resolution must fail.
        credential = Credential.build(
            authorizer="KWebCom", licensees='"Kghost"',
            conditions=membership_conditions("Payroll", "Clerk"))
        audit = AuditLog()
        policy = RBACPolicy("p")
        rows = comprehend_membership(credential, policy, keystore,
                                     audit=audit)
        assert rows == 1
        assert policy.assignments  # the fallback user was still assigned
        events = audit.find(category="translate.resolve_failed")
        assert len(events) == 1
        assert events[0].subject == "Kghost"
        assert events[0].outcome == "fallback"

    def test_resolvable_licensees_emit_no_event(self):
        keystore = Keystore()
        keystore.create("KWebCom")
        keystore.create("Kclaire")
        audit = AuditLog()
        policy = RBACPolicy("p")
        comprehend_membership(_membership(keystore, "KWebCom", "Kclaire"),
                              policy, keystore, audit=audit)
        assert not audit.find(category="translate.resolve_failed")
        assert any(a.user == "Claire" for a in policy.assignments)

    def test_programming_errors_propagate(self):
        class BrokenKeystore(Keystore):
            def resolve(self, symbol):
                raise TypeError("stub keystore wired up wrong")

        keystore = BrokenKeystore()
        keystore.create("KWebCom")
        credential = Credential.build(
            authorizer="KWebCom", licensees='"Kuser"',
            conditions=membership_conditions("Payroll", "Clerk"))
        with pytest.raises(TypeError):
            comprehend_membership(credential, RBACPolicy("p"), keystore)

    def test_comprehend_credentials_threads_the_audit_through(self):
        keystore = Keystore()
        keystore.create("KWebCom")
        policy_cred = Credential.from_text(
            'Authorizer: POLICY\nLicensees: "KWebCom"\n'
            'Conditions: app_domain=="WebCom";')
        ghost = Credential.build(
            authorizer="KWebCom", licensees='"Kghost"',
            conditions=membership_conditions("Payroll", "Clerk"),
        ).sign(keystore.pair("KWebCom").private)
        audit = AuditLog()
        comprehend_credentials([policy_cred, ghost], keystore=keystore,
                               audit=audit)
        assert [e.subject for e
                in audit.find(category="translate.resolve_failed")] \
            == ["Kghost"]

"""Tests for the DNF normalisation used by comprehension."""

import pytest

from repro.errors import ComprehensionError
from repro.keynote.parser import parse_conditions
from repro.translate.dnf import conditions_to_dnf


def dnf(text):
    return conditions_to_dnf(parse_conditions(text))


class TestDNF:
    def test_single_atom(self):
        assert dnf('a == "1"') == [{"a": "1"}]

    def test_reversed_atom(self):
        assert dnf('"1" == a') == [{"a": "1"}]

    def test_conjunction_merges(self):
        assert dnf('a == "1" && b == "2"') == [{"a": "1", "b": "2"}]

    def test_disjunction_splits(self):
        assert dnf('a == "1" || a == "2"') == [{"a": "1"}, {"a": "2"}]

    def test_distribution(self):
        result = dnf('a == "1" && (b == "2" || b == "3")')
        assert result == [{"a": "1", "b": "2"}, {"a": "1", "b": "3"}]

    def test_contradiction_dropped(self):
        assert dnf('a == "1" && a == "2"') == []

    def test_repeated_consistent_atom_kept(self):
        assert dnf('a == "1" && a == "1"') == [{"a": "1"}]

    def test_true_literal_is_empty_conjunct(self):
        assert dnf("true") == [{}]

    def test_true_conjunction_absorbed(self):
        assert dnf('true && a == "1"') == [{"a": "1"}]

    def test_clauses_are_alternatives(self):
        assert dnf('a == "1"; b == "2"') == [{"a": "1"}, {"b": "2"}]

    def test_figure5_shape(self):
        text = ('app_domain == "WebCom" && ObjectType == "SalariesDB" && '
                '((Domain=="Sales" && Role=="Manager" && Permission=="read") || '
                '(Domain=="Finance" && Role=="Manager" && '
                '(Permission=="read" || Permission=="write")))')
        result = dnf(text)
        assert {"app_domain": "WebCom", "ObjectType": "SalariesDB",
                "Domain": "Sales", "Role": "Manager",
                "Permission": "read"} in result
        assert len(result) == 3

    def test_regex_rejected(self):
        with pytest.raises(ComprehensionError):
            dnf('a ~= "x.*"')

    def test_inequality_rejected(self):
        with pytest.raises(ComprehensionError):
            dnf('a != "1"')

    def test_numeric_comparison_rejected(self):
        with pytest.raises(ComprehensionError):
            dnf("a < 5")

    def test_attribute_to_attribute_equality_rejected(self):
        with pytest.raises(ComprehensionError):
            dnf("a == b")

    def test_bare_attribute_rejected(self):
        with pytest.raises(ComprehensionError):
            dnf("a")

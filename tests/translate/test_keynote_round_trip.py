"""Tests for RBAC ↔ KeyNote translation (Sections 4.1-4.2, Figures 5-6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Keystore
from repro.keynote.compliance import ComplianceChecker
from repro.rbac.policy import RBACPolicy
from repro.translate.common import action_attributes, membership_attributes
from repro.translate.from_keynote import (
    comprehend_credentials,
    comprehend_membership,
    comprehend_policy,
)
from repro.translate.to_keynote import (
    encode_full,
    encode_policy,
    encode_user_credentials,
    grant_conditions,
    membership_conditions,
)


class TestFigure5Encoding:
    def test_policy_credential_shape(self, fig1, keystore):
        cred = encode_policy(fig1, "KWebCom")
        assert cred.is_policy
        assert cred.principals() == {"KWebCom"}
        text = cred.to_text()
        assert 'app_domain=="WebCom"' in text
        assert 'Domain=="Finance"' in text
        # Figure 5 compresses Manager's permissions into a disjunction.
        assert '(Permission=="read" || Permission=="write")' in text

    def test_empty_policy_grants_nothing(self, keystore):
        cred = encode_policy(RBACPolicy("empty"), "KWebCom")
        checker = ComplianceChecker([cred], keystore=keystore)
        attrs = action_attributes("D", "R", "T", "p")
        assert checker.query(attrs, ["KWebCom"]) == "false"

    def test_policy_credential_admits_admin_key(self, fig1, keystore):
        cred = encode_policy(fig1, "KWebCom")
        checker = ComplianceChecker([cred], keystore=keystore)
        attrs = action_attributes("Finance", "Manager", "SalariesDB", "read")
        assert checker.query(attrs, ["KWebCom"]) == "true"
        bad = action_attributes("Sales", "Manager", "SalariesDB", "write")
        assert checker.query(bad, ["KWebCom"]) == "false"

    def test_grant_conditions_deterministic(self, fig1):
        assert grant_conditions(fig1) == grant_conditions(fig1)


class TestFigure6Encoding:
    def test_one_credential_per_assignment(self, fig1, keystore):
        creds = encode_user_credentials(fig1, "KWebCom", keystore)
        assert len(creds) == 5
        assert all(c.verify(keystore) for c in creds)
        assert all(c.authorizer == "KWebCom" for c in creds)

    def test_claire_credential_matches_figure6(self, fig1, keystore):
        creds = encode_user_credentials(fig1, "KWebCom", keystore)
        claire = [c for c in creds if c.principals() == {"Kclaire"}]
        assert len(claire) == 1
        text = claire[0].to_text()
        # Figure 1's table: Claire is Manager in Sales (Figure 6 prints
        # Finance — a paper inconsistency noted in DESIGN.md).
        assert 'Domain=="Sales"' in text
        assert 'Role=="Manager"' in text
        assert "Permission" not in text

    def test_membership_conditions_shape(self):
        text = membership_conditions("Finance", "Manager")
        assert text == ('app_domain=="WebCom" && Domain=="Finance" '
                        '&& Role=="Manager"')

    def test_explicit_key_mapping(self, fig1, keystore):
        creds = encode_user_credentials(
            fig1, "KWebCom", keystore, user_key={"Alice": "Kcustom"})
        assert any(c.principals() == {"Kcustom"} for c in creds)

    def test_unsigned_option(self, fig1, keystore):
        creds = encode_user_credentials(fig1, "KWebCom", keystore, sign=False)
        assert all(not c.signature for c in creds)


class TestEndToEndAuthorisation:
    """The full Figure 3 flow: encoded policy + memberships answer the
    Figure-1 access matrix for user keys."""

    def test_paper_access_matrix(self, fig1, keystore):
        pol, memberships = encode_full(fig1, "KWebCom", keystore)
        checker = ComplianceChecker([pol] + memberships, keystore=keystore)

        def may(user_key, domain, role, perm):
            attrs = action_attributes(domain, role, "SalariesDB", perm)
            return checker.query(attrs, [user_key]) == "true"

        assert may("Kalice", "Finance", "Clerk", "write")
        assert not may("Kalice", "Finance", "Clerk", "read")
        assert may("Kbob", "Finance", "Manager", "read")
        assert may("Kbob", "Finance", "Manager", "write")
        assert may("Kclaire", "Sales", "Manager", "read")
        assert not may("Kclaire", "Sales", "Manager", "write")
        assert not may("Kdave", "Sales", "Assistant", "read")
        # Claire cannot masquerade as a Finance Manager.
        assert not may("Kclaire", "Finance", "Manager", "read")

    def test_membership_query(self, fig1, keystore):
        _pol, memberships = encode_full(fig1, "KWebCom", keystore)
        # Membership checks don't involve the POLICY grant credential —
        # they ask whether KWebCom vouches for the user's role.
        probe = encode_policy(fig1, "KWebCom")
        checker = ComplianceChecker([probe] + memberships, keystore=keystore)
        attrs = membership_attributes("Sales", "Manager")
        # Grant table requires Permission/ObjectType, so pure membership
        # attributes do not authorise an action.
        assert checker.query(attrs, ["Kclaire"]) == "false"


class TestComprehension:
    def test_round_trip_exact(self, fig1, keystore):
        pol, memberships = encode_full(fig1, "KWebCom", keystore)
        recovered = comprehend_credentials([pol] + memberships,
                                           keystore=keystore)
        assert recovered == fig1

    def test_comprehend_policy_counts_rows(self, fig1, keystore):
        pol = encode_policy(fig1, "KWebCom")
        out = RBACPolicy("out")
        assert comprehend_policy(pol, out) == 4
        assert out.grants == fig1.grants

    def test_comprehend_membership(self, fig1, keystore):
        creds = encode_user_credentials(fig1, "KWebCom", keystore)
        out = RBACPolicy("out")
        total = sum(comprehend_membership(c, out, keystore) for c in creds)
        assert total == 5
        assert out.assignments == fig1.assignments

    def test_foreign_app_domain_ignored(self, keystore):
        policy = RBACPolicy.from_relations(
            "p", grants=[("D", "R", "T", "x")], assignments=[])
        cred = encode_policy(policy, "KWebCom", app_domain="OtherApp")
        out = RBACPolicy("out")
        assert comprehend_policy(cred, out) == 0
        assert out.is_empty()

    def test_unsigned_membership_skipped(self, fig1, keystore):
        pol, memberships = encode_full(fig1, "KWebCom", keystore)
        unsigned = encode_user_credentials(fig1, "KWebCom", keystore,
                                           sign=False)
        recovered = comprehend_credentials([pol] + unsigned,
                                           keystore=keystore)
        assert recovered.assignments == frozenset()
        recovered2 = comprehend_credentials(
            [pol] + unsigned, keystore=keystore, verify_signatures=False)
        assert recovered2.assignments == fig1.assignments


# Property: round-trip exactness over random policies.
_D = st.sampled_from(["DomA", "DomB"])
_R = st.sampled_from(["r1", "r2", "r3"])
_T = st.sampled_from(["T1", "T2"])
_P = st.sampled_from(["read", "write", "exec"])
_U = st.sampled_from(["Uma", "Vic", "Wes"])


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(_D, _R, _T, _P), max_size=10),
           st.lists(st.tuples(_U, _D, _R), max_size=8))
    def test_any_policy_round_trips(self, grants, assignments):
        policy = RBACPolicy.from_relations("p", grants, assignments)
        ks = Keystore()
        pol, memberships = encode_full(policy, "KWebCom", ks)
        recovered = comprehend_credentials([pol] + memberships, keystore=ks)
        assert recovered == policy

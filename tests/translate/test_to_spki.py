"""Tests for the SPKI encoding of RBAC policies (footnote 1)."""

import pytest

from repro.crypto import Keystore
from repro.spki.chain import CertStore
from repro.spki.tags import tag_implies
from repro.translate.to_spki import (
    spki_grant_tag,
    spki_policy_certificates,
    spki_request_tag,
    spki_role_tag,
)


@pytest.fixture
def encoded(fig1, keystore):
    auth_certs, name_certs = spki_policy_certificates(
        fig1, "KWebCom", keystore, root_key="Kself")
    store = CertStore(keystore)
    for cert in auth_certs:
        assert store.add_auth(cert)
    for cert in name_certs:
        assert store.add_name(cert)
    return store


class TestTags:
    def test_role_tag_implies_grant_tag(self):
        role = spki_role_tag("Finance", "Manager")
        grant = spki_grant_tag("Finance", "Manager", "SalariesDB", "read")
        assert tag_implies(role, grant)
        assert not tag_implies(grant, role)

    def test_cross_role_tags_disjoint(self):
        a = spki_role_tag("Finance", "Manager")
        b = spki_grant_tag("Sales", "Manager", "SalariesDB", "read")
        assert not tag_implies(a, b)


class TestEncodedPolicy:
    def test_paper_access_matrix_via_spki(self, encoded):
        def may(user_key, domain, role, perm):
            tag = spki_request_tag(domain, role, "SalariesDB", perm)
            return encoded.is_authorised("Kself", user_key, tag)

        assert may("Kalice", "Finance", "Clerk", "write")
        assert not may("Kalice", "Finance", "Clerk", "read")
        assert may("Kbob", "Finance", "Manager", "read")
        assert may("Kbob", "Finance", "Manager", "write")
        assert may("Kclaire", "Sales", "Manager", "read")
        assert not may("Kclaire", "Sales", "Manager", "write")
        assert not may("Kdave", "Sales", "Assistant", "read")
        assert not may("Kclaire", "Finance", "Manager", "read")

    def test_admin_key_holds_all_grants(self, encoded, fig1):
        for grant in fig1.grants:
            tag = spki_grant_tag(grant.domain, grant.role, grant.object_type,
                                 grant.permission)
            assert encoded.is_authorised("Kself", "KWebCom", tag)

    def test_name_certs_record_memberships(self, encoded):
        assert encoded.resolve_name("KWebCom", "Sales/Manager") == {
            "Kclaire", "Kelaine"}

    def test_agreement_with_keynote_backend(self, fig1, keystore, encoded):
        """Both trust-management backends answer the access matrix
        identically — the paper's footnote-1 claim."""
        from repro.keynote.compliance import ComplianceChecker
        from repro.translate.common import action_attributes
        from repro.translate.to_keynote import encode_full

        pol, memberships = encode_full(fig1, "KWebCom", keystore)
        checker = ComplianceChecker([pol] + memberships, keystore=keystore)
        users = {"Kalice", "Kbob", "Kclaire", "Kdave", "Kelaine"}
        for user in sorted(users):
            for domain, role in {("Finance", "Clerk"), ("Finance", "Manager"),
                                 ("Sales", "Manager"), ("Sales", "Assistant")}:
                for perm in ("read", "write"):
                    kn = checker.query(
                        action_attributes(domain, role, "SalariesDB", perm),
                        [user]) == "true"
                    spki = encoded.is_authorised(
                        "Kself", user,
                        spki_request_tag(domain, role, "SalariesDB", perm))
                    assert kn == spki, (user, domain, role, perm)

"""Shared fixtures: the Figure-1 policy and a populated keystore."""

import pytest

from repro.crypto import Keystore
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def fig1() -> RBACPolicy:
    """The paper's Figure-1 Salaries Database policy."""
    return RBACPolicy.from_relations(
        "salaries",
        grants=[
            ("Finance", "Clerk", "SalariesDB", "write"),
            ("Finance", "Manager", "SalariesDB", "read"),
            ("Finance", "Manager", "SalariesDB", "write"),
            ("Sales", "Manager", "SalariesDB", "read"),
        ],
        assignments=[
            ("Alice", "Finance", "Clerk"),
            ("Bob", "Finance", "Manager"),
            ("Claire", "Sales", "Manager"),
            ("Dave", "Sales", "Assistant"),
            ("Elaine", "Sales", "Manager"),
        ],
    )


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    ks.create("KWebCom")
    return ks

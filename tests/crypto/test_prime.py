"""Tests for primality testing and parameter generation."""

import pytest

from repro.crypto.prime import find_schnorr_parameters, is_probable_prime, next_prime


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 149):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 21, 25, 100, 1001):
            assert not is_probable_prime(n)

    def test_negative(self):
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that fool weak tests.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_probable_prime(n)

    def test_known_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_known_large_composite(self):
        # 2^128 + 1 is composite (factor 59649589127497217).
        assert not is_probable_prime(2**128 + 1)

    def test_product_of_large_primes(self):
        p, q = 2**61 - 1, 2**89 - 1
        assert not is_probable_prime(p * q)


class TestNextPrime:
    def test_from_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17

    def test_from_even(self):
        assert next_prime(8) == 11
        assert next_prime(90) == 97

    def test_result_is_prime_and_greater(self):
        for n in (10**6, 10**9):
            p = next_prime(n)
            assert p > n
            assert is_probable_prime(p)


class TestFindSchnorrParameters:
    def test_deterministic(self):
        a = find_schnorr_parameters(40, 128, "seed-1")
        b = find_schnorr_parameters(40, 128, "seed-1")
        assert a == b

    def test_parameters_valid(self):
        p, q, g = find_schnorr_parameters(40, 128, "seed-2")
        assert is_probable_prime(p)
        assert is_probable_prime(q)
        assert (p - 1) % q == 0
        assert pow(g, q, p) == 1
        assert g != 1
        assert p.bit_length() == 128
        assert q.bit_length() == 40

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            find_schnorr_parameters(128, 128, "x")

"""Tests for the keystore (System PKI of Figure 3)."""

import pytest

from repro.crypto import KeyPair, Keystore
from repro.errors import UnknownKeyError


class TestKeystore:
    def test_create_and_lookup(self):
        ks = Keystore()
        pair = ks.create("Kbob")
        assert ks.pair("Kbob") is pair
        assert ks.public("Kbob") == pair.public

    def test_create_is_idempotent(self):
        ks = Keystore()
        assert ks.create("Kbob") is ks.create("Kbob")

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownKeyError):
            Keystore().pair("nope")

    def test_reverse_lookup(self):
        ks = Keystore()
        ks.create("Kbob")
        assert ks.name_of(ks.public("Kbob")) == "Kbob"
        assert ks.name_of(ks.public("Kbob").encode()) == "Kbob"

    def test_reverse_lookup_unknown_raises(self):
        ks = Keystore()
        foreign = KeyPair.generate("foreign")
        with pytest.raises(UnknownKeyError):
            ks.name_of(foreign.public)

    def test_add_external_pair(self):
        ks = Keystore()
        pair = KeyPair.generate("ext")
        ks.add("Kext", pair)
        assert ks.pair("Kext") is pair

    def test_contains_iter_len(self):
        ks = Keystore()
        ks.create("Ka")
        ks.create("Kb")
        assert "Ka" in ks
        assert "Kc" not in ks
        assert sorted(ks) == ["Ka", "Kb"]
        assert len(ks) == 2

    def test_resolve_symbol_vs_encoded(self):
        ks = Keystore()
        ks.create("Kbob")
        encoded = ks.public("Kbob").encode()
        assert ks.resolve("Kbob") == encoded
        assert ks.resolve(encoded) == encoded

    def test_symbol_table(self):
        ks = Keystore()
        ks.create("Ka")
        table = ks.symbol_table()
        assert set(table) == {"Ka"}
        assert table["Ka"].startswith("kn-schnorr-hex:")

    def test_display_known_and_unknown(self):
        ks = Keystore()
        ks.create("Ka")
        assert ks.display(ks.public("Ka").encode()) == "Ka"
        assert ks.display("kn-schnorr-hex:" + "ab" * 40).endswith("...")
        assert ks.display("short") == "short"

    def test_custom_seed(self):
        ks = Keystore()
        pair = ks.create("Kname", seed="other-seed")
        assert pair == KeyPair.generate("other-seed")

"""Tests for Schnorr keys and signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.group import DEFAULT_GROUP
from repro.crypto.keys import KeyPair, PublicKey, Signature
from repro.errors import InvalidSignatureError, KeyFormatError


class TestDefaultGroup:
    def test_parameters_validate(self):
        DEFAULT_GROUP.validate()

    def test_contains_generator(self):
        assert DEFAULT_GROUP.contains(DEFAULT_GROUP.g)

    def test_rejects_non_member(self):
        assert not DEFAULT_GROUP.contains(0)
        assert not DEFAULT_GROUP.contains(DEFAULT_GROUP.p)

    def test_hash_to_exponent_in_range(self):
        e = DEFAULT_GROUP.hash_to_exponent(b"x", b"y")
        assert 0 <= e < DEFAULT_GROUP.q


class TestKeyPair:
    def test_deterministic_generation(self):
        assert KeyPair.generate("alice") == KeyPair.generate("alice")

    def test_different_seeds_differ(self):
        assert KeyPair.generate("alice") != KeyPair.generate("bob")

    def test_public_matches_private(self):
        kp = KeyPair.generate("alice")
        assert kp.private.public() == kp.public

    def test_public_key_is_group_member(self):
        kp = KeyPair.generate("alice")
        assert DEFAULT_GROUP.contains(kp.public.y)


class TestSignatures:
    def test_sign_verify(self):
        kp = KeyPair.generate("alice")
        sig = kp.sign(b"message")
        assert kp.public.verify(b"message", sig)

    def test_wrong_message_rejected(self):
        kp = KeyPair.generate("alice")
        sig = kp.sign(b"message")
        assert not kp.public.verify(b"other", sig)

    def test_wrong_key_rejected(self):
        sig = KeyPair.generate("alice").sign(b"m")
        assert not KeyPair.generate("bob").public.verify(b"m", sig)

    def test_tampered_signature_rejected(self):
        kp = KeyPair.generate("alice")
        sig = kp.sign(b"m")
        bad = Signature(e=sig.e, s=(sig.s + 1) % DEFAULT_GROUP.q)
        assert not kp.public.verify(b"m", bad)

    def test_out_of_range_signature_rejected(self):
        kp = KeyPair.generate("alice")
        bad = Signature(e=DEFAULT_GROUP.q, s=0)
        assert not kp.public.verify(b"m", bad)

    def test_deterministic_signing(self):
        kp = KeyPair.generate("alice")
        assert kp.sign(b"m") == kp.sign(b"m")

    def test_verify_or_raise(self):
        kp = KeyPair.generate("alice")
        sig = kp.sign(b"m")
        kp.public.verify_or_raise(b"m", sig)  # no raise
        with pytest.raises(InvalidSignatureError):
            kp.public.verify_or_raise(b"x", sig)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_round_trip_any_message(self, message):
        kp = KeyPair.generate("prop")
        assert kp.public.verify(message, kp.sign(message))


class TestEncoding:
    def test_public_key_round_trip(self):
        kp = KeyPair.generate("alice")
        assert PublicKey.decode(kp.public.encode()) == kp.public

    def test_signature_round_trip(self):
        sig = KeyPair.generate("alice").sign(b"m")
        assert Signature.decode(sig.encode()) == sig

    def test_key_prefix_detection(self):
        kp = KeyPair.generate("alice")
        assert PublicKey.looks_like_key(kp.public.encode())
        assert not PublicKey.looks_like_key("Kbob")

    def test_decode_rejects_garbage(self):
        with pytest.raises(KeyFormatError):
            PublicKey.decode("not-a-key")
        with pytest.raises(KeyFormatError):
            PublicKey.decode("kn-schnorr-hex:zzzz")
        with pytest.raises(KeyFormatError):
            Signature.decode("sig-schnorr-sha256-hex:short")

    def test_decode_rejects_non_group_element(self):
        # y = p is not a group member even though it parses as hex.
        width = (DEFAULT_GROUP.p.bit_length() + 3) // 4
        bogus = f"kn-schnorr-hex:{DEFAULT_GROUP.p:0{width}x}"
        with pytest.raises(KeyFormatError):
            PublicKey.decode(bogus)

    def test_fingerprint_stable_and_short(self):
        kp = KeyPair.generate("alice")
        assert kp.public.fingerprint() == kp.public.fingerprint()
        assert len(kp.public.fingerprint(8)) == 8

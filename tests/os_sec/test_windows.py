"""Tests for the Windows NT security substrate."""

import pytest

from repro.errors import UnknownPrincipalError
from repro.os_sec.windows import WindowsSecurity


@pytest.fixture
def osec() -> WindowsSecurity:
    w = WindowsSecurity()
    w.add_domain("FINANCE")
    w.add_domain("SALES")
    w.add_user("FINANCE", "alice")
    w.add_user("FINANCE", "bob")
    w.add_user("SALES", "claire")
    w.add_group("FINANCE", "Managers")
    w.add_member("FINANCE", "Managers", "FINANCE", "bob")
    w.create_object("catalogue", owner=("FINANCE", "bob"))
    return w


class TestPrincipals:
    def test_sids_are_stable(self, osec):
        assert osec.sid_of("FINANCE", "alice") == osec.sid_of("FINANCE", "alice")

    def test_sids_are_distinct(self, osec):
        assert osec.sid_of("FINANCE", "alice") != osec.sid_of("FINANCE", "bob")
        assert (osec.sid_of("FINANCE", "alice")
                != osec.group_sid("FINANCE", "Managers"))

    def test_unknown_domain_rejected(self, osec):
        with pytest.raises(UnknownPrincipalError):
            osec.add_user("NOPE", "x")

    def test_unknown_user_rejected(self, osec):
        with pytest.raises(UnknownPrincipalError):
            osec.sid_of("FINANCE", "mallory")

    def test_has_user_with_principal_syntax(self, osec):
        assert osec.has_user("FINANCE\\alice")
        assert not osec.has_user("FINANCE\\mallory")
        assert not osec.has_user("alice")  # needs the domain prefix

    def test_users_in_domain(self, osec):
        assert osec.users_in_domain("FINANCE") == {"alice", "bob"}

    def test_cross_domain_group_membership(self, osec):
        osec.add_member("FINANCE", "Managers", "SALES", "claire")
        token = osec.token_sids("SALES", "claire")
        assert osec.group_sid("FINANCE", "Managers") in token


class TestToken:
    def test_token_contains_user_and_everyone(self, osec):
        token = osec.token_sids("FINANCE", "alice")
        assert osec.sid_of("FINANCE", "alice") in token
        assert WindowsSecurity.EVERYONE_SID in token

    def test_token_contains_groups(self, osec):
        token = osec.token_sids("FINANCE", "bob")
        assert osec.group_sid("FINANCE", "Managers") in token

    def test_nested_groups(self, osec):
        osec.add_group("FINANCE", "Staff")
        # Managers is a member of Staff (group nesting via member sets).
        osec._members[osec.group_sid("FINANCE", "Staff")].add(
            osec.group_sid("FINANCE", "Managers"))
        token = osec.token_sids("FINANCE", "bob")
        assert osec.group_sid("FINANCE", "Staff") in token


class TestAccessCheck:
    def test_owner_always_allowed(self, osec):
        assert osec.check("FINANCE\\bob", "catalogue", "read")

    def test_default_deny(self, osec):
        assert not osec.check("FINANCE\\alice", "catalogue", "read")

    def test_allow_ace(self, osec):
        osec.allow("catalogue", osec.sid_of("FINANCE", "alice"), {"read"})
        assert osec.check("FINANCE\\alice", "catalogue", "read")
        assert not osec.check("FINANCE\\alice", "catalogue", "write")

    def test_group_ace(self, osec):
        osec.allow("catalogue", osec.group_sid("FINANCE", "Managers"),
                   {"write"})
        assert osec.check("FINANCE\\bob", "catalogue", "write")
        assert not osec.check("FINANCE\\alice", "catalogue", "write")

    def test_deny_ace_dominates(self, osec):
        sid = osec.sid_of("FINANCE", "alice")
        osec.allow("catalogue", sid, {"read"})
        osec.deny("catalogue", sid, {"read"})
        assert not osec.check("FINANCE\\alice", "catalogue", "read")

    def test_everyone_ace(self, osec):
        osec.allow("catalogue", WindowsSecurity.EVERYONE_SID, {"read"})
        assert osec.check("SALES\\claire", "catalogue", "read")

    def test_unknown_object_denied(self, osec):
        assert not osec.check("FINANCE\\bob", "nope", "read")

    def test_unknown_user_denied(self, osec):
        assert not osec.check("FINANCE\\mallory", "catalogue", "read")

    def test_dacl_inspection(self, osec):
        osec.allow("catalogue", WindowsSecurity.EVERYONE_SID, {"read"})
        dacl = osec.dacl_of("catalogue")
        assert len(dacl) == 1
        assert dacl[0].allow

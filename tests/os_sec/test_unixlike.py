"""Tests for the Unix-like OS security substrate."""

import pytest

from repro.errors import UnknownPrincipalError
from repro.os_sec.unixlike import UnixSecurity


@pytest.fixture
def osec() -> UnixSecurity:
    u = UnixSecurity()
    u.add_user("alice", groups=["finance"])
    u.add_user("bob", groups=["finance", "managers"])
    u.add_user("eve")
    u.create_object("/db/salaries", owner="alice", group="finance", mode=0o640)
    return u


class TestPrincipals:
    def test_has_user(self, osec):
        assert osec.has_user("alice")
        assert not osec.has_user("mallory")

    def test_groups_of(self, osec):
        assert osec.groups_of("bob") == {"finance", "managers"}

    def test_groups_of_unknown_user(self, osec):
        with pytest.raises(UnknownPrincipalError):
            osec.groups_of("mallory")

    def test_add_to_group(self, osec):
        osec.add_to_group("eve", "finance")
        assert "finance" in osec.groups_of("eve")

    def test_add_to_group_unknown_user(self, osec):
        with pytest.raises(UnknownPrincipalError):
            osec.add_to_group("mallory", "g")


class TestObjects:
    def test_create_requires_known_owner(self, osec):
        with pytest.raises(UnknownPrincipalError):
            osec.create_object("/x", owner="mallory", group="g")

    def test_mode_validation(self, osec):
        with pytest.raises(ValueError):
            osec.create_object("/x", owner="alice", group="g", mode=0o1000)
        with pytest.raises(ValueError):
            osec.chmod("/db/salaries", -1)

    def test_has_object(self, osec):
        assert osec.has_object("/db/salaries")
        assert not osec.has_object("/nope")


class TestAccessCheck:
    def test_owner_bits(self, osec):
        assert osec.check("alice", "/db/salaries", "read")
        assert osec.check("alice", "/db/salaries", "write")
        assert not osec.check("alice", "/db/salaries", "execute")

    def test_group_bits(self, osec):
        assert osec.check("bob", "/db/salaries", "read")
        assert not osec.check("bob", "/db/salaries", "write")

    def test_other_bits(self, osec):
        assert not osec.check("eve", "/db/salaries", "read")

    def test_chmod_changes_decision(self, osec):
        osec.chmod("/db/salaries", 0o666)
        assert osec.check("eve", "/db/salaries", "write")

    def test_unknown_object_denied(self, osec):
        assert not osec.check("alice", "/nope", "read")

    def test_unknown_user_denied(self, osec):
        assert not osec.check("mallory", "/db/salaries", "read")

    def test_unknown_access_kind_denied(self, osec):
        assert not osec.check("alice", "/db/salaries", "chortle")

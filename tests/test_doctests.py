"""Execute the library's docstring examples as tests.

Every public class whose docstring carries a ``>>>`` example is verified
here, so the documentation cannot rot.
"""

import doctest
import importlib
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def _modules_with_doctests():
    names = []
    for path in sorted(SRC.rglob("*.py")):
        if ">>>" in path.read_text():
            rel = path.relative_to(SRC).with_suffix("")
            parts = list(rel.parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            names.append(".".join(parts))
    return names


MODULES = _modules_with_doctests()


def test_doctest_carrying_modules_found():
    # The library documents its core surfaces with runnable examples.
    assert len(MODULES) >= 8


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} failures"

"""Health-machinery robustness: property tests for breakers, fault plans,
expiry windows and update-request validation.

Same discipline as ``test_fuzz_parsers.py``: arbitrary inputs must either
work or raise the documented exception, and rejected inputs must leave no
partial state behind (a malformed update request never half-applies).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultPlanError, KeyComError, LayerTimeoutError
from repro.keynote.api import KeyNoteSession
from repro.util.clock import SimulatedClock
from repro.webcom.faults import LayerFaultInjector, LayerFaultPlan, LayerFaultRule
from repro.webcom.health import BreakerState, CircuitBreaker
from repro.webcom.keycom import PolicyUpdateRequest

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e6, max_value=1e6)


class TestBreakerProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=-3, max_value=8),
           st.floats(min_value=-5.0, max_value=50.0,
                     allow_nan=False, allow_infinity=False))
    def test_constructor_total(self, threshold, cooldown):
        try:
            breaker = CircuitBreaker("x", clock=SimulatedClock(),
                                     failure_threshold=threshold,
                                     cooldown=cooldown)
        except ValueError:
            assert threshold < 1 or cooldown < 0
            return
        assert breaker.state is BreakerState.CLOSED

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from(["fail", "ok", "tick"]),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.0, max_value=10.0,
                     allow_nan=False, allow_infinity=False))
    def test_breaker_invariants_under_any_schedule(self, events, threshold,
                                                   cooldown):
        clock = SimulatedClock()
        breaker = CircuitBreaker("x", clock=clock,
                                 failure_threshold=threshold,
                                 cooldown=cooldown)
        for event in events:
            if event == "fail":
                breaker.record_failure()
            elif event == "ok":
                breaker.record_success()
            else:
                clock.advance(1.0)
                breaker.allow()
        # Invariants: transitions alternate states, CLOSED after any
        # success, and allow() is total.
        assert isinstance(breaker.allow(), bool)
        for _t, old, new in breaker.transitions:
            assert old != new
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.1, max_value=20.0,
                     allow_nan=False, allow_infinity=False))
    def test_open_breaker_always_reopens_eventually(self, threshold,
                                                    cooldown):
        clock = SimulatedClock()
        breaker = CircuitBreaker("x", clock=clock,
                                 failure_threshold=threshold,
                                 cooldown=cooldown)
        for _ in range(threshold):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(cooldown)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN


class TestLayerFaultPlanProperties:
    @settings(max_examples=100, deadline=None)
    @given(finite_floats, finite_floats, finite_floats)
    def test_rule_constructor_total(self, fail, start, end):
        try:
            rule = LayerFaultRule(layer="X", fail=fail, start=start, end=end)
        except FaultPlanError:
            assert not 0.0 <= fail <= 1.0 or start < 0 or end < start
            return
        assert rule.matches("X", start) == (start < end)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_chaos_plans_always_valid_and_deterministic(self, seed):
        layers = ("TRUST_MANAGEMENT", "APPLICATION", "OS")
        plan = LayerFaultPlan.chaos(seed, layers)
        again = LayerFaultPlan.chaos(seed, layers)
        assert plan == again
        injector = LayerFaultInjector(plan)
        clock = 0.0
        fired = 0
        for _ in range(50):
            clock += 0.7
            for layer in layers:
                try:
                    injector.check(layer, clock)
                except LayerTimeoutError:
                    fired += 1
        assert fired == sum(injector.counts.values())


class TestExpirySweepProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=0, max_size=8),
           st.floats(min_value=0.0, max_value=20.0,
                     allow_nan=False, allow_infinity=False),
           st.floats(min_value=0.0, max_value=150.0,
                     allow_nan=False, allow_infinity=False))
    def test_sweep_never_crashes_and_is_exact(self, expiries, skew, advance):
        from repro.crypto import Keystore
        from repro.keynote.credential import Credential

        keystore = Keystore()
        keystore.create("Kbob")
        clock = SimulatedClock()
        session = KeyNoteSession(keystore=keystore, clock=clock,
                                 clock_skew=skew)
        session.add_policy('Authorizer: POLICY\nLicensees: "Kbob"\n'
                           'Conditions: true;')
        for i, expiry in enumerate(expiries):
            cred = Credential.build("Kbob", f'"K{i}"',
                                    f'tag=="t{i}"').signed_by(keystore)
            session.add_credential(cred, expires_at=expiry)
        clock.advance(advance)
        swept = session.sweep_expired()
        cutoff = advance - session.expiry_grace
        assert len(swept) == sum(1 for e in expiries if e <= cutoff)
        # A second sweep at the same instant finds nothing new.
        assert session.sweep_expired() == []
        remaining = session.expiring().values()
        assert all(e > cutoff for e in remaining)


# Field strategies deliberately include valid values, blanks and junk.
_field = st.one_of(st.text(max_size=8), st.just("  "),
                   st.just("user"), st.just("DomainA"))


class TestUpdateRequestValidation:
    @settings(max_examples=150, deadline=None)
    @given(_field, _field, _field, _field,
           st.integers(min_value=-3, max_value=3))
    def test_validate_total_and_exact(self, user, key, domain, role,
                                      version):
        request = PolicyUpdateRequest(
            user=user, user_key=key, domain=domain, role=role,
            credentials=(), version=version)
        should_fail = (not user.strip() or not key.strip()
                       or not domain.strip() or not role.strip()
                       or version < 0)
        try:
            request.validate()
            assert not should_fail
        except KeyComError:
            assert should_fail

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=6))
    def test_malformed_request_never_partially_applied(self, user):
        """A rejected request must leave middleware and audit untouched by
        application (the reject happens before any credential query)."""
        from repro.middleware.ejb import EJBServer
        from repro.webcom.keycom import KeyComService

        session = KeyNoteSession(keystore=None, verify_signatures=False)
        session.add_policy('Authorizer: POLICY\nLicensees: "Kany"\n'
                           'Conditions: true;')
        server = EJBServer("h", "s")
        service = KeyComService(server, session)
        request = PolicyUpdateRequest(
            user=user, user_key="Kany", domain="h:s/app", role="R",
            credentials=(), version=-1)  # version always malformed
        before = server.extract_rbac()
        try:
            service.submit(request)
            raise AssertionError("negative version must be rejected")
        except KeyComError:
            pass
        assert server.extract_rbac() == before
        assert service.processed == []
        assert service.applied_ids == set()

"""Tests for SPKI certificates, name resolution and chain reduction."""

import pytest

from repro.crypto import Keystore
from repro.errors import ChainError
from repro.spki.cert import ALWAYS, AuthCert, NameCert, Validity
from repro.spki.chain import CertStore, FiveTuple, reduce_chain
from repro.spki.sexp import parse_sexp

TAG_RW = parse_sexp("(salaries (* set read write))")
TAG_W = parse_sexp("(salaries write)")
TAG_R = parse_sexp("(salaries read)")


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("Kroot", "Kbob", "Kalice", "Kfred"):
        ks.create(name)
    return ks


def make_cert(keystore, issuer, subject, tag, delegate=False,
              validity=ALWAYS) -> AuthCert:
    cert = AuthCert(issuer=issuer, subject=subject, tag=tag,
                    delegate=delegate, validity=validity)
    return cert.sign(keystore.pair(issuer).private)


class TestValidity:
    def test_open_window_contains_everything(self):
        assert ALWAYS.contains(0.0)
        assert ALWAYS.contains(1e12)

    def test_bounded_window(self):
        v = Validity(10.0, 20.0)
        assert not v.contains(9.9)
        assert v.contains(10.0)
        assert v.contains(20.0)
        assert not v.contains(20.1)

    def test_intersection(self):
        v = Validity(10.0, 30.0).intersect(Validity(20.0, 40.0))
        assert v == Validity(20.0, 30.0)

    def test_intersection_with_open(self):
        v = Validity(10.0, None).intersect(Validity(None, 20.0))
        assert v == Validity(10.0, 20.0)

    def test_empty_window(self):
        assert Validity(30.0, 20.0).is_empty()
        assert not Validity(10.0, 20.0).is_empty()


class TestAuthCertSignatures:
    def test_sign_and_verify(self, keystore):
        cert = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        assert cert.verify(keystore)

    def test_unsigned_fails(self, keystore):
        cert = AuthCert("Kbob", "Kalice", TAG_W)
        assert not cert.verify(keystore)

    def test_tamper_detected(self, keystore):
        cert = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        from dataclasses import replace
        tampered = replace(cert, tag=TAG_RW)
        assert not tampered.verify(keystore)

    def test_to_text_round_trippable_body(self, keystore):
        cert = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        assert "(issuer Kbob)" in cert.to_text()
        assert "(signature" in cert.to_text()

    def test_delegate_flag_in_canonical_bytes(self, keystore):
        with_d = AuthCert("Kbob", "Kalice", TAG_W, delegate=True)
        without = AuthCert("Kbob", "Kalice", TAG_W, delegate=False)
        assert with_d.canonical_bytes() != without.canonical_bytes()


class TestReduceChain:
    def test_two_link_reduction(self, keystore):
        c1 = make_cert(keystore, "Kroot", "Kbob", TAG_RW, delegate=True)
        c2 = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        result = reduce_chain([c1, c2])
        assert result.issuer == "Kroot"
        assert result.subject == "Kalice"
        assert result.tag == TAG_W
        assert not result.delegate

    def test_no_delegate_breaks_chain(self, keystore):
        c1 = make_cert(keystore, "Kroot", "Kbob", TAG_RW, delegate=False)
        c2 = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        with pytest.raises(ChainError):
            reduce_chain([c1, c2])

    def test_subject_issuer_mismatch_breaks(self, keystore):
        c1 = make_cert(keystore, "Kroot", "Kbob", TAG_RW, delegate=True)
        c2 = make_cert(keystore, "Kfred", "Kalice", TAG_W)
        with pytest.raises(ChainError):
            reduce_chain([c1, c2])

    def test_disjoint_tags_break(self, keystore):
        c1 = make_cert(keystore, "Kroot", "Kbob", TAG_R, delegate=True)
        c2 = make_cert(keystore, "Kbob", "Kalice", TAG_W)
        with pytest.raises(ChainError):
            reduce_chain([c1, c2])

    def test_validity_intersection(self, keystore):
        c1 = make_cert(keystore, "Kroot", "Kbob", TAG_RW, delegate=True,
                       validity=Validity(0.0, 100.0))
        c2 = make_cert(keystore, "Kbob", "Kalice", TAG_W,
                       validity=Validity(50.0, 200.0))
        result = reduce_chain([c1, c2])
        assert result.validity == Validity(50.0, 100.0)

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainError):
            reduce_chain([])

    def test_five_tuple_compose_none_on_failure(self, keystore):
        t1 = FiveTuple("a", "b", False, TAG_RW, ALWAYS)
        t2 = FiveTuple("b", "c", False, TAG_W, ALWAYS)
        assert t1.compose(t2) is None  # no delegate bit


class TestCertStore:
    def test_find_direct_chain(self, keystore):
        store = CertStore(keystore)
        assert store.add_auth(make_cert(keystore, "Kroot", "Kbob", TAG_RW))
        chain = store.find_chain("Kroot", "Kbob", TAG_W)
        assert chain is not None
        assert len(chain) == 1

    def test_find_delegated_chain(self, keystore):
        store = CertStore(keystore)
        store.add_auth(make_cert(keystore, "Kroot", "Kbob", TAG_RW,
                                 delegate=True))
        store.add_auth(make_cert(keystore, "Kbob", "Kalice", TAG_W))
        chain = store.find_chain("Kroot", "Kalice", TAG_W)
        assert chain is not None
        assert len(chain) == 2
        reduced = reduce_chain(chain)
        assert reduced.subject == "Kalice"

    def test_no_chain_without_delegate(self, keystore):
        store = CertStore(keystore)
        store.add_auth(make_cert(keystore, "Kroot", "Kbob", TAG_RW))
        store.add_auth(make_cert(keystore, "Kbob", "Kalice", TAG_W))
        assert store.find_chain("Kroot", "Kalice", TAG_W) is None

    def test_tag_narrowing_along_chain(self, keystore):
        store = CertStore(keystore)
        store.add_auth(make_cert(keystore, "Kroot", "Kbob", TAG_R,
                                 delegate=True))
        store.add_auth(make_cert(keystore, "Kbob", "Kalice", TAG_W))
        # Alice's write is outside what Bob can delegate.
        assert not store.is_authorised("Kroot", "Kalice", TAG_W)

    def test_expired_cert_skipped(self, keystore):
        store = CertStore(keystore)
        store.add_auth(make_cert(keystore, "Kroot", "Kbob", TAG_W,
                                 validity=Validity(0.0, 10.0)))
        assert store.is_authorised("Kroot", "Kbob", TAG_W, at_time=5.0)
        assert not store.is_authorised("Kroot", "Kbob", TAG_W, at_time=11.0)

    def test_bad_signature_rejected_at_add(self, keystore):
        store = CertStore(keystore)
        unsigned = AuthCert("Kroot", "Kbob", TAG_W)
        assert not store.add_auth(unsigned)
        assert store.auth_certs == []

    def test_delegation_cycle_terminates(self, keystore):
        store = CertStore(keystore)
        store.add_auth(make_cert(keystore, "Kbob", "Kalice", TAG_W,
                                 delegate=True))
        store.add_auth(make_cert(keystore, "Kalice", "Kbob", TAG_W,
                                 delegate=True))
        assert not store.is_authorised("Kbob", "Kfred", TAG_W)


class TestSDSINames:
    def test_simple_name_resolution(self, keystore):
        store = CertStore(keystore)
        cert = NameCert("Kroot", "manager", "Kbob").sign(
            keystore.pair("Kroot").private)
        assert store.add_name(cert)
        assert store.resolve_name("Kroot", "manager") == {"Kbob"}

    def test_name_with_multiple_members(self, keystore):
        store = CertStore(keystore)
        for subject in ("Kbob", "Kalice"):
            store.add_name(NameCert("Kroot", "staff", subject).sign(
                keystore.pair("Kroot").private))
        assert store.resolve_name("Kroot", "staff") == {"Kbob", "Kalice"}

    def test_linked_names(self, keystore):
        store = CertStore(keystore)
        store.add_name(NameCert("Kroot", "managers", "Kbob: team").sign(
            keystore.pair("Kroot").private))
        store.add_name(NameCert("Kbob", "team", "Kalice").sign(
            keystore.pair("Kbob").private))
        assert store.resolve_name("Kroot", "managers") == {"Kalice"}

    def test_name_cycle_resolves_empty(self, keystore):
        store = CertStore(keystore)
        store.add_name(NameCert("Kroot", "a", "Kroot: a").sign(
            keystore.pair("Kroot").private))
        assert store.resolve_name("Kroot", "a") == set()

    def test_auth_cert_with_name_subject(self, keystore):
        store = CertStore(keystore)
        store.add_name(NameCert("Kroot", "managers", "Kbob").sign(
            keystore.pair("Kroot").private))
        store.add_auth(make_cert(keystore, "Kroot", "Kroot: managers", TAG_W))
        assert store.is_authorised("Kroot", "Kbob", TAG_W)
        assert not store.is_authorised("Kroot", "Kalice", TAG_W)

    def test_name_cert_signature(self, keystore):
        cert = NameCert("Kroot", "manager", "Kbob")
        assert not cert.verify(keystore)
        signed = cert.sign(keystore.pair("Kroot").private)
        assert signed.verify(keystore)
        assert signed.full_name() == "Kroot's manager"

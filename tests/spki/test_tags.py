"""Tests for the SPKI tag-intersection algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TagError
from repro.spki.sexp import parse_sexp
from repro.spki.tags import STAR, intersect_tags, tag_implies


def tag(text):
    return parse_sexp(text)


class TestStar:
    def test_star_is_identity(self):
        t = tag("(ftp (host example.com))")
        assert intersect_tags(STAR, t) == t
        assert intersect_tags(t, STAR) == t

    def test_star_with_star(self):
        assert intersect_tags(STAR, STAR) == STAR


class TestAtoms:
    def test_equal_atoms(self):
        assert intersect_tags("read", "read") == "read"

    def test_different_atoms_disjoint(self):
        assert intersect_tags("read", "write") is None

    def test_atom_vs_list_disjoint(self):
        assert intersect_tags("read", tag("(read)")) is None


class TestLists:
    def test_equal_lists(self):
        t = tag("(ftp example.com)")
        assert intersect_tags(t, t) == t

    def test_shorter_list_implies_longer(self):
        # RFC 2693: a list tag authorises lists with extra trailing fields.
        broad = tag("(ftp (host example.com))")
        narrow = tag("(ftp (host example.com) (dir /pub))")
        assert intersect_tags(broad, narrow) == narrow
        assert intersect_tags(narrow, broad) == narrow

    def test_mismatched_heads_disjoint(self):
        assert intersect_tags(tag("(ftp x)"), tag("(http x)")) is None


class TestSets:
    def test_set_member_selection(self):
        s = tag("(* set read write)")
        assert intersect_tags(s, "read") == "read"
        assert intersect_tags("write", s) == "write"
        assert intersect_tags(s, "delete") is None

    def test_set_against_set(self):
        a = tag("(* set read write)")
        b = tag("(* set write delete)")
        assert intersect_tags(a, b) == "write"

    def test_set_multi_survivor(self):
        a = tag("(* set read write delete)")
        b = tag("(* set write delete audit)")
        result = intersect_tags(a, b)
        assert result == ("*", "set", "write", "delete")

    def test_set_inside_list(self):
        a = tag("(perm (* set read write))")
        b = tag("(perm read)")
        assert intersect_tags(a, b) == ("perm", "read")


class TestPrefix:
    def test_prefix_matches_atom(self):
        p = tag('(* prefix /pub/)')
        assert intersect_tags(p, "/pub/file") == "/pub/file"
        assert intersect_tags(p, "/etc/passwd") is None

    def test_prefix_against_prefix(self):
        a = tag("(* prefix /pub/)")
        b = tag("(* prefix /pub/docs/)")
        assert intersect_tags(a, b) == b
        assert intersect_tags(b, a) == b

    def test_disjoint_prefixes(self):
        assert intersect_tags(tag("(* prefix /a/)"), tag("(* prefix /b/)")) is None


class TestRange:
    def test_range_contains_number(self):
        r = tag("(* range numeric ge 1 le 9)")
        assert intersect_tags(r, "5") == "5"
        assert intersect_tags(r, "1") == "1"
        assert intersect_tags(r, "10") is None
        assert intersect_tags(r, "abc") is None

    def test_strict_bounds(self):
        r = tag("(* range numeric gt 1 lt 9)")
        assert intersect_tags(r, "1") is None
        assert intersect_tags(r, "9") is None
        assert intersect_tags(r, "2") == "2"

    def test_range_intersection(self):
        a = tag("(* range numeric ge 1 le 9)")
        b = tag("(* range numeric ge 5 le 20)")
        merged = intersect_tags(a, b)
        assert intersect_tags(merged, "5") == "5"
        assert intersect_tags(merged, "9") == "9"
        assert intersect_tags(merged, "4") is None
        assert intersect_tags(merged, "10") is None

    def test_disjoint_ranges(self):
        a = tag("(* range numeric le 3)")
        b = tag("(* range numeric ge 5)")
        assert intersect_tags(a, b) is None

    def test_touching_ranges_strictness(self):
        a = tag("(* range numeric le 5)")
        b = tag("(* range numeric ge 5)")
        assert intersect_tags(a, b) is not None
        a_strict = tag("(* range numeric lt 5)")
        assert intersect_tags(a_strict, b) is None

    def test_malformed_range_rejected(self):
        with pytest.raises(TagError):
            intersect_tags(tag("(* range alpha ge 1)"), "2")
        with pytest.raises(TagError):
            intersect_tags(tag("(* range numeric ge)"), "1")
        with pytest.raises(TagError):
            intersect_tags(tag("(* range numeric zz 1)"), "1")

    def test_unknown_star_form_rejected(self):
        with pytest.raises(TagError):
            intersect_tags(tag("(* bogus x)"), "y")


class TestTagImplies:
    def test_star_implies_everything(self):
        assert tag_implies(STAR, tag("(ftp (host h))"))

    def test_nothing_implies_star_except_star(self):
        assert not tag_implies(tag("(ftp x)"), STAR)
        assert tag_implies(STAR, STAR)

    def test_prefix_implies_instance(self):
        assert tag_implies(tag("(* prefix /pub/)"), "/pub/x")
        assert not tag_implies("/pub/x", tag("(* prefix /pub/)"))

    def test_list_implication(self):
        broad = tag("(ftp (host example.com))")
        narrow = tag("(ftp (host example.com) (dir /pub))")
        assert tag_implies(broad, narrow)
        assert not tag_implies(narrow, broad)


class TestAlgebraProperties:
    concrete = st.one_of(
        st.sampled_from(["read", "write", "delete", "5", "7"]),
        st.sampled_from([
            ("perm", "read"),
            ("perm", "write"),
            ("ftp", ("host", "example.com")),
            ("ftp", ("host", "example.com"), ("dir", "/pub")),
        ]),
    )
    any_tag = st.one_of(
        concrete,
        st.just(STAR),
        st.sampled_from([
            ("*", "set", "read", "write"),
            ("*", "prefix", "/pub/"),
            ("*", "range", "numeric", "ge", "1", "le", "9"),
        ]),
    )

    @settings(max_examples=100, deadline=None)
    @given(any_tag, any_tag)
    def test_intersection_commutes_on_concrete_results(self, a, b):
        ab = intersect_tags(a, b)
        ba = intersect_tags(b, a)
        # The representation may differ for *-forms; emptiness must agree.
        assert (ab is None) == (ba is None)

    @settings(max_examples=100, deadline=None)
    @given(any_tag)
    def test_idempotent_emptiness(self, a):
        assert intersect_tags(a, a) is not None

    @settings(max_examples=100, deadline=None)
    @given(concrete, any_tag)
    def test_intersection_implied_by_both(self, a, b):
        # The intersection is a subset of each operand's permission set.
        result = intersect_tags(a, b)
        if result is not None:
            assert tag_implies(a, result)
            assert tag_implies(b, result)

"""Tests for S-expression parsing and printing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SExpressionError
from repro.spki.sexp import parse_sexp, sexp_to_text


class TestParse:
    def test_bare_atom(self):
        assert parse_sexp("hello") == "hello"

    def test_quoted_atom(self):
        assert parse_sexp('"two words"') == "two words"

    def test_quoted_atom_with_escapes(self):
        assert parse_sexp(r'"a\"b"') == 'a"b'

    def test_empty_list(self):
        assert parse_sexp("()") == ()

    def test_nested_lists(self):
        assert parse_sexp("(a (b c) d)") == ("a", ("b", "c"), "d")

    def test_whitespace_tolerated(self):
        assert parse_sexp("  ( a\n\tb )  ") == ("a", "b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SExpressionError):
            parse_sexp("(a) b")

    def test_unterminated_list(self):
        with pytest.raises(SExpressionError):
            parse_sexp("(a (b)")

    def test_unterminated_quote(self):
        with pytest.raises(SExpressionError):
            parse_sexp('"oops')

    def test_stray_close_paren(self):
        with pytest.raises(SExpressionError):
            parse_sexp(")")

    def test_empty_input(self):
        with pytest.raises(SExpressionError):
            parse_sexp("")


class TestPrint:
    def test_atom(self):
        assert sexp_to_text("abc") == "abc"

    def test_atom_needing_quotes(self):
        assert sexp_to_text("two words") == '"two words"'
        assert sexp_to_text("") == '""'
        assert sexp_to_text("a(b") == '"a(b"'

    def test_list(self):
        assert sexp_to_text(("tag", ("ftp", "host"))) == "(tag (ftp host))"

    def test_rejects_non_sexp(self):
        with pytest.raises(SExpressionError):
            sexp_to_text(42)


# Random S-expressions for round-trip testing.
atoms = st.text(alphabet="abcxyz09._-/ ()\"\\", min_size=0, max_size=8)


def sexps(depth=3):
    if depth == 0:
        return atoms
    return st.one_of(
        atoms,
        st.lists(sexps(depth - 1), max_size=4).map(tuple),
    )


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(sexps())
    def test_parse_print_identity(self, expr):
        assert parse_sexp(sexp_to_text(expr)) == expr

"""Tests for the identity-based baseline and its contrast with trust
management (Section 3)."""

import pytest

from repro.crypto import KeyPair, Keystore
from repro.errors import CredentialError
from repro.identity.authz import AuthorisationDatabase, IdentityAuthoriser
from repro.identity.certs import CertificateAuthority
from repro.keynote.api import KeyNoteSession


@pytest.fixture
def ca() -> CertificateAuthority:
    return CertificateAuthority("AcmeCA")


@pytest.fixture
def pipeline(ca):
    db = AuthorisationDatabase()
    db.grant("John Smith", "SalariesDB", "read")
    return IdentityAuthoriser(ca, db), db


class TestCertificates:
    def test_issue_and_verify(self, ca):
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key)
        assert cert.verify(ca.public_key)

    def test_forged_certificate_rejected(self, ca):
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key)
        forged = type(cert)(serial=cert.serial, issuer=cert.issuer,
                            subject_name="Jane Doe",
                            subject_key=cert.subject_key,
                            signature=cert.signature)
        assert not forged.verify(ca.public_key)

    def test_validity_window(self, ca):
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key, not_before=10.0, not_after=20.0)
        assert cert.valid_at(15.0)
        assert not cert.valid_at(5.0)
        with pytest.raises(CredentialError):
            ca.validate(cert, at_time=25.0)

    def test_revocation(self, ca):
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key)
        ca.validate(cert)
        ca.revoke(cert.serial)
        with pytest.raises(CredentialError):
            ca.validate(cert)

    def test_wrong_ca_rejected(self, ca):
        other = CertificateAuthority("OtherCA")
        key = KeyPair.generate("john").public.encode()
        cert = other.issue("John Smith", key)
        with pytest.raises(CredentialError):
            ca.validate(cert)


class TestDatabase:
    def test_grant_lookup_revoke(self):
        db = AuthorisationDatabase()
        db.grant("n", "T", "op")
        assert db.lookup("n", "T", "op")
        assert db.revoke("n", "T", "op")
        assert not db.lookup("n", "T", "op")
        assert not db.revoke("n", "T", "op")

    def test_names(self):
        db = AuthorisationDatabase()
        db.grant("a", "T", "op")
        assert db.names() == {"a"}


class TestPipeline:
    def test_allowed_decision(self, ca, pipeline):
        authoriser, _db = pipeline
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key)
        decision = authoriser.authorise(cert, "SalariesDB", "read")
        assert decision.allowed
        assert not decision.ambiguous

    def test_unlisted_name_denied(self, ca, pipeline):
        authoriser, _db = pipeline
        key = KeyPair.generate("mallory").public.encode()
        cert = ca.issue("Mallory", key)
        assert not authoriser.authorise(cert, "SalariesDB", "read")

    def test_revoked_cannot_reach_database(self, ca, pipeline):
        authoriser, _db = pipeline
        key = KeyPair.generate("john").public.encode()
        cert = ca.issue("John Smith", key)
        ca.revoke(cert.serial)
        with pytest.raises(CredentialError):
            authoriser.authorise(cert, "SalariesDB", "read")
        assert not authoriser.authorise_quietly(cert, "SalariesDB", "read")

    def test_john_smith_ambiguity(self, ca, pipeline):
        """The paper's [10] hazard: two John Smiths, one database row —
        the wrong John Smith gets the right."""
        authoriser, _db = pipeline
        hr_john = ca.issue("John Smith", KeyPair.generate("john-hr")
                           .public.encode())
        intern_john = ca.issue("John Smith", KeyPair.generate("john-intern")
                               .public.encode())
        for cert in (hr_john, intern_john):
            decision = authoriser.authorise(cert, "SalariesDB", "read")
            # Both are allowed — the system cannot tell them apart...
            assert decision.allowed
            # ...but the pipeline at least *flags* the ambiguity.
            assert decision.ambiguous

    def test_trust_management_has_no_ambiguity(self, pipeline):
        """Contrast: KeyNote binds the *key*, so the two John Smiths are
        distinct principals and only the intended one is authorised."""
        keystore = Keystore()
        keystore.create("Kjohn_hr")
        keystore.create("Kjohn_intern")
        session = KeyNoteSession(keystore=keystore)
        session.add_policy(
            'Authorizer: POLICY\nLicensees: "Kjohn_hr"\n'
            'Conditions: app_domain=="SalariesDB" && oper=="read";')
        attrs = {"app_domain": "SalariesDB", "oper": "read"}
        assert session.query(attrs, ["Kjohn_hr"])
        assert not session.query(attrs, ["Kjohn_intern"])

    def test_database_change_flips_decision_without_new_certificate(
            self, ca, pipeline):
        """The coupling the paper criticises: authority lives in the
        database, not the certificate."""
        authoriser, db = pipeline
        cert = ca.issue("John Smith",
                        KeyPair.generate("john").public.encode())
        assert authoriser.authorise(cert, "SalariesDB", "read")
        db.revoke("John Smith", "SalariesDB", "read")
        assert not authoriser.authorise(cert, "SalariesDB", "read")

"""Direct unit tests for identity/authz.py: the AuthorisationDatabase and
the IdentityAuthoriser pipeline mechanics.

The baseline suite (test_identity_baseline.py) reads the paper's Section-3
contrast; this file pins the module's own contract — database semantics,
decision flags, truthiness, the quiet/raising split, and timing.
"""

import pytest

from repro.crypto import KeyPair
from repro.errors import CredentialError
from repro.identity.authz import (
    AuthorisationDatabase,
    IdentityAuthoriser,
    IdentityDecision,
)
from repro.identity.certs import CertificateAuthority


@pytest.fixture
def ca():
    return CertificateAuthority("TestCA")


@pytest.fixture
def db():
    return AuthorisationDatabase()


@pytest.fixture
def authoriser(ca, db):
    return IdentityAuthoriser(ca, db)


def issue(ca, name, seed=None, **kwargs):
    key = KeyPair.generate(seed or name).public.encode()
    return ca.issue(name, key, **kwargs)


class TestAuthorisationDatabase:
    def test_grant_is_idempotent(self, db):
        db.grant("n", "T", "op")
        db.grant("n", "T", "op")
        assert db.lookup("n", "T", "op")
        assert db.revoke("n", "T", "op")
        assert not db.lookup("n", "T", "op")

    def test_rights_are_per_pair(self, db):
        db.grant("n", "T", "read")
        assert not db.lookup("n", "T", "write")
        assert not db.lookup("n", "U", "read")
        assert not db.lookup("m", "T", "read")

    def test_revoke_missing_right_returns_false(self, db):
        assert not db.revoke("ghost", "T", "op")
        db.grant("n", "T", "op")
        assert not db.revoke("n", "T", "other")

    def test_names_reflects_grants_not_revocations(self, db):
        db.grant("a", "T", "op")
        db.grant("b", "T", "op")
        assert db.names() == {"a", "b"}
        db.revoke("a", "T", "op")
        # A name with an (empty) entry still appears: the table keys it.
        assert "b" in db.names()


class TestIdentityDecision:
    def test_truthiness_follows_allowed(self):
        assert IdentityDecision(allowed=True, subject_name="n",
                                ambiguous=False)
        assert not IdentityDecision(allowed=False, subject_name="n",
                                    ambiguous=True)


class TestAuthorisePipeline:
    def test_denied_name_is_not_an_error(self, ca, authoriser):
        decision = authoriser.authorise(issue(ca, "Nobody"), "T", "op")
        assert not decision.allowed
        assert decision.subject_name == "Nobody"
        assert not decision.ambiguous

    def test_allowed_with_subject_name(self, ca, db, authoriser):
        db.grant("Alice", "SalariesDB", "read")
        decision = authoriser.authorise(issue(ca, "Alice"),
                                        "SalariesDB", "read")
        assert decision.allowed and decision.subject_name == "Alice"

    def test_validation_runs_before_the_database(self, ca, db, authoriser):
        db.grant("Alice", "T", "op")
        cert = issue(ca, "Alice")
        ca.revoke(cert.serial)
        with pytest.raises(CredentialError):
            authoriser.authorise(cert, "T", "op")

    def test_validity_window_uses_at_time(self, ca, db, authoriser):
        db.grant("Alice", "T", "op")
        cert = issue(ca, "Alice", not_before=10.0, not_after=20.0)
        assert authoriser.authorise(cert, "T", "op", at_time=15.0)
        with pytest.raises(CredentialError):
            authoriser.authorise(cert, "T", "op", at_time=25.0)

    def test_ambiguity_flag_requires_a_distinct_live_key(self, ca, db,
                                                         authoriser):
        db.grant("Alice", "T", "op")
        first = issue(ca, "Alice", seed="alice-1")
        assert not authoriser.authorise(first, "T", "op").ambiguous
        twin = issue(ca, "Alice", seed="alice-2")
        assert authoriser.authorise(first, "T", "op").ambiguous
        assert authoriser.authorise(twin, "T", "op").ambiguous
        # Revoking the twin resolves the ambiguity: revoked binds no longer
        # count.
        ca.revoke(twin.serial)
        assert not authoriser.authorise(first, "T", "op").ambiguous

    def test_same_key_reissue_is_not_ambiguous(self, ca, authoriser):
        key = KeyPair.generate("alice").public.encode()
        first = ca.issue("Alice", key)
        ca.issue("Alice", key)  # renewal: same name, same key
        assert not authoriser.authorise(first, "T", "op").ambiguous


class TestAuthoriseQuietly:
    def test_maps_validation_failure_to_deny(self, ca, db, authoriser):
        db.grant("Alice", "T", "op")
        cert = issue(ca, "Alice")
        ca.revoke(cert.serial)
        decision = authoriser.authorise_quietly(cert, "T", "op")
        assert not decision.allowed
        assert decision.subject_name == "Alice"
        assert not decision.ambiguous

    def test_passes_through_a_valid_decision(self, ca, db, authoriser):
        db.grant("Alice", "T", "op")
        assert authoriser.authorise_quietly(issue(ca, "Alice"), "T", "op")

    def test_foreign_ca_maps_to_deny(self, db, authoriser):
        other = CertificateAuthority("OtherCA")
        db.grant("Alice", "T", "op")
        assert not authoriser.authorise_quietly(issue(other, "Alice"),
                                                "T", "op")

"""Perf-8: organisation-scale sweeps.

A deployment far larger than the paper's running example: hundreds of users
across tens of domains, pushed through the full configure -> comprehend ->
consistency cycle, plus selection-policy and fault-rate scheduling sweeps.
"""

import pytest

from benchmarks.conftest import synthetic_policy
from repro.core.framework import HeterogeneousSecurityFramework
from repro.middleware.ejb import EJBServer
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.patterns import fan_out_in


def test_perf_configure_large_org(benchmark):
    """configure() over a 20-domain, 200-user policy on one EJB estate."""
    policy = synthetic_policy(n_domains=4, n_roles=5, n_types=3, n_perms=2,
                              n_users=200)
    # Readdress domains into one server's scheme.
    server = EJBServer(host="big", server_name="e")
    readdressed = type(policy)("big")
    for grant in policy.grants:
        readdressed.grant(f"big:e/{grant.domain}", grant.role,
                          grant.object_type, grant.permission)
    for assignment in policy.assignments:
        readdressed.assign(assignment.user, f"big:e/{assignment.domain}",
                           assignment.role)

    def configure():
        framework = HeterogeneousSecurityFramework()
        fresh = EJBServer(host="big", server_name="e")
        framework.register_middleware(
            fresh, {f"big:e/Dom{d}" for d in range(4)})
        report = framework.configure(readdressed)
        return framework, fresh, report

    framework, fresh, report = benchmark(configure)
    assert report.is_consistent()
    assert fresh.invoke("User0", "Type0", "perm0")


def test_perf_consistency_check_large_org(benchmark):
    policy = synthetic_policy(n_domains=4, n_roles=5, n_types=3, n_perms=2,
                              n_users=200)
    readdressed = type(policy)("big")
    for grant in policy.grants:
        readdressed.grant(f"big:e/{grant.domain}", grant.role,
                          grant.object_type, grant.permission)
    for assignment in policy.assignments:
        readdressed.assign(assignment.user, f"big:e/{assignment.domain}",
                           assignment.role)
    framework = HeterogeneousSecurityFramework()
    server = EJBServer(host="big", server_name="e")
    framework.register_middleware(server,
                                  {f"big:e/Dom{d}" for d in range(4)})
    framework.configure(readdressed)
    report = benchmark(framework.check_consistency)
    assert report.is_consistent()


@pytest.mark.parametrize("policy_name", ["first", "least-loaded",
                                         "round-robin"])
def test_perf_selection_policies(benchmark, policy_name):
    """DESIGN ablation companion: placement policy cost on a wide fan-out."""
    net = SimulatedNetwork()
    master = WebComMaster("m", net, selection_policy=policy_name)
    ops = {"work": lambda v: v + 1, "join": lambda *vs: sum(vs)}
    for i in range(6):
        WebComClient(f"c{i}", net, ops).register_with("m")
    net.run_until_quiet()
    graph = fan_out_in("f", "work", "join", width=12)
    result = benchmark(master.run_graph, graph, {"x": 1})
    assert result == 24


@pytest.mark.parametrize("crash_fraction", [0.0, 0.5],
                         ids=["healthy", "half-crashed"])
def test_perf_scheduling_under_faults(benchmark, crash_fraction):
    """Throughput under client failures: rescheduling costs, not deadlock."""
    ops = {"work": lambda v: v + 1, "join": lambda *vs: sum(vs)}

    def run():
        net = SimulatedNetwork()
        master = WebComMaster("m", net, max_attempts=8)
        n_clients = 8
        for i in range(n_clients):
            WebComClient(f"c{i}", net, ops).register_with("m")
        net.run_until_quiet()
        for i in range(int(n_clients * crash_fraction)):
            net.crash(f"c{i}")
        graph = fan_out_in("f", "work", "join", width=8)
        return master.run_graph(graph, {"x": 1})

    assert benchmark(run) == 16

"""Figure 11: the WebCom IDE's security palette.

Artifact: interrogation of three middleware technologies into one component
palette, the authorised (domain, role, user) combination analysis for a
highlighted component, and scheduling under full and partial placement
specifications.
"""

from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.middleware.registry import MiddlewareRegistry
from repro.os_sec.windows import WindowsSecurity
from repro.webcom.ide import PlacementSpec, WebComIDE


def build_registry() -> MiddlewareRegistry:
    registry = MiddlewareRegistry()
    ejb = EJBServer(host="hx", server_name="s1")
    ejb.deploy_container("Payroll")
    ejb.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("Payroll", "Manager")
    ejb.add_method_permission("Payroll", "SalariesDB", "Manager", "read")
    ejb.add_user("Bob")
    ejb.assign_role("Payroll", "Manager", "Bob")
    registry.register(ejb)

    orb = CorbaOrb(machine="hy", orb_name="o1")
    orb.register_interface("ReportGen", operations=("render",))
    orb.declare_role("Analyst")
    orb.grant_right("Analyst", "ReportGen", "render")
    orb.assign_role("Analyst", "Carol")
    orb.assign_role("Analyst", "Dan")
    registry.register(orb)

    windows = WindowsSecurity()
    windows.add_domain("FINANCE")
    windows.add_user("FINANCE", "alice")
    com = ComPlusCatalogue("mz", windows)
    com.create_application("Archive", nt_domain="FINANCE")
    com.register_component("Archive", "DocStore")
    com.declare_role("Archive", "Clerk")
    com.grant_permission("Archive", "Clerk", "DocStore", "Access")
    com.add_role_member("Archive", "Clerk", "FINANCE", "alice")
    registry.register(com)
    return registry


def interrogate_and_analyse():
    ide = WebComIDE(build_registry())
    palette = ide.interrogate()
    placements = ide.valid_placements("hy/o1#ReportGen")
    resolved = ide.resolve_user("hy/o1#ReportGen",
                                PlacementSpec("hy/o1", "Analyst"))
    return ide, palette, placements, resolved


def test_fig11_ide(benchmark):
    ide, palette, placements, resolved = benchmark(interrogate_and_analyse)

    # The palette spans all three middleware technologies.
    assert len(palette) == 3
    middleware_kinds = {entry.component.middleware for entry in palette}
    assert len(middleware_kinds) == 3

    # Combination analysis for the highlighted ReportGen component.
    entry = palette.entry("hy/o1#ReportGen")
    assert entry.users() == {"Carol", "Dan"}
    assert entry.domain_roles() == {("hy/o1", "Analyst")}

    # Full placements enumerate both analysts.
    assert PlacementSpec("hy/o1", "Analyst", "Carol") in placements
    assert PlacementSpec("hy/o1", "Analyst", "Dan") in placements

    # Partial specification resolves deterministically.
    assert resolved == "Carol"

    print("\n=== Figure 11 (regenerated): component palette ===")
    for entry in palette:
        combos = sorted({(c.domain, c.role, c.user)
                         for c in entry.combinations})
        print(f"  {entry.component.component_id}: {combos}")

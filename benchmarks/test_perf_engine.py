"""Perf-8: the compiled bitset RBAC engine.

Times the BENCH_8 surfaces at a pytest-benchmark-friendly scale (the CI
gate runs the full 100k-user universe through ``repro bench-engine
--check``):

- cold build + first batch (interning, closure construction, answering);
- warm ``check_access_many`` batch throughput;
- the set-based comparator on the same universe (sampled);
- incremental delta maintenance (grant + assign churn on a built engine);
- compiled KeyNote bytecode vs the tree-walking evaluator.
"""

import pytest

from repro.keynote.eval import ConditionEvaluator, compile_conditions
from repro.keynote.parser import parse_conditions
from repro.keynote.values import DEFAULT_VALUE_SET
from repro.rbac.bench import build_requests, build_universe

_USERS = 5_000
_ROLES = 500
_BATCH = 2_000


def _universe(compiled: bool):
    policy = build_universe(_USERS, _ROLES, compiled=compiled, name="perf")
    return policy, build_requests(policy, _BATCH)


def test_perf_engine_cold_build_and_batch(benchmark):
    def cold():
        policy, requests = _universe(compiled=True)
        return policy.check_access_many(requests)

    answers = benchmark(cold)
    assert len(answers) == _BATCH


def test_perf_engine_warm_batch(benchmark):
    policy, requests = _universe(compiled=True)
    policy.check_access_many(requests)  # build + prime
    answers = benchmark(policy.check_access_many, requests)
    assert len(answers) == _BATCH


def test_perf_set_based_checks(benchmark):
    policy, requests = _universe(compiled=False)
    sample = requests[:20]

    def set_based():
        return [policy.check_access(u, ot, p) for u, ot, p in sample]

    assert len(benchmark(set_based)) == len(sample)


def test_perf_engine_delta_maintenance(benchmark):
    policy, requests = _universe(compiled=True)
    policy.check_access_many(requests)  # build
    toggle = [0]

    def churn():
        toggle[0] += 1
        user = f"u{toggle[0] % _USERS}"
        policy.assign(user, "d0", "r0")
        policy.unassign(user, "d0", "r0")
        return policy.check_access(user, "invoice", "read")

    benchmark(churn)
    assert policy.engine_stats()["builds"] == 1


_CONDITIONS = ('app_domain == "webcom" && (op == "stage" || op == "combine")'
               ' && level < 4')
_ATTRS = {"app_domain": "webcom", "op": "stage", "level": "2"}


def test_perf_keynote_tree_walk(benchmark):
    program = parse_conditions(_CONDITIONS)

    def walk():
        return ConditionEvaluator(_ATTRS,
                                  DEFAULT_VALUE_SET).program_value(program)

    assert benchmark(walk) == "true"


def test_perf_keynote_bytecode(benchmark):
    compiled = compile_conditions(parse_conditions(_CONDITIONS))
    assert benchmark(compiled.value, _ATTRS, DEFAULT_VALUE_SET) == "true"

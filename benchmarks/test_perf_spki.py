"""Perf-5: SPKI chain discovery / reduction scaling, and KeyNote-vs-SPKI
backend comparison on the paper's Salaries scenario."""

import pytest

from repro.core.scenarios import salaries_policy
from repro.crypto import Keystore
from repro.keynote.compliance import ComplianceChecker
from repro.spki.cert import AuthCert
from repro.spki.chain import CertStore, reduce_chain
from repro.spki.sexp import parse_sexp
from repro.translate.common import action_attributes
from repro.translate.to_keynote import encode_full
from repro.translate.to_spki import spki_policy_certificates, spki_request_tag

TAG = parse_sexp("(salaries (* set read write))")


def build_chain_store(depth: int) -> tuple[CertStore, Keystore, str]:
    keystore = Keystore()
    names = [f"Kc{i}" for i in range(depth + 1)]
    for name in names:
        keystore.create(name)
    store = CertStore(keystore)
    for a, b in zip(names, names[1:]):
        cert = AuthCert(issuer=a, subject=b, tag=TAG, delegate=True).sign(
            keystore.pair(a).private)
        store.add_auth(cert)
    return store, keystore, names[-1]


@pytest.mark.parametrize("depth", [2, 8, 32], ids=lambda d: f"depth{d}")
def test_perf_chain_discovery(benchmark, depth):
    store, _keystore, leaf = build_chain_store(depth)
    chain = benchmark(store.find_chain, "Kc0", leaf,
                      parse_sexp("(salaries read)"))
    assert chain is not None
    assert len(chain) == depth


def test_perf_chain_reduction(benchmark):
    store, _keystore, leaf = build_chain_store(16)
    chain = store.find_chain("Kc0", leaf, parse_sexp("(salaries read)"))
    reduced = benchmark(reduce_chain, chain)
    assert reduced.subject == leaf


def test_perf_spki_backend_salaries(benchmark):
    """The Salaries access matrix through the SPKI backend."""
    keystore = Keystore()
    policy = salaries_policy()
    auth_certs, name_certs = spki_policy_certificates(policy, "KWebCom",
                                                      keystore)
    store = CertStore(keystore)
    for cert in auth_certs:
        store.add_auth(cert)

    def query_matrix():
        return [store.is_authorised(
                    "Kself", "Kbob",
                    spki_request_tag("Finance", "Manager", "SalariesDB",
                                     perm))
                for perm in ("read", "write")]

    results = benchmark(query_matrix)
    assert results == [True, True]


def test_perf_keynote_backend_salaries(benchmark):
    """The same matrix through KeyNote, for the backend comparison."""
    keystore = Keystore()
    policy = salaries_policy()
    policy_cred, memberships = encode_full(policy, "KWebCom", keystore)
    checker = ComplianceChecker([policy_cred] + memberships,
                                keystore=keystore)

    def query_matrix():
        return [checker.query(
                    action_attributes("Finance", "Manager", "SalariesDB",
                                      perm), ["Kbob"]) == "true"
                for perm in ("read", "write")]

    results = benchmark(query_matrix)
    assert results == [True, True]

"""Figure 5: WebCom's KeyNote POLICY for the Salaries Database.

Artifact: the POLICY credential encoding the HasPermission table, with the
paper's compressed-permission shape, plus the exact round-trip back to
relations (comprehension).
"""

from repro.translate.from_keynote import comprehend_credentials
from repro.translate.to_keynote import encode_full, encode_policy


def encode_and_round_trip(fig1, keystore):
    policy_cred, memberships = encode_full(fig1, "KWebCom", keystore)
    recovered = comprehend_credentials([policy_cred] + memberships,
                                       keystore=keystore)
    return policy_cred, memberships, recovered


def test_fig05_policy_encoding(benchmark, fig1, keystore):
    policy_cred, memberships, recovered = benchmark(
        encode_and_round_trip, fig1, keystore)

    text = policy_cred.to_text()
    # The shapes the figure prints:
    assert 'Licensees: "KWebCom"' in text
    assert 'app_domain=="WebCom"' in text
    assert 'ObjectType=="SalariesDB"' in text
    assert 'Domain=="Sales" && Role=="Manager"' in text
    assert '(Permission=="read" || Permission=="write")' in text
    # Comprehension recovers the Figure-1 relations exactly.
    assert recovered == fig1
    assert len(memberships) == 5

    print("\n=== Figure 5 (regenerated) ===")
    print(text)
    print(f"round-trip: {len(recovered.grants)} grants, "
          f"{len(recovered.assignments)} assignments recovered exactly")


def test_fig05_encoding_only(benchmark, fig1):
    """Encoding alone (no signing, no comprehension) for the timing table."""
    credential = benchmark(encode_policy, fig1, "KWebCom")
    assert credential.is_policy

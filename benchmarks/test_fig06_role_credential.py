"""Figure 6: KWebCom authorises Claire to be a Manager.

Artifact: the signed role-membership credential.  The paper's Figure 6
prints ``Domain=="Finance"`` while its own Figure-1 table assigns Claire to
*Sales* — we regenerate both the literal credential and the table-consistent
one, and verify signatures and membership semantics for each.
"""

from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.translate.common import membership_attributes
from repro.translate.to_keynote import membership_conditions

ADMIN_ROOT = ('Authorizer: POLICY\nLicensees: "KWebCom"\n'
              'Conditions: app_domain=="WebCom";')


def issue_both(keystore):
    literal = Credential.build(
        authorizer="KWebCom", licensees='"Kclaire"',
        conditions=membership_conditions("Finance", "Manager"),
    ).sign(keystore.pair("KWebCom").private)
    corrected = Credential.build(
        authorizer="KWebCom", licensees='"Kclaire"',
        conditions=membership_conditions("Sales", "Manager"),
    ).sign(keystore.pair("KWebCom").private)
    return literal, corrected


def test_fig06_role_credential(benchmark, keystore):
    literal, corrected = benchmark(issue_both, keystore)

    assert literal.verify(keystore)
    assert corrected.verify(keystore)
    assert 'Domain=="Finance"' in literal.to_text()       # as printed
    assert 'Domain=="Sales"' in corrected.to_text()       # per Figure 1

    root = Credential.from_text(ADMIN_ROOT)
    checker = ComplianceChecker([root, literal], keystore=keystore)
    assert checker.query(membership_attributes("Finance", "Manager"),
                         ["Kclaire"]) == "true"
    assert checker.query(membership_attributes("Sales", "Manager"),
                         ["Kclaire"]) == "false"

    print("\n=== Figure 6 (regenerated, literal reading) ===")
    print(literal.to_text())

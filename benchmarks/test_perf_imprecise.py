"""Perf-7: imprecise delegation ([13]) — cost and recall ablation.

Exact compliance checking vs the similarity-relaxed checker, on queries whose
attribute values are near-misses of the credential vocabulary.
"""

import pytest

from repro.crypto import Keystore
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.translate.imprecise import ImpreciseChecker


def build(keystore):
    policy = Credential.build(
        "POLICY", '"Kbob"',
        'app_domain=="WebCom" && Domain=="Finance" && Role=="Manager" '
        '&& Permission=="read"')
    return [policy]


EXACT_ATTRS = {"app_domain": "WebCom", "Domain": "Finance",
               "Role": "Manager", "Permission": "read"}
NEAR_ATTRS = {"app_domain": "WebCom", "Domain": "FinanceDept",
              "Role": "Manager", "Permission": "read"}


def test_perf_exact_checker_on_near_miss(benchmark):
    """Baseline: the strict checker simply denies the near-miss."""
    keystore = Keystore()
    keystore.create("Kbob")
    checker = ComplianceChecker(build(keystore), keystore=keystore)
    result = benchmark(checker.query, NEAR_ATTRS, ["Kbob"])
    assert result == "false"  # zero recall on near-misses


def test_perf_imprecise_checker_exact_path(benchmark):
    """The relaxed checker costs nothing extra when the match is exact."""
    keystore = Keystore()
    keystore.create("Kbob")
    checker = ImpreciseChecker(build(keystore), keystore=keystore)
    result = benchmark(checker.query, EXACT_ATTRS, ["Kbob"])
    assert result.authorized
    assert result.similarity == 1.0


def test_perf_imprecise_checker_near_miss(benchmark):
    """The relaxed checker recovers the near-miss, at a measurable cost."""
    keystore = Keystore()
    keystore.create("Kbob")
    checker = ImpreciseChecker(build(keystore), keystore=keystore)
    result = benchmark(checker.query, NEAR_ATTRS, ["Kbob"])
    assert result.authorized
    assert result.substitutions == {"Domain": "Finance"}


@pytest.mark.parametrize("vocab_size", [4, 32], ids=lambda n: f"vocab{n}")
def test_perf_imprecise_vocabulary_scaling(benchmark, vocab_size):
    """Cost grows with the harvested vocabulary (candidate scan)."""
    keystore = Keystore()
    keystore.create("Kbob")
    assertions = build(keystore)
    for i in range(vocab_size):
        assertions.append(Credential.build(
            "POLICY", '"Kbob"',
            f'app_domain=="WebCom" && Domain=="Dept{i:02d}" '
            f'&& Role=="Manager" && Permission=="read"'))
    checker = ImpreciseChecker(assertions, keystore=keystore)
    result = benchmark(checker.query, NEAR_ATTRS, ["Kbob"])
    assert result.authorized

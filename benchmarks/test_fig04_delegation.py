"""Figure 4: Bob delegates write access to clerk Alice.

Artifact: the signed delegation credential and the chain decisions of the
paper's Example 2 — Alice may write (delegated) but not read.
"""

from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential

FIG2 = ('Authorizer: POLICY\nLicensees: "Kbob"\n'
        'Conditions: app_domain=="SalariesDB" && '
        '(oper=="read" || oper=="write");')


def build_chain(keystore):
    policy = Credential.from_text(FIG2)
    fig4 = Credential.build(
        authorizer="Kbob",
        licensees='"Kalice"',
        conditions='app_domain=="SalariesDB" && oper=="write"',
    ).sign(keystore.pair("Kbob").private)
    checker = ComplianceChecker([policy, fig4], keystore=keystore)
    decisions = {
        (key, oper): checker.query(
            {"app_domain": "SalariesDB", "oper": oper}, [key])
        for key in ("Kbob", "Kalice") for oper in ("read", "write")
    }
    return fig4, decisions


def test_fig04_delegation(benchmark, keystore):
    fig4, decisions = benchmark(build_chain, keystore)

    assert fig4.verify(keystore)
    assert decisions[("Kalice", "write")] == "true"   # delegated
    assert decisions[("Kalice", "read")] == "false"   # never delegated
    assert decisions[("Kbob", "read")] == "true"      # Bob keeps his own
    assert decisions[("Kbob", "write")] == "true"

    print("\n=== Figure 4 (regenerated) ===")
    print(fig4.to_text())
    print("decisions:", {f"{k}/{o}": v for (k, o), v in decisions.items()})

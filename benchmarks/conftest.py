"""Shared fixtures for the figure-regeneration benchmarks.

Every ``test_figNN_*`` benchmark regenerates the corresponding artifact of
the paper (table, credential, or architecture scenario), asserts that its
*shape* matches what the paper reports — who is authorised, what the
translation produces, which layer decides — and times the regeneration with
pytest-benchmark.  The paper itself reports no performance numbers, so the
timings characterise this reproduction (recorded in EXPERIMENTS.md).

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.core.scenarios import salaries_policy
from repro.crypto import Keystore
from repro.rbac.policy import RBACPolicy


@pytest.fixture
def fig1() -> RBACPolicy:
    return salaries_policy()


@pytest.fixture
def keystore() -> Keystore:
    ks = Keystore()
    for name in ("KWebCom", "Kbob", "Kalice", "Kclaire", "Kfred", "Kdave",
                 "Kelaine", "Kmaster"):
        ks.create(name)
    return ks


def synthetic_policy(n_domains: int, n_roles: int, n_types: int,
                     n_perms: int, n_users: int) -> RBACPolicy:
    """A deterministic policy of configurable size for scaling sweeps."""
    policy = RBACPolicy(f"synthetic-{n_domains}x{n_roles}x{n_users}")
    for d in range(n_domains):
        for r in range(n_roles):
            for t in range(n_types):
                for p in range(n_perms):
                    policy.grant(f"Dom{d}", f"role{r}", f"Type{t}", f"perm{p}")
    for u in range(n_users):
        policy.assign(f"User{u}", f"Dom{u % n_domains}",
                      f"role{u % n_roles}")
    return policy

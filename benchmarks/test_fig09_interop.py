"""Figure 9: interoperating security policies across four systems.

Artifact: the full pipeline the figure depicts —

    Y (COM/Windows, legacy policy)
      -> KeyNote credentials
      -> W enforces them with no middleware at all
      -> Z's COM+ catalogue is updated through KeyCOM
      -> X (replacement EJB) is configured from the same credentials

with the decision tables of all systems agreeing at the end.
"""

from repro.core.framework import HeterogeneousSecurityFramework
from repro.core.scenarios import build_figure9_network
from repro.keynote.compliance import ComplianceChecker
from repro.translate.common import action_attributes
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.migrate import DomainMapping, translate_policy
from repro.translate.to_keynote import encode_full
from repro.webcom.keycom import PolicyUpdateRequest

PROBES = [  # (nt_user, key, domain, role)
    ("Finance\\Alice", "Kalice", "Finance", "Clerk"),
    ("Finance\\Bob", "Kbob", "Finance", "Manager"),
    ("Sales\\Claire", "Kclaire", "Sales", "Manager"),
    ("Sales\\Dave", "Kdave", "Sales", "Assistant"),
    ("Sales\\Elaine", "Kelaine", "Sales", "Manager"),
]


def run_pipeline():
    framework = HeterogeneousSecurityFramework(admin_key="KWebCom")
    net = build_figure9_network()
    framework.register_middleware(net.system_y, {"Finance", "Sales"})
    framework.register_middleware(net.system_z, {"Finance", "Sales"})
    framework.register_middleware(net.system_x, {"hostx:ejb1/Finance",
                                                 "hostx:ejb1/Sales"})

    # Y -> credentials
    legacy = net.system_y.extract_rbac()
    policy_cred, memberships = encode_full(legacy, "KWebCom",
                                           framework.keystore)

    # W enforcement (pure KeyNote)
    w_checker = ComplianceChecker([policy_cred] + memberships,
                                  keystore=framework.keystore)

    # Z catalogue update via KeyCOM
    grants_only = legacy.copy("grants")
    for assignment in list(grants_only.assignments):
        grants_only.unassign(assignment.user, assignment.domain,
                             assignment.role)
    net.system_z.apply_rbac(grants_only)
    framework.session.add_policy(policy_cred)
    keycom = framework.keycom(net.system_z.name)
    applied = sum(
        keycom.submit_quietly(PolicyUpdateRequest(
            user=a.user, user_key=framework.user_key(a.user),
            domain=a.domain, role=a.role, credentials=tuple(memberships)))
        for a in legacy.sorted_assignments())

    # X configuration (legacy migration through the credentials)
    comprehended = comprehend_credentials([policy_cred] + memberships,
                                          keystore=framework.keystore)
    translated, _report = translate_policy(
        comprehended,
        DomainMapping(explicit={"Finance": "hostx:ejb1/Finance",
                                "Sales": "hostx:ejb1/Sales"}))
    net.system_x.apply_rbac(translated)
    return net, w_checker, comprehended, legacy, applied


def test_fig09_interop(benchmark):
    net, w_checker, comprehended, legacy, applied = benchmark(run_pipeline)

    assert applied == 5
    assert comprehended == legacy  # exact credential round-trip

    rows = []
    for nt_user, key, domain, role in PROBES:
        plain_user = nt_user.split("\\")[1]
        for permission in ("Access", "Launch"):
            y = net.system_y.invoke(nt_user, "SalariesDB", permission)
            w = w_checker.query(
                action_attributes(domain, role, "SalariesDB", permission),
                [key]) == "true"
            z = net.system_z.invoke(nt_user, "SalariesDB", permission)
            x = net.system_x.invoke(plain_user, "SalariesDB", permission)
            rows.append((nt_user, permission, y, w, z, x))
            # The whole point of Figure 9: all four systems agree.
            assert y == w == z == x, (nt_user, permission, y, w, z, x)

    print("\n=== Figure 9 (regenerated): decision agreement ===")
    print(f"{'principal':16s} {'perm':7s} Y     W     Z     X")
    for nt_user, permission, y, w, z, x in rows:
        print(f"{nt_user:16s} {permission:7s} "
              f"{str(y):5s} {str(w):5s} {str(z):5s} {str(x):5s}")

"""Figure 7: Claire delegates her role membership to Fred.

Artifact: the delegation credential and the end-to-end chain decision, in
both readings of the Figure-6/Figure-7 inconsistency (see DESIGN.md):

- literal chain (Claire holds Finance/Manager, delegates Sales/Manager):
  Fred gains **nothing** — the compliance checker enforces delegation
  monotonicity;
- corrected chain (Claire holds Sales/Manager): Fred becomes an effective
  Sales Manager.
"""

from repro.core.decentralisation import DelegationService
from repro.keynote.api import KeyNoteSession


def run_both_readings(keystore):
    # Literal: Figure 6 as printed.
    literal = DelegationService(KeyNoteSession(keystore=keystore), keystore,
                                "KWebCom")
    literal.admit_administrator()
    literal.grant_role("Kclaire", "Finance", "Manager")
    fig7_literal = literal.delegate_role("Kclaire", "Kfred", "Sales",
                                         "Manager")
    literal_result = literal.holds_role("Kfred", "Sales", "Manager")

    # Corrected: Figure 1's table.
    corrected = DelegationService(KeyNoteSession(keystore=keystore),
                                  keystore, "KWebCom")
    corrected.admit_administrator()
    corrected.grant_role("Kclaire", "Sales", "Manager")
    fig7_corrected = corrected.delegate_role("Kclaire", "Kfred", "Sales",
                                             "Manager")
    corrected_result = corrected.holds_role("Kfred", "Sales", "Manager")
    return fig7_literal, literal_result, fig7_corrected, corrected_result


def test_fig07_role_delegation(benchmark, keystore):
    (fig7_literal, literal_result,
     fig7_corrected, corrected_result) = benchmark(run_both_readings,
                                                   keystore)

    assert fig7_literal.verify(keystore)
    assert literal_result is False       # Claire never held Sales/Manager
    assert corrected_result is True      # now the chain closes
    assert 'Domain=="Sales" && Role=="Manager"' in fig7_corrected.to_text()

    print("\n=== Figure 7 (regenerated) ===")
    print(fig7_corrected.to_text())
    print(f"literal reading:   Fred holds Sales/Manager = {literal_result}")
    print(f"corrected reading: Fred holds Sales/Manager = {corrected_result}")

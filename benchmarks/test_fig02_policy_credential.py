"""Figure 2: the policy credential allowing manager Bob to read/write.

Artifact: the credential text, and the decisions the paper's Example 1
narrates for it.
"""

from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential

FIG2 = """
Authorizer: POLICY
licensees: "Kbob"
Conditions: app_domain=="SalariesDB" &&
            (oper=="read" || oper=="write");
"""


def build_and_query(keystore):
    credential = Credential.from_text(FIG2)
    checker = ComplianceChecker([credential], keystore=keystore)
    decisions = {
        oper: checker.query({"app_domain": "SalariesDB", "oper": oper},
                            ["Kbob"])
        for oper in ("read", "write", "delete")
    }
    return credential, decisions


def test_fig02_policy_credential(benchmark, keystore):
    credential, decisions = benchmark(build_and_query, keystore)

    assert credential.is_policy
    assert credential.principals() == {"Kbob"}
    assert decisions == {"read": "true", "write": "true", "delete": "false"}

    # Nobody else is trusted.
    checker = ComplianceChecker([credential], keystore=keystore)
    assert checker.query({"app_domain": "SalariesDB", "oper": "read"},
                         ["Kalice"]) == "false"

    print("\n=== Figure 2 (regenerated) ===")
    print(credential.to_text())
    print("decisions:", decisions)

"""Perf-2: policy translation scaling and the similarity-migration ablation.

Sweeps the RBAC -> KeyNote -> RBAC round-trip over growing policy sizes, and
compares similarity-based permission mapping against the strict-name
fallback on a vocabulary full of near-misses.
"""

import pytest

from benchmarks.conftest import synthetic_policy
from repro.crypto import Keystore
from repro.middleware.complus import COM_PERMISSIONS
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.migrate import DomainMapping, translate_policy
from repro.translate.similarity import match_vocabulary
from repro.translate.to_keynote import encode_full


@pytest.mark.parametrize("scale", [1, 4, 8], ids=lambda s: f"scale{s}")
def test_perf_round_trip_scaling(benchmark, scale):
    policy = synthetic_policy(n_domains=scale, n_roles=scale, n_types=2,
                              n_perms=2, n_users=scale * 4)

    def round_trip():
        keystore = Keystore()
        policy_cred, memberships = encode_full(policy, "KAdmin", keystore)
        return comprehend_credentials([policy_cred] + memberships,
                                      keystore=keystore)

    recovered = benchmark(round_trip)
    assert recovered.grants == policy.grants


@pytest.mark.parametrize("n_users", [10, 50], ids=lambda n: f"users{n}")
def test_perf_membership_issuance(benchmark, n_users):
    policy = synthetic_policy(n_domains=2, n_roles=3, n_types=1, n_perms=1,
                              n_users=n_users)

    def issue():
        keystore = Keystore()
        return encode_full(policy, "KAdmin", keystore)[1]

    memberships = benchmark(issue)
    assert len(memberships) == n_users


def test_perf_similarity_migration(benchmark):
    """Similarity-based mapping onto COM's closed vocabulary."""
    policy = synthetic_policy(n_domains=2, n_roles=2, n_types=2, n_perms=1,
                              n_users=4)
    # Overwrite the synthetic permissions with realistic near-misses.
    source = policy.copy("near-miss")
    for grant in list(source.grants):
        source.revoke_grant(grant.domain, grant.role, grant.object_type,
                            grant.permission)
    for domain in ("Dom0", "Dom1"):
        for role, perm in (("role0", "read"), ("role0", "execute"),
                           ("role1", "run_as"), ("role1", "update")):
            source.grant(domain, role, "Type0", perm)

    def migrate():
        return translate_policy(source, DomainMapping.identity(),
                                target_permissions=COM_PERMISSIONS)

    translated, report = benchmark(migrate)
    assert report.dropped == ()
    assert set(report.vocabulary_map) == {"read", "execute", "run_as",
                                          "update"}
    assert {g.permission for g in translated.grants} <= set(COM_PERMISSIONS)


def test_perf_strict_name_ablation(benchmark):
    """Ablation: strict-name migration drops every near-miss the similarity
    metric would have saved."""
    source = synthetic_policy(n_domains=1, n_roles=1, n_types=1, n_perms=1,
                              n_users=1)
    source.revoke_grant("Dom0", "role0", "Type0", "perm0")
    for perm in ("read", "execute", "run_as", "update"):
        source.grant("Dom0", "role0", "Type0", perm)

    def migrate_strict():
        # threshold 1.0 ~ exact names only
        return translate_policy(source, DomainMapping.identity(),
                                target_permissions=COM_PERMISSIONS,
                                similarity_threshold=1.01)

    _translated, report = benchmark(migrate_strict)
    assert len(report.dropped) == 4  # everything lost without similarity


@pytest.mark.parametrize("size", [8, 32], ids=lambda s: f"vocab{s}")
def test_perf_vocabulary_matching(benchmark, size):
    sources = [f"perm_{i}_read" for i in range(size)]
    targets = [f"perm{i}Read" for i in range(size)]
    mapping = benchmark(match_vocabulary, sources, targets)
    assert len(mapping) == size

"""Figure 10: the stacked security architecture.

Artifact: all 16 layer configurations mediating the same request set, with
the full stack's per-layer decision trace, plus the stack-overhead ablation
(single layer vs full stack) called out in DESIGN.md.
"""

import itertools

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.middleware.ejb import EJBServer
from repro.os_sec.unixlike import UnixSecurity
from repro.webcom.stack import AuthorisationStack, Layer, MediationRequest


def build_parts():
    osec = UnixSecurity()
    osec.add_user("alice", groups=["finance"])
    osec.create_object("SalariesDB", owner="alice", group="finance",
                       mode=0o640)
    ejb = EJBServer(host="h", server_name="s")
    ejb.deploy_container("C")
    ejb.deploy_bean("C", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("C", "Clerk")
    ejb.add_method_permission("C", "SalariesDB", "Clerk", "read")
    ejb.add_user("alice")
    ejb.assign_role("C", "Clerk", "alice")
    keystore = Keystore()
    keystore.create("Kalice")
    tm = KeyNoteSession(keystore=keystore)
    tm.add_policy('Authorizer: POLICY\nLicensees: "Kalice"\n'
                  'Conditions: op=="read";')
    app = lambda request: request.operation != "write"  # noqa: E731
    return osec, ejb, tm, app


def mediate_all_configurations():
    osec, ejb, tm, app = build_parts()
    allow_request = MediationRequest(user="alice", user_key="Kalice",
                                     object_type="SalariesDB",
                                     operation="read")
    deny_request = MediationRequest(user="alice", user_key="Kalice",
                                    object_type="SalariesDB",
                                    operation="write", os_access="write")
    outcomes = {}
    for include in itertools.product([False, True], repeat=4):
        stack = AuthorisationStack(require_some_layer=False)
        if include[0]:
            stack.plug_os(osec)
        if include[1]:
            stack.plug_middleware(ejb)
        if include[2]:
            stack.plug_trust_management(tm)
        if include[3]:
            stack.plug_application(app)
        outcomes[include] = (stack.mediate(allow_request),
                             stack.mediate(deny_request))
    return outcomes


def test_fig10_stack(benchmark):
    outcomes = benchmark(mediate_all_configurations)

    assert len(outcomes) == 16
    for include, (allow_decision, deny_decision) in outcomes.items():
        # 'read' passes every layer, so every configuration allows it.
        assert allow_decision.allowed
        assert len(allow_decision.decisions) == sum(include)
        # 'write' is denied by the middleware, TM and application layers;
        # the OS alone allows it (alice owns the object), so only
        # configurations with at least one of the higher layers deny.
        higher_layers_present = any(include[1:])
        assert deny_decision.allowed == (not higher_layers_present)

    full = outcomes[(True, True, True, True)][0]
    assert [d.layer for d in full.decisions] == [
        Layer.APPLICATION, Layer.TRUST_MANAGEMENT, Layer.MIDDLEWARE,
        Layer.OS]

    print("\n=== Figure 10 (regenerated): 16 stack configurations ===")
    print("OS  MW  TM  APP | read   write")
    for include, (a, d) in sorted(outcomes.items()):
        flags = "   ".join("x" if flag else "." for flag in include)
        print(f"{flags}  | {'allow' if a.allowed else 'deny ':5s}  "
              f"{'allow' if d.allowed else 'deny'}")


def test_fig10_single_layer_ablation(benchmark):
    """Ablation: middleware-only mediation (the legacy configuration)."""
    osec, ejb, tm, app = build_parts()
    stack = AuthorisationStack().plug_middleware(ejb)
    request = MediationRequest(user="alice", user_key="Kalice",
                               object_type="SalariesDB", operation="read")
    decision = benchmark(stack.mediate, request)
    assert decision.allowed


def test_fig10_full_stack_ablation(benchmark):
    """Ablation: the full four-layer stack on the same request."""
    osec, ejb, tm, app = build_parts()
    stack = (AuthorisationStack().plug_os(osec).plug_middleware(ejb)
             .plug_trust_management(tm).plug_application(app))
    request = MediationRequest(user="alice", user_key="Kalice",
                               object_type="SalariesDB", operation="read")
    decision = benchmark(stack.mediate, request)
    assert decision.allowed
    assert len(decision.decisions) == 4

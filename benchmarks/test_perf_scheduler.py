"""Perf-3: secure scheduler throughput.

Sweeps condensed-graph width and client count through the full Secure WebCom
path (network messages + two-sided TM mediation per node), and compares
secured against unsecured scheduling — the overhead the Figure-3
architecture buys its interoperability with.
"""

import pytest

from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment

OPS = {"work": lambda v: v + 1, "join": lambda *vs: sum(vs)}


def fanout_graph(width: int) -> CondensedGraph:
    g = CondensedGraph(f"fanout-{width}")
    g.add_node("join", operator="join", arity=width)
    for i in range(width):
        node = f"w{i:03d}"
        g.add_node(node, operator="work", arity=1)
        g.connect(node, "join", i)
        g.entry("x", node, 0)
    g.set_exit("join")
    return g


def build_secure(n_clients: int):
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter())
    keys = []
    for i in range(n_clients):
        key = env.create_key(f"Kc{i}")
        keys.append(key)
        client = WebComClient(f"c{i}", net, OPS, key_name=key,
                              authoriser=env.client_authoriser(f"c{i}"))
        env.client_trusts_master(f"c{i}", "Kmaster")
        client.register_with("master")
    net.run_until_quiet()
    env.trust_clients_for_operations(keys, list(OPS))
    return master


def build_plain(n_clients: int):
    net = SimulatedNetwork()
    master = WebComMaster("master", net)
    for i in range(n_clients):
        client = WebComClient(f"c{i}", net, OPS)
        client.register_with("master")
    net.run_until_quiet()
    return master


@pytest.mark.parametrize("width", [4, 16], ids=lambda w: f"width{w}")
def test_perf_secure_scheduling(benchmark, width):
    master = build_secure(n_clients=4)
    graph = fanout_graph(width)
    result = benchmark(master.run_graph, graph, {"x": 1})
    assert result == 2 * width


@pytest.mark.parametrize("width", [4, 16], ids=lambda w: f"width{w}")
def test_perf_plain_scheduling_ablation(benchmark, width):
    """Baseline: the same graph without any security mediation."""
    master = build_plain(n_clients=4)
    graph = fanout_graph(width)
    result = benchmark(master.run_graph, graph, {"x": 1})
    assert result == 2 * width


@pytest.mark.parametrize("n_clients", [1, 8], ids=lambda n: f"clients{n}")
def test_perf_client_pool_size(benchmark, n_clients):
    master = build_secure(n_clients=n_clients)
    graph = fanout_graph(8)
    result = benchmark(master.run_graph, graph, {"x": 1})
    assert result == 16


@pytest.mark.parametrize("depth", [4, 16], ids=lambda d: f"depth{d}")
def test_perf_observed_scheduling(benchmark, depth):
    """The fully instrumented path: tracing + metrics on every decision.

    Each round builds a fresh environment (the trace belongs to one run);
    the CI artifact job exports exactly this scenario's trace and metrics.
    """
    from repro.webcom.scenario import run_observed_scenario

    run = benchmark(run_observed_scenario, depth=depth, n_clients=4)
    assert run.result == depth
    metrics = run.obs.metrics
    assert metrics.counter("master.schedule.ok").value == depth
    assert run.obs.tracer.find("master.run_graph",
                               run.correlation_id)


def test_perf_observability_overhead(benchmark):
    """Instrumentation tax: the same secure pipeline, observed, relative to
    test_perf_secure_scheduling's bare runs (compare in the report)."""
    from repro.webcom.scenario import run_observed_scenario

    run = benchmark(run_observed_scenario, depth=8, n_clients=4)
    assert run.result == 8

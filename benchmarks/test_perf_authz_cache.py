"""Perf-3: the authorisation fast path.

Times the three layers of the hot-path machinery added for BENCH_3:

- KeyNote decision cache: cold (cache flushed every query) vs warm
  (identical query served from the cache) on the Figure-3 trust state;
- batch query API: ``query_many`` vs one ``query`` call per request;
- batched scheduling: a wide wavefront through one ``execute_batch``
  flight per client vs one round trip per node.

``repro bench --check`` asserts the speedups in CI; these benches record
the raw numbers alongside the other ``test_perf_*`` suites.
"""

import pytest

from repro.crypto import Keystore
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.translate.common import ATTR_APP_DOMAIN, WEBCOM_APP_DOMAIN
from repro.webcom.scenario import run_observed_scenario
from repro.webcom.secure import ATTR_OPERATION, SecureWebComEnvironment


def figure3_checker() -> tuple[ComplianceChecker, dict, list]:
    """The master-side trust state of the observed Figure-3 scenario."""
    env = SecureWebComEnvironment()
    env.create_key("Kmaster")
    keys = [env.create_key(f"Kc{i}") for i in range(4)]
    env.trust_clients_for_operations(keys, ["stage", "combine"])
    attributes = {ATTR_APP_DOMAIN: WEBCOM_APP_DOMAIN,
                  ATTR_OPERATION: "stage"}
    return env.master_session.checker, attributes, [keys[0]]


def test_perf_decision_cache_cold(benchmark):
    checker, attributes, authorizers = figure3_checker()

    def cold_query():
        checker.clear_decision_cache()
        return checker.query(attributes, authorizers)

    assert benchmark(cold_query) == "true"


def test_perf_decision_cache_warm(benchmark):
    checker, attributes, authorizers = figure3_checker()
    checker.query(attributes, authorizers)  # prime
    assert benchmark(checker.query, attributes, authorizers) == "true"


def test_decision_cache_speedup_is_material():
    """The acceptance bar behind the timing pair above (not timed): a warm
    query must skip the fixpoint entirely."""
    checker, attributes, authorizers = figure3_checker()
    checker.query(attributes, authorizers)
    warm = checker.query(attributes, authorizers)
    assert warm == "true"
    assert checker.cache_hits >= 1
    assert checker.last_query_stats.assertions_visited == 0
    assert checker.last_query_stats.memo_misses == 0


@pytest.mark.parametrize("batched", [False, True],
                         ids=["query-loop", "query_many"])
def test_perf_batch_query_api(benchmark, batched):
    """query_many shares per-assertion condition evaluation across a batch
    of requests with the same attribute projection."""
    keystore = Keystore()
    names = [f"Kw{i}" for i in range(8)]
    for name in names:
        keystore.create(name)
    licensees = " || ".join(f'"{n}"' for n in names)
    assertions = [
        Credential.build("POLICY", licensees, 'task=="render"')]
    checker = ComplianceChecker(assertions, keystore=keystore,
                                cache_decisions=False)
    requests = [({"task": "render"}, [name]) for name in names]

    if batched:
        result = benchmark(checker.query_many, requests)
    else:
        result = benchmark(
            lambda: [checker.query(attrs, auths)
                     for attrs, auths in requests])
    assert result == ["true"] * len(names)


@pytest.mark.parametrize("batch", [False, True],
                         ids=["per-node", "batched"])
def test_perf_batched_scheduling(benchmark, batch):
    """A width-8 wavefront: per-node scheduling pays one request/reply
    round trip per node, batching one per destination client."""
    run = benchmark(run_observed_scenario, fan=8, n_clients=2, batch=batch)
    assert run.result == 8


def test_batched_scheduling_reduces_flights():
    """The structural claim behind the timing pair (not timed)."""
    flights = {}
    for batch in (False, True):
        run = run_observed_scenario(fan=8, n_clients=2, batch=batch)
        flights[batch] = sum(
            1 for message in run.master.network.delivered
            if message.kind in ("execute", "execute_batch",
                                "result", "result_batch"))
        assert run.result == 8
    assert flights[True] < flights[False]

"""Perf-6: the identity-certificate baseline vs trust management.

Section 3 argues the conventional pipeline (validate cert -> extract name ->
database lookup) is cumbersome and ambiguity-prone where trust management
submits credentials directly to the compliance checker.  This bench times
both pipelines on equivalent Salaries decisions.
"""

from repro.crypto import KeyPair, Keystore
from repro.identity.authz import AuthorisationDatabase, IdentityAuthoriser
from repro.identity.certs import CertificateAuthority
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential


def test_perf_identity_pipeline(benchmark):
    ca = CertificateAuthority("AcmeCA")
    db = AuthorisationDatabase()
    db.grant("Bob", "SalariesDB", "read")
    authoriser = IdentityAuthoriser(ca, db)
    cert = ca.issue("Bob", KeyPair.generate("bob").public.encode())

    decision = benchmark(authoriser.authorise, cert, "SalariesDB", "read")
    assert decision.allowed


def test_perf_trust_management_pipeline(benchmark):
    keystore = Keystore()
    keystore.create("Kbob")
    policy = Credential.build(
        "POLICY", '"Kbob"',
        'app_domain=="SalariesDB" && oper=="read"')
    checker = ComplianceChecker([policy], keystore=keystore)

    result = benchmark(checker.query,
                       {"app_domain": "SalariesDB", "oper": "read"}, ["Kbob"])
    assert result == "true"


def test_perf_identity_pipeline_with_crowded_ca(benchmark):
    """Name ambiguity scanning scales with the CA's issuance volume —
    a cost trust management simply doesn't have."""
    ca = CertificateAuthority("BigCA")
    db = AuthorisationDatabase()
    db.grant("Bob", "SalariesDB", "read")
    authoriser = IdentityAuthoriser(ca, db)
    for i in range(500):
        ca.issue(f"Employee {i}", KeyPair.generate(f"e{i}").public.encode())
    cert = ca.issue("Bob", KeyPair.generate("bob").public.encode())

    decision = benchmark(authoriser.authorise, cert, "SalariesDB", "read")
    assert decision.allowed

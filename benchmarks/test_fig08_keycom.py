"""Figure 8: the decentralised middleware architecture (KeyCOM).

Artifact: the full Figure-8 flow — a user registered only in Domain B
presents KeyNote credentials to Domain A's KeyCOM service, which validates
them and updates the COM+ catalogue; an invalid request is rejected.
"""

from repro.crypto import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.complus import ComPlusCatalogue
from repro.os_sec.windows import WindowsSecurity
from repro.translate.to_keynote import membership_conditions
from repro.webcom.keycom import KeyComService, PolicyUpdateRequest


def run_figure8():
    keystore = Keystore()
    for name in ("KWebCom", "KuserB", "Kmallory"):
        keystore.create(name)

    windows = WindowsSecurity()
    windows.add_domain("DomainA")
    catalogue = ComPlusCatalogue("server-a", windows)
    catalogue.create_application("Payroll", nt_domain="DomainA")
    catalogue.register_component("Payroll", "SalariesDB")
    catalogue.declare_role("Payroll", "Clerk")
    catalogue.grant_permission("Payroll", "Clerk", "SalariesDB", "Access")

    session = KeyNoteSession(keystore=keystore)
    session.add_policy('Authorizer: POLICY\nLicensees: "KWebCom"\n'
                       'Conditions: app_domain=="WebCom";')
    keycom = KeyComService(catalogue, session)

    membership = Credential.build(
        authorizer="KWebCom", licensees='"KuserB"',
        conditions=membership_conditions("DomainA", "Clerk"),
    ).sign(keystore.pair("KWebCom").private)

    accepted = keycom.submit_quietly(PolicyUpdateRequest(
        user="userB", user_key="KuserB", domain="DomainA", role="Clerk",
        credentials=(membership,)))
    forged = Credential.build(
        authorizer="Kmallory", licensees='"Kmallory"',
        conditions=membership_conditions("DomainA", "Clerk"),
    ).sign(keystore.pair("Kmallory").private)
    rejected = keycom.submit_quietly(PolicyUpdateRequest(
        user="mallory", user_key="Kmallory", domain="DomainA", role="Clerk",
        credentials=(forged,)))
    return catalogue, accepted, rejected


def test_fig08_keycom(benchmark):
    catalogue, accepted, rejected = benchmark(run_figure8)

    assert accepted is True
    assert rejected is False
    # The Domain-B user now uses Domain A's component; Mallory does not.
    assert catalogue.invoke("DomainA\\userB", "SalariesDB", "Access")
    assert not catalogue.invoke("DomainA\\mallory", "SalariesDB", "Access")

    print("\n=== Figure 8 (regenerated) ===")
    print("KeyCOM accepted the credential-backed update for userB;")
    print("the self-signed request was rejected; the COM+ catalogue now")
    print("mediates userB's Access to SalariesDB in Domain A.")

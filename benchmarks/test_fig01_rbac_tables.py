"""Figure 1: regenerate the RBAC relation tables for the Salaries Database.

Artifact: the HasPermission and UserAssignment tables exactly as printed in
the paper, plus the access matrix they induce.
"""

from repro.core.scenarios import salaries_policy

EXPECTED_HAS_PERMISSION = {
    ("Finance", "Clerk", "SalariesDB", "write"),
    ("Finance", "Manager", "SalariesDB", "read"),
    ("Finance", "Manager", "SalariesDB", "write"),
    ("Sales", "Manager", "SalariesDB", "read"),
}

EXPECTED_USER_ASSIGNMENT = {
    ("Finance", "Clerk", "Alice"),
    ("Finance", "Manager", "Bob"),
    ("Sales", "Manager", "Claire"),
    ("Sales", "Assistant", "Dave"),
    ("Sales", "Manager", "Elaine"),
}

# The paper's prose: clerks write, Finance managers read+write, Sales
# managers read, assistants get nothing.
EXPECTED_MATRIX = {
    ("Alice", "read"): False, ("Alice", "write"): True,
    ("Bob", "read"): True, ("Bob", "write"): True,
    ("Claire", "read"): True, ("Claire", "write"): False,
    ("Dave", "read"): False, ("Dave", "write"): False,
    ("Elaine", "read"): True, ("Elaine", "write"): False,
}


def build_and_render():
    policy = salaries_policy()
    return (policy,
            policy.has_permission_table(),
            policy.user_assignment_table())


def test_fig01_rbac_tables(benchmark):
    policy, has_permission, user_assignment = benchmark(build_and_render)

    assert {(g.domain, g.role, g.object_type, g.permission)
            for g in policy.grants} == EXPECTED_HAS_PERMISSION
    assert {(a.domain, a.role, a.user)
            for a in policy.assignments} == EXPECTED_USER_ASSIGNMENT
    for (user, permission), expected in EXPECTED_MATRIX.items():
        assert policy.check_access(user, "SalariesDB", permission) == expected

    print("\n=== Figure 1 (regenerated) ===")
    print("HasPermission:")
    print(has_permission)
    print("UserAssignment:")
    print(user_assignment)

"""Perf-4: signature substrate throughput (sign / verify / keygen)."""

import pytest

from repro.crypto import KeyPair
from repro.crypto.keys import PublicKey, Signature

MESSAGE = b"KeyNote-Version: 2\nAuthorizer: POLICY\n" * 4


def test_perf_keygen(benchmark):
    counter = iter(range(10**9))
    pair = benchmark(lambda: KeyPair.generate(f"seed-{next(counter)}"))
    assert pair.public.y > 0


def test_perf_sign(benchmark):
    pair = KeyPair.generate("signer")
    signature = benchmark(pair.sign, MESSAGE)
    assert pair.public.verify(MESSAGE, signature)


def test_perf_verify(benchmark):
    pair = KeyPair.generate("signer")
    signature = pair.sign(MESSAGE)
    result = benchmark(pair.public.verify, MESSAGE, signature)
    assert result


def test_perf_verify_rejects(benchmark):
    pair = KeyPair.generate("signer")
    signature = pair.sign(MESSAGE)
    result = benchmark(pair.public.verify, MESSAGE + b"x", signature)
    assert not result


def test_perf_key_round_trip(benchmark):
    pair = KeyPair.generate("codec")
    encoded = pair.public.encode()

    def round_trip():
        return PublicKey.decode(encoded)

    decoded = benchmark(round_trip)
    assert decoded == pair.public


def test_perf_signature_codec(benchmark):
    pair = KeyPair.generate("codec")
    encoded = pair.sign(MESSAGE).encode()
    decoded = benchmark(Signature.decode, encoded)
    assert pair.public.verify(MESSAGE, decoded)

"""Perf-1: KeyNote compliance-checker throughput and scaling.

The paper reports no performance numbers; these benches characterise the
reproduction and back the DESIGN.md ablation: memoised vs naive
delegation-graph search on a diamond-heavy credential set where the naive
search revisits principals exponentially often.
"""

import pytest

from repro.crypto import Keystore
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential


def build_chain(keystore: Keystore, depth: int) -> list[Credential]:
    """A linear delegation chain of the given depth."""
    names = [f"Kchain{i}" for i in range(depth + 1)]
    for name in names:
        keystore.create(name)
    assertions = [Credential.build("POLICY", f'"{names[0]}"', 'x=="1"')]
    for a, b in zip(names, names[1:]):
        assertions.append(
            Credential.build(a, f'"{b}"', 'x=="1"').sign(
                keystore.pair(a).private))
    return assertions


def build_diamond_lattice(keystore: Keystore, layers: int,
                          width: int) -> tuple[list[Credential], str]:
    """A layered lattice: every key of layer i delegates to every key of
    layer i+1 — the worst case for non-memoised search."""
    grid = [[f"Kl{i}w{j}" for j in range(width)] for i in range(layers)]
    for row in grid:
        for name in row:
            keystore.create(name)
    assertions = [
        Credential.build("POLICY",
                         " || ".join(f'"{n}"' for n in grid[0]), "true")]
    for upper, lower in zip(grid, grid[1:]):
        for issuer in upper:
            licensees = " || ".join(f'"{n}"' for n in lower)
            assertions.append(
                Credential.build(issuer, licensees, "true").sign(
                    keystore.pair(issuer).private))
    return assertions, grid[-1][0]


@pytest.mark.parametrize("depth", [2, 8, 32])
def test_perf_chain_depth(benchmark, depth):
    keystore = Keystore()
    assertions = build_chain(keystore, depth)
    checker = ComplianceChecker(assertions, keystore=keystore)
    leaf = f"Kchain{depth}"
    result = benchmark(checker.query, {"x": "1"}, [leaf])
    assert result == "true"


@pytest.mark.parametrize("n_credentials", [10, 100, 400])
def test_perf_credential_count(benchmark, n_credentials):
    """Many irrelevant credentials must not slow the relevant chain much
    (the checker indexes by authorizer)."""
    keystore = Keystore()
    assertions = build_chain(keystore, 4)
    for i in range(n_credentials):
        keystore.create(f"Knoise{i}")
        keystore.create(f"Knoise{i}b")
        assertions.append(Credential.build(
            f"Knoise{i}", f'"Knoise{i}b"', 'y=="9"').sign(
                keystore.pair(f"Knoise{i}").private))
    checker = ComplianceChecker(assertions, keystore=keystore)
    result = benchmark(checker.query, {"x": "1"}, ["Kchain4"])
    assert result == "true"


@pytest.mark.parametrize("memoise", [True, False],
                         ids=["memoised", "naive"])
def test_perf_memoisation_ablation(benchmark, memoise):
    """DESIGN.md ablation: the lattice makes the naive search revisit every
    principal once per path; memoisation collapses that."""
    keystore = Keystore()
    assertions, leaf = build_diamond_lattice(keystore, layers=5, width=4)
    checker = ComplianceChecker(assertions, keystore=keystore,
                                memoise=memoise)
    result = benchmark(checker.query, {}, [leaf])
    assert result == "true"


def test_memoisation_agrees_with_naive():
    """Correctness side of the ablation (not timed)."""
    keystore = Keystore()
    assertions, leaf = build_diamond_lattice(keystore, layers=4, width=3)
    memo = ComplianceChecker(assertions, keystore=keystore, memoise=True)
    naive = ComplianceChecker(assertions, keystore=keystore, memoise=False)
    for authorizer in ([leaf], ["Kl3w1"], ["Kl0w0"], ["Kl2w2", "Kl3w0"]):
        assert memo.query({}, authorizer) == naive.query({}, authorizer)


def test_memoisation_ablation_is_measurable():
    """The new profile counters quantify what the timing ablation shows:
    under memoisation the lattice's shared principals are served from the
    memo; naive search re-walks them once per path (not timed)."""
    keystore = Keystore()
    assertions, leaf = build_diamond_lattice(keystore, layers=5, width=4)
    memo = ComplianceChecker(assertions, keystore=keystore, memoise=True)
    naive = ComplianceChecker(assertions, keystore=keystore, memoise=False)
    assert memo.query({}, [leaf]) == naive.query({}, [leaf]) == "true"
    assert memo.last_query_stats.memo_hits > 0
    assert naive.last_query_stats.memo_hits == 0
    assert naive.last_query_stats.memo_misses == 0
    assert (naive.last_query_stats.assertions_visited
            > memo.last_query_stats.assertions_visited)

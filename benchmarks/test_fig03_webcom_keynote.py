"""Figure 3: the WebCom-KeyNote architecture.

Artifact: the mutual trust-management handshake — the master checks the
client's credentials before scheduling, the client checks the master's
before executing — driven over the simulated network for a whole condensed
graph.
"""

from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment

OPS = {"stage": lambda v: v + 1}


def pipeline_graph(depth: int) -> CondensedGraph:
    g = CondensedGraph(f"pipeline-{depth}")
    previous = None
    for i in range(depth):
        g.add_node(f"n{i:03d}", operator="stage", arity=1)
        if previous is not None:
            g.connect(previous, f"n{i:03d}", 0)
        previous = f"n{i:03d}"
    g.entry("x", "n000", 0)
    g.set_exit(previous)
    return g


def run_secure_pipeline(depth: int = 10, n_clients: int = 3):
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit)
    client_keys = []
    for i in range(n_clients):
        key = env.create_key(f"Kc{i}")
        client_keys.append(key)
        client = WebComClient(f"c{i}", net, OPS, key_name=key,
                              user=f"user{i}",
                              authoriser=env.client_authoriser(f"c{i}"),
                              audit=env.audit)
        env.client_trusts_master(f"c{i}", "Kmaster")
        client.register_with("master")
    net.run_until_quiet()
    env.trust_clients_for_operations(client_keys, ["stage"])
    result = master.run_graph(pipeline_graph(depth), {"x": 0})
    return env, master, result


def test_fig03_webcom_keynote(benchmark):
    env, master, result = benchmark(run_secure_pipeline)

    assert result == 10  # depth increments
    # Every scheduling decision was mediated on both sides.
    master_checks = env.audit.find(category="keynote.query")
    client_checks = env.audit.find(category="webcom.client.check")
    assert len(client_checks) == 10
    assert all(c.outcome == "allow" for c in client_checks)
    assert len(master_checks) >= 10
    assert len(master.schedule_log) == 10

    print("\n=== Figure 3 (regenerated) ===")
    print(f"graph executed: result={result}, "
          f"master TM queries={len(master_checks)}, "
          f"client TM checks={len(client_checks)}")
    print("first placements:", master.schedule_log[:3])

#!/usr/bin/env python
"""Stacked authorisation (Section 5, Figure 10).

One request is mediated through every configuration of the four pluggable
layers: OS (L0), middleware (L1), trust management (L2) and application
workflow rules (L3).  The demo shows the paper's motivating configuration —
an ORB without CORBASec support, mediated by KeyNote + OS only — and a full
stack where each layer can veto.

Run:  python examples/stacked_authorisation.py
"""

from repro import KeyNoteSession, Keystore
from repro.middleware.ejb import EJBServer
from repro.os_sec.unixlike import UnixSecurity
from repro.webcom.stack import AuthorisationStack, MediationRequest


def build_parts():
    osec = UnixSecurity()
    osec.add_user("alice", groups=["finance"])
    osec.add_user("eve")
    osec.create_object("SalariesDB", owner="alice", group="finance",
                       mode=0o640)

    ejb = EJBServer(host="h", server_name="s")
    ejb.deploy_container("Payroll")
    ejb.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("Payroll", "Clerk")
    ejb.add_method_permission("Payroll", "SalariesDB", "Clerk", "read")
    ejb.add_user("alice")
    ejb.assign_role("Payroll", "Clerk", "alice")

    keystore = Keystore()
    keystore.create("Kalice")
    tm = KeyNoteSession(keystore=keystore)
    tm.add_policy('Authorizer: POLICY\nLicensees: "Kalice"\n'
                  'Conditions: op=="read";')

    office_hours = lambda request: request.attributes.get(  # noqa: E731
        "hour", "12") in {str(h) for h in range(8, 18)}
    return osec, ejb, tm, office_hours


def show(stack, request, label):
    decision = stack.mediate(request)
    layers = ", ".join(
        f"{d.layer.name}={'allow' if d.allowed else 'DENY'}"
        for d in decision.decisions)
    verdict = "ALLOWED" if decision.allowed else "denied"
    print(f"  {label:38s} -> {verdict:7s} [{layers}]")


def main() -> None:
    osec, ejb, tm, office_hours = build_parts()

    print("=== Full stack: L3 -> L2 -> L1 -> L0 (Figure 10) ===")
    full = (AuthorisationStack()
            .plug_os(osec).plug_middleware(ejb)
            .plug_trust_management(tm).plug_application(office_hours))
    alice_read = MediationRequest(
        user="alice", user_key="Kalice", object_type="SalariesDB",
        operation="read", attributes={"hour": "10"})
    show(full, alice_read, "alice reads at 10:00")
    show(full, MediationRequest(
        user="alice", user_key="Kalice", object_type="SalariesDB",
        operation="read", attributes={"hour": "23"}),
        "alice reads at 23:00 (L3 veto)")
    show(full, MediationRequest(
        user="alice", user_key="Kalice", object_type="SalariesDB",
        operation="write", os_access="write", attributes={"hour": "10"}),
        "alice writes (L2 veto)")
    show(full, MediationRequest(
        user="eve", user_key="Keve", object_type="SalariesDB",
        operation="read", attributes={"hour": "10"}),
        "eve reads (L2 veto, then L1/L0 would)")

    print("\n=== Pluggability: KeyNote + OS only (no CORBASec, Section 5) ===")
    slim = AuthorisationStack().plug_os(osec).plug_trust_management(tm)
    show(slim, alice_read, "alice reads (TM+OS stack)")
    print(f"  configured layers: "
          f"{[layer.name for layer in slim.configured_layers()]}")

    print("\n=== Middleware-only stack (legacy mediation) ===")
    legacy = AuthorisationStack().plug_middleware(ejb)
    show(legacy, alice_read, "alice reads (middleware only)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the paper's Examples 1 and 2 (Figures 2 and 4).

A Salaries application trusts finance manager Bob's key for read/write
access; Bob delegates write access to clerk Alice by signing a credential.
The KeyNote compliance checker answers every request.

Run:  python examples/quickstart.py
"""

from repro import Credential, KeyNoteSession, Keystore


def main() -> None:
    keystore = Keystore()
    keystore.create("Kbob")
    keystore.create("Kalice")

    session = KeyNoteSession(keystore=keystore)

    # Figure 2: the local policy trusts Kbob for reads and writes.
    policy = session.add_policy("""
        Authorizer: POLICY
        Licensees: "Kbob"
        Conditions: app_domain=="SalariesDB" &&
                    (oper=="read" || oper=="write");
    """)
    print("Policy credential (Figure 2):")
    print(policy.to_text())

    # Figure 4: Bob delegates write access to Alice, signing the credential.
    delegation = Credential.build(
        authorizer="Kbob",
        licensees='"Kalice"',
        conditions='app_domain=="SalariesDB" && oper=="write"',
    ).signed_by(keystore)
    session.add_credential(delegation)
    print("Delegation credential (Figure 4):")
    print(delegation.to_text())

    # Example 2: the application queries KeyNote for each request.
    requests = [
        ("Kbob", "read"), ("Kbob", "write"), ("Kbob", "delete"),
        ("Kalice", "write"), ("Kalice", "read"),
    ]
    print("Decisions:")
    for key, oper in requests:
        result = session.query({"app_domain": "SalariesDB", "oper": oper},
                               authorizers=[key])
        verdict = "ALLOWED" if result else "denied"
        print(f"  {key:8s} {oper:6s} -> {verdict} "
              f"(compliance value: {result.compliance_value})")

    assert session.query({"app_domain": "SalariesDB", "oper": "write"},
                         ["Kalice"]).authorized
    assert not session.query({"app_domain": "SalariesDB", "oper": "read"},
                             ["Kalice"]).authorized
    print("\nQuickstart OK: delegation grants exactly what Bob signed away.")


if __name__ == "__main__":
    main()

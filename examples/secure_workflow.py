#!/usr/bin/env python
"""Secure heterogeneous application development (Section 6, Figure 11).

Builds a payroll-report workflow as a condensed graph whose nodes are
middleware components served by two different technologies (EJB and CORBA),
interrogates the middleware to build the IDE's component palette, lets the
"programmer" pick (domain, role, user) placements — one full, one partial —
and executes the graph across Secure WebCom clients under trust-management
mediation in both directions.

Run:  python examples/secure_workflow.py
"""

from repro import (
    CondensedGraph,
    Credential,
    SecureWebComEnvironment,
    SimulatedNetwork,
    WebComClient,
    WebComIDE,
    WebComMaster,
)
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.middleware.registry import MiddlewareRegistry
from repro.webcom.ide import PlacementSpec


def build_middleware() -> MiddlewareRegistry:
    registry = MiddlewareRegistry()

    ejb = EJBServer(host="hostx", server_name="ejb1")
    ejb.deploy_container("Payroll")
    ejb.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    ejb.declare_role("Payroll", "Clerk")
    ejb.declare_role("Payroll", "Manager")
    ejb.add_method_permission("Payroll", "SalariesDB", "Manager", "read")
    ejb.add_method_permission("Payroll", "SalariesDB", "Clerk", "write")
    for user in ("alice", "bob"):
        ejb.add_user(user)
    ejb.assign_role("Payroll", "Clerk", "alice")
    ejb.assign_role("Payroll", "Manager", "bob")
    registry.register(ejb)

    orb = CorbaOrb(machine="hosty", orb_name="orb1")
    orb.register_interface("ReportGen", operations=("render",))
    orb.declare_role("Analyst")
    orb.grant_right("Analyst", "ReportGen", "render")
    orb.assign_role("Analyst", "carol")
    registry.register(orb)
    return registry


def main() -> None:
    registry = build_middleware()
    ide = WebComIDE(registry)

    print("=== IDE interrogation: the component palette (Figure 11) ===")
    palette = ide.interrogate()
    for entry in palette:
        print(f"  {entry.component.component_id}")
        for combo in entry.combinations:
            print(f"      {combo.domain}/{combo.role} "
                  f"user={combo.user} op={combo.operation}")

    # The programmer places the read step on any Payroll Manager (partial
    # specification) and the render step on Carol specifically (full).
    read_spec = PlacementSpec("hostx:ejb1/Payroll", "Manager")
    render_spec = PlacementSpec("hosty/orb1", "Analyst", "carol")
    ide.check_placement("hostx:ejb1/Payroll#SalariesDB", read_spec,
                        operation="read")
    ide.check_placement("hosty/orb1#ReportGen", render_spec,
                        operation="render")
    reader = ide.resolve_user("hostx:ejb1/Payroll#SalariesDB", read_spec,
                              operation="read")
    print(f"\nPlacements valid: read -> {read_spec} (resolved user "
          f"{reader!r}), render -> {render_spec}")

    # Build the workflow graph: read salaries, then render the report.
    graph = CondensedGraph("payroll-report")
    graph.add_node("read", operator="SalariesDB.read", arity=1,
                   placement=read_spec)
    graph.add_node("render", operator="ReportGen.render", arity=1,
                   placement=render_spec)
    graph.connect("read", "render", 0)
    graph.entry("period", "read", 0)
    graph.set_exit("render")

    # Stand up Secure WebCom: one master, one client per middleware user.
    env = SecureWebComEnvironment()
    net = SimulatedNetwork(clock=env.clock)
    env.create_key("Kmaster")
    master = WebComMaster("master", net, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit)

    salaries = {"2026-06": ["alice: 4200", "bob: 5100"]}

    def read_op(period):
        return salaries[period]

    def render_op(rows):
        return "PAYROLL REPORT\n" + "\n".join(f"  {row}" for row in rows)

    clients = {
        "bob-node": ("Kbobnode", "bob", {"SalariesDB.read": read_op}),
        "carol-node": ("Kcarolnode", "carol",
                       {"ReportGen.render": render_op}),
    }
    for client_id, (key, user, ops) in clients.items():
        env.create_key(key)
        client = WebComClient(client_id, net, ops, key_name=key, user=user,
                              authoriser=env.client_authoriser(client_id),
                              audit=env.audit)
        env.client_trusts_master(client_id, "Kmaster")
        client.register_with("master")
    net.run_until_quiet()

    # Master-side trust: placements are enforced through role-membership
    # credentials signed by the WebCom administration key — the same
    # Figure-6 shape the framework's translation layer produces.
    admin = env.create_key("KWebComAdmin")
    env.master_session.add_policy(
        f'Authorizer: POLICY\nLicensees: "{admin}"\n'
        'Conditions: app_domain=="WebCom";')
    for client_key, domain, role in (
            ("Kbobnode", "hostx:ejb1/Payroll", "Manager"),
            ("Kcarolnode", "hosty/orb1", "Analyst")):
        membership = Credential.build(
            admin, f'"{client_key}"',
            f'app_domain=="WebCom" && Domain=="{domain}" && Role=="{role}"',
        ).sign(env.keystore.pair(admin).private)
        env.master_session.add_credential(membership)

    print("\n=== Executing the workflow across Secure WebCom ===")
    report = master.run_graph(graph, {"period": "2026-06"})
    print(report)
    print("\nSchedule:", master.schedule_log)
    allowed = len(env.audit.find(category="keynote.query", outcome="allow"))
    print(f"Trust-management queries answered 'allow': {allowed}")


if __name__ == "__main__":
    main()

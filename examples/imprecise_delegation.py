#!/usr/bin/env python
"""Imprecise delegation with similarity measures (reference [13]).

Two organisations merge their policies: credentials were written for the
``Finance`` domain, but requests arrive spelled ``FinanceDept`` /
``finance``.  The strict compliance checker denies every near-miss; the
similarity-relaxed checker recovers them with a quantified evidence score,
and a similarity floor keeps sensitive operations strict.

Also prints the administrative reports (effective permissions, delegation
graph) the comprehension service produces.

Run:  python examples/imprecise_delegation.py
"""

from repro import Keystore, salaries_policy
from repro.report import delegation_graph_dot, effective_permissions_report
from repro.translate.imprecise import ImpreciseChecker
from repro.translate.to_keynote import encode_full


def main() -> None:
    keystore = Keystore()
    policy = salaries_policy()
    policy_cred, memberships = encode_full(policy, "KWebCom", keystore)
    assertions = [policy_cred] + memberships

    checker = ImpreciseChecker(assertions, keystore=keystore, threshold=0.7)

    requests = [
        # (description, attributes)
        ("exact", {"app_domain": "WebCom", "Domain": "Finance",
                   "Role": "Manager", "ObjectType": "SalariesDB",
                   "Permission": "read"}),
        ("misspelt domain", {"app_domain": "WebCom", "Domain": "FinanceDept",
                             "Role": "Manager", "ObjectType": "SalariesDB",
                             "Permission": "read"}),
        ("lowercase + plural", {"app_domain": "WebCom", "Domain": "finance",
                                "Role": "Managers",
                                "ObjectType": "SalariesDB",
                                "Permission": "read"}),
        ("wrong permission", {"app_domain": "WebCom", "Domain": "Finance",
                              "Role": "Manager", "ObjectType": "SalariesDB",
                              "Permission": "delete"}),
    ]

    print("=== Imprecise compliance checking (Kbob requesting) ===")
    for label, attributes in requests:
        result = checker.query(attributes, ["Kbob"])
        verdict = "ALLOWED" if result.authorized else "denied"
        subs = (f" via {dict(result.substitutions)}"
                if result.substitutions else "")
        print(f"  {label:22s} -> {verdict:7s} "
              f"similarity={result.similarity:.2f}{subs}")

    print("\n=== Similarity floors for sensitive actions ===")
    near = requests[1][1]
    for floor in (0.5, 0.99):
        result = checker.query_with_floor(near, ["Kbob"], floor)
        print(f"  floor={floor:4.2f}: "
              f"{'ALLOWED' if result.authorized else 'denied'} "
              f"(evidence {result.similarity:.2f})")

    print("\n=== Effective permissions (comprehension report) ===")
    print(effective_permissions_report(policy))

    print("\n=== Delegation graph (Graphviz DOT) ===")
    print(delegation_graph_dot(assertions))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Salaries Database walkthrough: Figures 1, 5, 6 and 7.

Builds the Figure-1 RBAC relations, encodes them as the Figure-5 KeyNote
POLICY credential and the Figure-6 membership credentials, answers the whole
access matrix through the credential chains, and replays the Figure-7
role delegation (in both the paper's literal and corrected readings).

Run:  python examples/salaries_database.py
"""

from repro import HeterogeneousSecurityFramework, salaries_policy
from repro.translate.to_keynote import encode_full


def main() -> None:
    policy = salaries_policy()
    print("=== Figure 1: RBAC relations for the Salaries Database ===\n")
    print("HasPermission:")
    print(policy.has_permission_table())
    print("\nUserAssignment:")
    print(policy.user_assignment_table())

    framework = HeterogeneousSecurityFramework(admin_key="KWebCom")
    framework.configure(policy)

    policy_cred, memberships = encode_full(policy, "KWebCom",
                                           framework.keystore)
    print("\n=== Figure 5: the HasPermission table as a KeyNote POLICY ===\n")
    print(policy_cred.to_text())

    claire = next(c for c in memberships if "Kclaire" in c.principals())
    print("=== Figure 6 (corrected to the Figure-1 table): Claire's role ===\n")
    print(claire.to_text())

    print("=== Access matrix through the credential chains ===\n")
    matrix = [
        ("Alice", "Finance", "Clerk"), ("Bob", "Finance", "Manager"),
        ("Claire", "Sales", "Manager"), ("Dave", "Sales", "Assistant"),
        ("Elaine", "Sales", "Manager"),
    ]
    for user, domain, role in matrix:
        key = framework.user_key(user)
        decisions = []
        for permission in ("read", "write"):
            ok = framework.check_access_by_key(key, domain, role,
                                               "SalariesDB", permission)
            decisions.append(f"{permission}={'Y' if ok else 'n'}")
        print(f"  {user:7s} as {domain}/{role:<10s} {' '.join(decisions)}")

    print("\n=== Figure 7: Claire delegates her role to Fred ===\n")
    delegation = framework.delegation.delegate_role(
        "Kclaire", "Kfred", "Sales", "Manager")
    print(delegation.to_text())
    fred_is_manager = framework.delegation.holds_role("Kfred", "Sales",
                                                      "Manager")
    print(f"Fred holds Sales/Manager: {fred_is_manager}")
    fred_reads = framework.check_access_by_key(
        "Kfred", "Sales", "Manager", "SalariesDB", "read")
    fred_writes = framework.check_access_by_key(
        "Kfred", "Sales", "Manager", "SalariesDB", "write")
    print(f"Fred may read the Salaries DB:  {fred_reads}")
    print(f"Fred may write the Salaries DB: {fred_writes} "
          "(Sales managers never could)")

    print("\n--- the paper's literal Figure-6 reading ---")
    literal = HeterogeneousSecurityFramework(admin_key="KWebCom")
    literal.configure(policy)
    # Figure 6 as printed gives Claire Finance/Manager instead.
    literal.delegation.grant_role("Kclaire2", "Finance", "Manager")
    literal.delegation.delegate_role("Kclaire2", "Kfred2", "Sales", "Manager")
    print("Claire(Finance) delegates Sales/Manager to Fred:",
          "effective" if literal.delegation.holds_role(
              "Kfred2", "Sales", "Manager") else
          "ineffective (she never held it — delegation is monotone)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Figure-9 interoperation pipeline.

Four systems:  X = EJB over Unix,  Y = COM+ over Windows (carrying the legacy
Salaries policy),  Z = KeyNote + COM+ over Windows,  W = KeyNote over Windows
with no middleware.  The script drives the three translations the paper
narrates:

1. Y's COM policy  ->  KeyNote credentials,
2. those credentials enforce the policy on W (no middleware at all), and
   update Z's COM+ catalogue through its KeyCOM service,
3. the same credentials configure the replacement EJB system X
   (legacy migration), with a per-domain mapping.

Run:  python examples/legacy_migration.py
"""

from repro import HeterogeneousSecurityFramework, build_figure9_network
from repro.keynote.compliance import ComplianceChecker
from repro.translate.common import action_attributes
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.migrate import DomainMapping, translate_policy
from repro.translate.to_keynote import encode_full
from repro.webcom.keycom import PolicyUpdateRequest


def main() -> None:
    framework = HeterogeneousSecurityFramework(admin_key="KWebCom")
    net = build_figure9_network()
    framework.register_middleware(net.system_y, {"Finance", "Sales"})
    framework.register_middleware(net.system_z, {"Finance", "Sales"})
    framework.register_middleware(net.system_x, {"hostx:ejb1/Finance",
                                                 "hostx:ejb1/Sales"})

    print("=== Step 1: translate Y's legacy COM policy to KeyNote ===")
    legacy = net.system_y.extract_rbac()
    print(f"Y's policy: {len(legacy.grants)} grants, "
          f"{len(legacy.assignments)} assignments")
    policy_cred, memberships = encode_full(legacy, "KWebCom",
                                           framework.keystore)
    print(f"-> 1 POLICY credential + {len(memberships)} membership "
          "credentials\n")

    print("=== Step 2a: W (no middleware) enforces the policy via KeyNote ===")
    w_checker = ComplianceChecker([policy_cred] + memberships,
                                  keystore=framework.keystore)
    probes = [("Kalice", "Finance", "Clerk", "Access"),
              ("Kbob", "Finance", "Manager", "Launch"),
              ("Kdave", "Sales", "Assistant", "Access")]
    for key, domain, role, perm in probes:
        value = w_checker.query(
            action_attributes(domain, role, "SalariesDB", perm), [key])
        print(f"  W: {key:8s} {domain}/{role:<9s} {perm:<7s} -> {value}")

    print("\n=== Step 2b: the credentials update Z's COM+ catalogue ===")
    grants_only = legacy.copy("grants")
    for assignment in list(grants_only.assignments):
        grants_only.unassign(assignment.user, assignment.domain,
                             assignment.role)
    net.system_z.apply_rbac(grants_only)          # application structure
    framework.session.add_policy(policy_cred)      # local trust root
    keycom = framework.keycom(net.system_z.name)
    for assignment in legacy.sorted_assignments():
        request = PolicyUpdateRequest(
            user=assignment.user,
            user_key=framework.user_key(assignment.user),
            domain=assignment.domain, role=assignment.role,
            credentials=tuple(memberships))
        ok = keycom.submit_quietly(request)
        print(f"  KeyCOM(Z): install {assignment.user:7s} into "
              f"{assignment.domain}/{assignment.role:<9s} -> "
              f"{'applied' if ok else 'REJECTED'}")
    print("  Z now mediates:",
          "Alice/Access:", net.system_z.invoke("Finance\\Alice", "SalariesDB",
                                               "Access"),
          " Dave/Access:", net.system_z.invoke("Sales\\Dave", "SalariesDB",
                                               "Access"))

    print("\n=== Step 3: legacy migration Y -> X (replacement EJB) ===")
    comprehended = comprehend_credentials([policy_cred] + memberships,
                                          keystore=framework.keystore)
    assert comprehended == legacy, "credential round-trip must be exact"
    mapping = DomainMapping(explicit={
        "Finance": "hostx:ejb1/Finance",
        "Sales": "hostx:ejb1/Sales",
    })
    translated, report = translate_policy(comprehended, mapping)
    net.system_x.apply_rbac(translated)
    print(f"  migration report: {report.summary()}")
    print(f"  domain map: {dict(report.domain_map)}")
    for user, perm, expect in (("Alice", "Access", True),
                               ("Bob", "Launch", True),
                               ("Claire", "Launch", False),
                               ("Dave", "Access", False)):
        got = net.system_x.invoke(user, "SalariesDB", perm)
        marker = "OK" if got == expect else "MISMATCH"
        print(f"  X: {user:7s} {perm:<7s} -> {got}  [{marker}]")

    print("\nPipeline complete: one policy, four systems, "
          "three security technologies.")


if __name__ == "__main__":
    main()

"""Encoding middleware RBAC policies as KeyNote credentials (Section 4.2).

Two artefacts, exactly as the paper describes:

- ``encode_policy`` — *"The HasPermission table ... is encoded as [a] KeyNote
  Policy credential"* (Figure 5): a single POLICY assertion licensing the
  WebCom administration key for every granted (Domain, Role, ObjectType,
  Permission) combination.
- ``encode_user_credentials`` — *"For each user (public key) in the
  UserAssignment table, a credential is generated, and signed by the WebCom
  key, authorising the user to be a member of the corresponding roles"*
  (Figure 6).
"""

from __future__ import annotations

from repro.crypto.keystore import Keystore
from repro.keynote.credential import Credential
from repro.rbac.policy import RBACPolicy
from repro.translate.common import (
    ATTR_APP_DOMAIN,
    ATTR_DOMAIN,
    ATTR_OBJECT_TYPE,
    ATTR_PERMISSION,
    ATTR_ROLE,
    WEBCOM_APP_DOMAIN,
)


def _eq(attribute: str, value: str) -> str:
    return f'{attribute}=="{value}"'


def grant_conditions(policy: RBACPolicy,
                     app_domain: str = WEBCOM_APP_DOMAIN) -> str:
    """The Conditions text encoding a HasPermission relation, Figure-5 style.

    Grants sharing (domain, role, object type) are grouped so their
    permissions compress into a disjunction, matching the figure's
    ``(Permission=="read"||Permission=="write")`` shape.
    """
    grouped: dict[tuple[str, str, str], list[str]] = {}
    for grant in policy.sorted_grants():
        key = (grant.domain, grant.role, grant.object_type)
        grouped.setdefault(key, []).append(grant.permission)

    alternatives: list[str] = []
    for (domain, role, object_type), permissions in sorted(grouped.items()):
        perm_terms = [_eq(ATTR_PERMISSION, p) for p in sorted(set(permissions))]
        perms = perm_terms[0] if len(perm_terms) == 1 \
            else "(" + " || ".join(perm_terms) + ")"
        alternatives.append(
            "(" + " && ".join([
                _eq(ATTR_DOMAIN, domain),
                _eq(ATTR_ROLE, role),
                _eq(ATTR_OBJECT_TYPE, object_type),
                perms,
            ]) + ")")
    if not alternatives:
        # An empty relation grants nothing.
        body = "false"
    elif len(alternatives) == 1:
        body = alternatives[0]
    else:
        body = "(" + " || ".join(alternatives) + ")"
    return f'{_eq(ATTR_APP_DOMAIN, app_domain)} && {body}'


def encode_policy(policy: RBACPolicy, admin_key: str,
                  app_domain: str = WEBCOM_APP_DOMAIN,
                  comment: str = "") -> Credential:
    """Encode the HasPermission relation as the Figure-5 POLICY credential.

    :param admin_key: the WebCom administration key (symbolic or encoded)
        licensed to administer rights under this policy.
    """
    return Credential.build(
        authorizer="POLICY",
        licensees=f'"{admin_key}"',
        conditions=grant_conditions(policy, app_domain),
        comment=comment or f"HasPermission relation of {policy.name!r}",
    )


def membership_conditions(domain: str, role: str,
                          app_domain: str = WEBCOM_APP_DOMAIN) -> str:
    """Conditions text for one role membership (Figure 6)."""
    return " && ".join([
        _eq(ATTR_APP_DOMAIN, app_domain),
        _eq(ATTR_DOMAIN, domain),
        _eq(ATTR_ROLE, role),
    ])


def encode_user_credentials(policy: RBACPolicy, admin_key: str,
                            keystore: Keystore,
                            user_key: "dict[str, str] | None" = None,
                            app_domain: str = WEBCOM_APP_DOMAIN,
                            sign: bool = True) -> list[Credential]:
    """Encode the UserAssignment relation as signed role-membership
    credentials (Figure 6), one per (user, domain, role) row.

    :param admin_key: authorizer of every credential (the WebCom key).
    :param keystore: resolves/signs; user keys are created on demand.
    :param user_key: optional explicit user -> key-name mapping; defaults to
        ``K<user>`` (the paper's ``Kclaire`` convention).
    :param sign: set False to produce unsigned credentials (for display).
    """
    mapping = user_key or {}
    credentials: list[Credential] = []
    for assignment in policy.sorted_assignments():
        key_name = mapping.get(assignment.user, f"K{assignment.user.lower()}")
        keystore.create(key_name)
        credential = Credential.build(
            authorizer=admin_key,
            licensees=f'"{key_name}"',
            conditions=membership_conditions(assignment.domain,
                                             assignment.role, app_domain),
            comment=(f"{assignment.user} is authorised to be a "
                     f"{assignment.role} in the {assignment.domain} domain"),
        )
        if sign:
            credential = credential.sign(keystore.pair(admin_key).private)
        credentials.append(credential)
    return credentials


def encode_full(policy: RBACPolicy, admin_key: str, keystore: Keystore,
                app_domain: str = WEBCOM_APP_DOMAIN,
                ) -> tuple[Credential, list[Credential]]:
    """Both halves of the encoding: the Figure-5 POLICY credential and the
    Figure-6 membership credentials."""
    keystore.create(admin_key)
    return (encode_policy(policy, admin_key, app_domain),
            encode_user_credentials(policy, admin_key, keystore,
                                    app_domain=app_domain))

"""SPKI/SDSI encoding of RBAC policies (footnote 1 of the paper).

The KeyNote encoding of Section 4 carries over to SPKI: each
``HasPermission`` row becomes a tag, and role memberships become auth certs
from the WebCom key whose tag covers everything the (domain, role) pair may
do.  Tag shape::

    (webcom (domain D) (role R) (object T) (perm P))

Role-membership certs grant ``(webcom (domain D) (role R))`` — which, by
SPKI's list-prefix rule, implies every longer tag for that domain and role.
The intersection with the policy's granted rows then reproduces exactly the
KeyNote chain semantics.
"""

from __future__ import annotations

from repro.crypto.keystore import Keystore
from repro.rbac.policy import RBACPolicy
from repro.spki.cert import AuthCert, NameCert, Validity
from repro.spki.tags import Tag


def spki_grant_tag(domain: str, role: str, object_type: str,
                   permission: str) -> Tag:
    """The tag for one HasPermission row."""
    return ("webcom", ("domain", domain), ("role", role),
            ("object", object_type), ("perm", permission))


def spki_role_tag(domain: str, role: str) -> Tag:
    """The tag covering everything a (domain, role) pair may do."""
    return ("webcom", ("domain", domain), ("role", role))


def spki_request_tag(domain: str, role: str, object_type: str,
                     permission: str) -> Tag:
    """The tag a requester presents for one action (same shape as grants)."""
    return spki_grant_tag(domain, role, object_type, permission)


def spki_policy_certificates(policy: RBACPolicy, admin_key: str,
                             keystore: Keystore,
                             root_key: str = "Kself",
                             validity: Validity = Validity(),
                             ) -> tuple[list[AuthCert], list[NameCert]]:
    """Encode a whole RBAC policy as SPKI certificates.

    Returns (auth_certs, name_certs):

    - the verifier's root key grants the admin key each HasPermission row
      (with the delegate bit, so the admin can pass them to role members);
    - the admin key grants each assigned user key the rows their roles hold
      (SPKI tags have no variables, so role membership expands against the
      grant table — the classic RBAC-in-SPKI construction [18]);
    - name certs record the role memberships for SDSI-style auditing.
    """
    keystore.create(root_key)
    keystore.create(admin_key)
    root_private = keystore.pair(root_key).private
    admin_private = keystore.pair(admin_key).private

    auth_certs: list[AuthCert] = []
    name_certs: list[NameCert] = []

    grants_by_role: dict[tuple[str, str], list[Tag]] = {}
    for grant in policy.sorted_grants():
        tag = spki_grant_tag(grant.domain, grant.role, grant.object_type,
                             grant.permission)
        grants_by_role.setdefault((grant.domain, grant.role), []).append(tag)
        auth_certs.append(AuthCert(
            issuer=root_key, subject=admin_key, tag=tag, delegate=True,
            validity=validity).sign(root_private))

    for assignment in policy.sorted_assignments():
        user_key = f"K{assignment.user.lower()}"
        keystore.create(user_key)
        name_certs.append(NameCert(
            issuer=admin_key,
            name=f"{assignment.domain}/{assignment.role}",
            subject=user_key,
            validity=validity).sign(admin_private))
        for tag in grants_by_role.get((assignment.domain, assignment.role),
                                      ()):
            auth_certs.append(AuthCert(
                issuer=admin_key, subject=user_key, tag=tag, delegate=False,
                validity=validity).sign(admin_private))
    return auth_certs, name_certs

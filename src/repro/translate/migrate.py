"""Policy Migration (Section 4.3): middleware → middleware.

"Migration of existing policies from one middleware system to another ...
allows, for example, a new system to be configured with the same policy as an
existing system" — e.g. the paper's legacy-COM-to-EJB example in Figure 9.

The pipeline is: extract the source's RBAC interpretation → map domains into
the target's addressing scheme → (optionally) map role/object/permission
vocabulary with similarity metrics → apply to the target's native store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import MigrationError
from repro.middleware.base import Middleware
from repro.rbac.policy import RBACPolicy
from repro.translate.similarity import best_match


@dataclass
class DomainMapping:
    """How source domains become target domains.

    Middleware address their domains differently (EJB: ``host:server/jndi``,
    CORBA: ``machine/orb``, COM+: NT domain), so migration needs an explicit
    or rule-based mapping.

    :param explicit: exact source-domain -> target-domain entries.
    :param default: fallback callable for unmapped domains; None means
        unmapped domains are an error.
    """

    explicit: dict[str, str] = field(default_factory=dict)
    default: Callable[[str], str] | None = None

    def map(self, domain: str) -> str:
        """Map one source domain.

        :raises MigrationError: if no mapping covers it.
        """
        if domain in self.explicit:
            return self.explicit[domain]
        if self.default is not None:
            return self.default(domain)
        raise MigrationError(f"no domain mapping for {domain!r}")

    @classmethod
    def to_single(cls, target_domain: str) -> "DomainMapping":
        """Collapse every source domain onto one target domain."""
        return cls(default=lambda _d: target_domain)

    @classmethod
    def identity(cls) -> "DomainMapping":
        """Keep domains unchanged (same-technology migration)."""
        return cls(default=lambda d: d)


@dataclass(frozen=True)
class MigrationReport:
    """What a migration did, for the administrator's review."""

    migrated_grants: int
    migrated_assignments: int
    domain_map: Mapping[str, str]
    vocabulary_map: Mapping[str, str]
    dropped: tuple[str, ...]

    def summary(self) -> str:
        return (f"{self.migrated_grants} grants, "
                f"{self.migrated_assignments} assignments migrated; "
                f"{len(self.dropped)} facts dropped")


def translate_policy(source_policy: RBACPolicy, mapping: DomainMapping,
                     target_permissions: "tuple[str, ...] | None" = None,
                     similarity_threshold: float = 0.5,
                     name: str = "migrated") -> tuple[RBACPolicy,
                                                      MigrationReport]:
    """Rewrite a policy into a target addressing scheme and vocabulary.

    :param target_permissions: the target's closed permission vocabulary
        (e.g. COM's Launch/Access/RunAs); when given, source permissions are
        mapped by similarity and unmappable ones dropped (and reported).
    """
    result = RBACPolicy(name)
    domain_map: dict[str, str] = {}
    vocab_map: dict[str, str] = {}
    dropped: list[str] = []

    for grant in source_policy.sorted_grants():
        target_domain = mapping.map(grant.domain)
        domain_map[grant.domain] = target_domain
        permission = grant.permission
        if target_permissions is not None and permission not in target_permissions:
            matched = vocab_map.get(permission) or best_match(
                permission, target_permissions, similarity_threshold)
            if matched is None:
                dropped.append(str(grant))
                continue
            vocab_map[permission] = matched
            permission = matched
        result.grant(target_domain, grant.role, grant.object_type, permission)

    for assignment in source_policy.sorted_assignments():
        target_domain = mapping.map(assignment.domain)
        domain_map[assignment.domain] = target_domain
        result.assign(assignment.user, target_domain, assignment.role)

    report = MigrationReport(
        migrated_grants=len(result.grants),
        migrated_assignments=len(result.assignments),
        domain_map=domain_map,
        vocabulary_map=vocab_map,
        dropped=tuple(dropped),
    )
    return result, report


def migrate_policy(source: Middleware, target: Middleware,
                   mapping: DomainMapping,
                   target_permissions: "tuple[str, ...] | None" = None,
                   similarity_threshold: float = 0.5) -> MigrationReport:
    """End-to-end migration: extract from ``source``, translate, apply to
    ``target``.

    :raises MigrationError: if a domain cannot be mapped.
    """
    source_policy = source.extract_rbac()
    translated, report = translate_policy(
        source_policy, mapping, target_permissions, similarity_threshold,
        name=f"migrated:{source.name}->{target.name}")
    target.apply_rbac(translated)
    return report

"""Similarity metrics for imprecise policy translation ([13], Section 4.3).

"Migration of policies between different middleware technologies does not
consist of a simple one-to-one mapping.  Some interpretation of the security
policies must be considered by the translation tools, using techniques such
as similarity metrics."

Three metrics, composed by :func:`name_similarity`:

- normalised Levenshtein distance over lowercased names,
- token overlap (names often differ by separators: ``SalariesDB`` vs
  ``salaries_db``),
- a synonym table for the permission vocabulary of the supported middleware
  (``read``/``Access``, ``execute``/``Launch``...).

:func:`match_vocabulary` computes an optimal assignment between two name sets
using :func:`scipy.optimize.linear_sum_assignment` when available, falling
back to greedy matching.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

import numpy as np

try:  # scipy is available in this environment; the fallback keeps the
    from scipy.optimize import linear_sum_assignment  # module importable
    _HAVE_SCIPY = True                                 # without it.
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance, vectorised row-at-a-time with numpy."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = np.arange(len(b) + 1)
    b_array = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    for i, ch in enumerate(a, start=1):
        current = np.empty(len(b) + 1, dtype=np.int64)
        current[0] = i
        substitution = previous[:-1] + (b_array != ord(ch))
        # current[j] = min(previous[j] + 1, substitution[j-1], current[j-1]+1)
        np.minimum(previous[1:] + 1, substitution, out=current[1:])
        # The left-to-right dependency (insertions) needs a scan.
        running = np.minimum.accumulate(current[1:] - np.arange(1, len(b) + 1))
        current[1:] = np.minimum(current[1:],
                                 running + np.arange(1, len(b) + 1) + 0)
        previous = current
    return int(previous[-1])


def _tokens(name: str) -> frozenset[str]:
    """Split an identifier into lowercase tokens (camelCase, snake_case,
    separators)."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    parts = re.split(r"[^A-Za-z0-9]+", spaced)
    return frozenset(p.lower() for p in parts if p)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard index of two sets (1.0 for two empty sets)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


def overlap(a: Iterable[str], b: Iterable[str]) -> float:
    """Overlap (Szymkiewicz-Simpson) coefficient: containment-friendly, so
    ``FinanceDept`` scores 1.0 against ``Finance`` at token level."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 1.0 if sa == sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


#: permission-vocabulary synonyms across the supported middleware
PERMISSION_SYNONYMS: Mapping[str, frozenset[str]] = {
    "read": frozenset({"read", "access", "get", "select", "view"}),
    "write": frozenset({"write", "access", "put", "update", "insert", "set"}),
    "execute": frozenset({"execute", "launch", "run", "invoke", "call",
                          "start"}),
    "impersonate": frozenset({"runas", "impersonate", "su", "sudo"}),
}


def _synonym_boost(a: str, b: str) -> float:
    """1.0 if the names share a synonym class, else 0.0."""
    la, lb = a.lower(), b.lower()
    for synonyms in PERMISSION_SYNONYMS.values():
        if la in synonyms and lb in synonyms:
            return 1.0
    return 0.0


def name_similarity(a: str, b: str) -> float:
    """Composite similarity in [0, 1].

    Exact case-insensitive matches score 1.0; otherwise the maximum of the
    normalised-Levenshtein score, token Jaccard, and the synonym boost.
    """
    if a.lower() == b.lower():
        return 1.0
    longest = max(len(a), len(b))
    lev = 1.0 - levenshtein(a.lower(), b.lower()) / longest if longest else 1.0
    tokens_a, tokens_b = _tokens(a), _tokens(b)
    tok = jaccard(tokens_a, tokens_b)
    # Containment is capped just below exact so a qualified name
    # (FinanceDept) ranks beneath a true match but above the threshold.
    contained = 0.9 * overlap(tokens_a, tokens_b)
    return max(lev, tok, contained, _synonym_boost(a, b))


def best_match(name: str, candidates: Sequence[str],
               threshold: float = 0.5) -> str | None:
    """The candidate most similar to ``name`` (ties break to the first in
    sorted order), or None if nothing reaches ``threshold``."""
    best_score, best_candidate = threshold, None
    for candidate in sorted(candidates):
        score = name_similarity(name, candidate)
        if score > best_score:
            best_score, best_candidate = score, candidate
    return best_candidate


def match_vocabulary(sources: Sequence[str], targets: Sequence[str],
                     threshold: float = 0.5) -> dict[str, str]:
    """Optimal one-to-one mapping from sources to targets.

    Uses the Hungarian algorithm on the similarity matrix (unmatched sources
    simply don't appear in the result); pairs below ``threshold`` are
    dropped.
    """
    if not sources or not targets:
        return {}
    sources = sorted(set(sources))
    targets_sorted = sorted(set(targets))
    matrix = np.array([[name_similarity(s, t) for t in targets_sorted]
                       for s in sources])
    mapping: dict[str, str] = {}
    if _HAVE_SCIPY:
        rows, cols = linear_sum_assignment(-matrix)
        for r, c in zip(rows, cols):
            if matrix[r, c] >= threshold:
                mapping[sources[r]] = targets_sorted[c]
    else:  # pragma: no cover - greedy fallback
        taken: set[int] = set()
        order = np.dstack(np.unravel_index(
            np.argsort(-matrix, axis=None), matrix.shape))[0]
        for r, c in order:
            if sources[r] in mapping or c in taken:
                continue
            if matrix[r, c] >= threshold:
                mapping[sources[r]] = targets_sorted[c]
                taken.add(c)
    return mapping

"""Policy Maintenance (Section 4.4): propagating changes across systems.

The paper recommends *"changing the trust management policy to reflect
required changes in the system.  This enables the changes to be propagated
down the security stack where necessary, while maintaining the consistency of
the overall security policy."*

The :class:`PropagationEngine` holds the authoritative global policy, accepts
deltas (or whole new policies), pushes the relevant facts into every
registered middleware, and re-checks consistency afterwards.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import InconsistentPolicyError
from repro.middleware.base import Middleware
from repro.rbac.diff import PolicyDelta, diff_policies
from repro.rbac.policy import RBACPolicy
from repro.translate.consistency import ConsistencyReport, check_consistency
from repro.util.events import AuditLog


class PropagationEngine:
    """Coordinates the global policy and its middleware replicas.

    :param global_policy: the authoritative trust-management-level policy.
    :param audit: optional audit log for propagation events.
    """

    def __init__(self, global_policy: RBACPolicy,
                 audit: AuditLog | None = None) -> None:
        self.global_policy = global_policy
        self.audit = audit
        #: system name -> (middleware, domains it is responsible for)
        self._systems: dict[str, tuple[Middleware, set[str]]] = {}
        #: listeners called with each applied delta (e.g. to refresh KeyNote)
        self._listeners: list[Callable[[PolicyDelta], None]] = []

    # -- registration -------------------------------------------------------

    def register(self, middleware: Middleware, domains: set[str]) -> None:
        """Register a middleware as responsible for ``domains``."""
        self._systems[middleware.name] = (middleware, set(domains))

    def subscribe(self, listener: Callable[[PolicyDelta], None]) -> None:
        """Be notified of every applied delta."""
        self._listeners.append(listener)

    def responsibilities(self) -> Mapping[str, set[str]]:
        """system name -> responsible domains."""
        return {name: set(domains)
                for name, (_m, domains) in self._systems.items()}

    # -- initial configuration ----------------------------------------------------

    def push_all(self) -> None:
        """Install the relevant slice of the global policy everywhere
        (Policy Configuration for a fresh deployment)."""
        for name, (middleware, domains) in self._systems.items():
            slice_ = RBACPolicy(f"slice:{name}")
            for grant in self.global_policy.grants:
                if grant.domain in domains:
                    slice_.add_grant(grant)
            for assignment in self.global_policy.assignments:
                if assignment.domain in domains:
                    slice_.add_assignment(assignment)
            middleware.apply_rbac(slice_)
            self._record("propagate.push", name, "ok",
                         facts=len(slice_))

    # -- change application ----------------------------------------------------------

    def apply_delta(self, delta: PolicyDelta) -> ConsistencyReport:
        """Apply a change to the global policy and propagate it down.

        Removals are propagated where the middleware supports them (role
        unassignment); structural removals (grants) are applied to stores
        that expose the hooks, otherwise surfaced through the consistency
        report.
        """
        delta.apply_to(self.global_policy)
        for name, (middleware, domains) in self._systems.items():
            touched = 0
            for grant in delta.added_grants:
                if grant.domain in domains:
                    middleware.apply_grant(grant)
                    touched += 1
            for assignment in delta.added_assignments:
                if assignment.domain in domains:
                    middleware.apply_assignment(assignment)
                    touched += 1
            for assignment in delta.removed_assignments:
                if assignment.domain in domains:
                    if middleware.remove_assignment(assignment):
                        touched += 1
            if touched:
                self._record("propagate.delta", name, "ok", facts=touched)
        for listener in self._listeners:
            listener(delta)
        return self.check()

    def set_policy(self, new_policy: RBACPolicy) -> ConsistencyReport:
        """Replace the global policy, propagating the computed delta."""
        delta = diff_policies(self.global_policy, new_policy)
        return self.apply_delta(delta)

    # -- verification ---------------------------------------------------------------------

    def check(self, strict: bool = False) -> ConsistencyReport:
        """Re-check global consistency.

        :param strict: raise :class:`InconsistentPolicyError` on drift.
        """
        report = check_consistency(
            self.global_policy,
            [middleware for middleware, _d in self._systems.values()],
            responsibilities=self.responsibilities())
        if strict and not report.is_consistent():
            raise InconsistentPolicyError(str(report))
        return report

    def _record(self, category: str, subject: str, outcome: str,
                **detail) -> None:
        if self.audit is not None:
            self.audit.record(0.0, category, subject, outcome, **detail)

"""Policy Maintenance (Section 4.4): propagating changes across systems.

The paper recommends *"changing the trust management policy to reflect
required changes in the system.  This enables the changes to be propagated
down the security stack where necessary, while maintaining the consistency of
the overall security policy."*

The :class:`PropagationEngine` holds the authoritative global policy, accepts
deltas (or whole new policies), pushes the relevant facts into every
registered middleware, and re-checks consistency afterwards.

Anti-entropy: real deployments lose propagations — a replica partitions
away, a delivery is dropped, a retry re-delivers the same change twice.  The
engine therefore keeps a **versioned update log** and a per-backend
**applied-version vector**: every delta becomes a :class:`VersionedUpdate`,
deliveries are retried with backoff and applied idempotently (a version at
or below the backend's vector entry is a no-op), and :meth:`reconcile`
replays whatever a healed backend missed and then diff-repairs any residual
drift through the common RBAC format, until the replica is byte-identical
with the authoritative slice (:meth:`replica_digest` /
:meth:`expected_digest`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import InconsistentPolicyError
from repro.middleware.base import Middleware
from repro.rbac.diff import PolicyDelta, delta_to_dict, diff_policies
from repro.rbac.policy import RBACPolicy
from repro.rbac.serialize import policy_to_json
from repro.translate.consistency import (ConsistencyReport, _restrict,
                                         check_consistency)
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.store.durable import DurableStore

#: delivery fault hook: (system, version, attempt) -> True to fail this try
DeliveryFault = Callable[[str, int, int], bool]


@dataclass(frozen=True)
class VersionedUpdate:
    """One logged policy change: a delta stamped with a monotone version."""

    version: int
    delta: PolicyDelta
    update_id: str = ""


@dataclass
class ReconcileReport:
    """What one anti-entropy pass did, per system."""

    replayed: dict[str, int] = field(default_factory=dict)
    repaired: dict[str, int] = field(default_factory=dict)
    #: facts present on a replica that the engine cannot remove (e.g. extra
    #: grants on middleware without a revoke hook) — surfaced, not hidden
    residue: dict[str, int] = field(default_factory=dict)
    unreachable: tuple[str, ...] = ()
    converged: bool = False

    def total_repaired(self) -> int:
        return sum(self.repaired.values())

    def summary(self) -> str:
        return (f"replayed={sum(self.replayed.values())} "
                f"repaired={self.total_repaired()} "
                f"residue={sum(self.residue.values())} "
                f"converged={self.converged}")


class PropagationEngine:
    """Coordinates the global policy and its middleware replicas.

    :param global_policy: the authoritative trust-management-level policy.
    :param audit: optional audit log for propagation events.
    """

    def __init__(self, global_policy: RBACPolicy,
                 audit: AuditLog | None = None,
                 clock: SimulatedClock | None = None,
                 obs: "Observability | None" = None,
                 retry_limit: int = 3,
                 delivery_fault: DeliveryFault | None = None,
                 store: "DurableStore | None" = None) -> None:
        self.global_policy = global_policy
        self.audit = audit
        self.clock = clock or (obs.clock if obs is not None else None)
        self.obs = obs
        #: optional durable store: every versioned update is written ahead
        #: as a ``propagate.update`` record and every per-backend vector
        #: advance as ``propagate.applied``, so :meth:`reconcile` converges
        #: across *restarts* (the replayed log still knows what a healed
        #: backend missed), not just across partitions
        self.store = store
        #: delivery attempts per update before a backend is declared missed
        self.retry_limit = max(1, retry_limit)
        #: chaos hook consulted per delivery attempt (seeded injectors)
        self.delivery_fault = delivery_fault
        #: system name -> (middleware, domains it is responsible for)
        self._systems: dict[str, tuple[Middleware, set[str]]] = {}
        #: listeners called with each applied delta (e.g. to refresh KeyNote)
        self._listeners: list[Callable[[PolicyDelta], None]] = []
        #: the versioned update log anti-entropy replays from
        self.update_log: list[VersionedUpdate] = []
        self._version = 0
        #: system name -> highest update version it has applied
        self.applied_versions: dict[str, int] = {}
        self._unreachable: set[str] = set()

    # -- registration -------------------------------------------------------

    def register(self, middleware: Middleware, domains: set[str]) -> None:
        """Register a middleware as responsible for ``domains``."""
        self._systems[middleware.name] = (middleware, set(domains))
        self.applied_versions.setdefault(middleware.name, 0)

    # -- partitions -----------------------------------------------------------

    def set_unreachable(self, name: str) -> None:
        """Mark a backend partitioned: deliveries to it are skipped (and
        show up as missed versions for :meth:`reconcile` to replay)."""
        self._unreachable.add(name)
        self._record("propagate.partition", name, "unreachable")

    def set_reachable(self, name: str) -> None:
        """Heal a backend's partition (run :meth:`reconcile` to catch up)."""
        self._unreachable.discard(name)
        self._record("propagate.partition", name, "reachable")

    def unreachable(self) -> frozenset[str]:
        """Currently partitioned backends."""
        return frozenset(self._unreachable)

    def subscribe(self, listener: Callable[[PolicyDelta], None]) -> None:
        """Be notified of every applied delta."""
        self._listeners.append(listener)

    def responsibilities(self) -> Mapping[str, set[str]]:
        """system name -> responsible domains."""
        return {name: set(domains)
                for name, (_m, domains) in self._systems.items()}

    # -- initial configuration ----------------------------------------------------

    def push_all(self) -> None:
        """Install the relevant slice of the global policy everywhere
        (Policy Configuration for a fresh deployment)."""
        for name, (middleware, domains) in self._systems.items():
            slice_ = RBACPolicy(f"slice:{name}")
            for grant in self.global_policy.grants:
                if grant.domain in domains:
                    slice_.add_grant(grant)
            for assignment in self.global_policy.assignments:
                if assignment.domain in domains:
                    slice_.add_assignment(assignment)
            middleware.apply_rbac(slice_)
            if self.store is not None:
                self.store.append("propagate.applied", system=name,
                                  version=self._version)
            self.applied_versions[name] = self._version
            self._record("propagate.push", name, "ok",
                         facts=len(slice_))

    # -- change application ----------------------------------------------------------

    def apply_delta(self, delta: PolicyDelta,
                    update_id: str = "") -> ConsistencyReport:
        """Apply a change to the global policy and propagate it down.

        The change is logged as a :class:`VersionedUpdate` and delivered to
        every reachable backend with up to :attr:`retry_limit` attempts
        (``delivery_fault`` decides which attempts fail); partitioned or
        exhausted backends simply miss the version — :meth:`reconcile`
        replays it after heal.  Removals are propagated where the middleware
        supports them (role unassignment); structural removals (grants) are
        applied to stores that expose the hooks, otherwise surfaced through
        the consistency report.
        """
        self._version += 1
        update = VersionedUpdate(self._version, delta, update_id)
        if self.store is not None:
            # Write-ahead: the logged update is durable before any state
            # (global or replica) reflects it.  Restore replays the record
            # into the update log *and* the global policy
            # (:func:`repro.store.durable.restore_engine`).
            self.store.append("propagate.update", version=update.version,
                              delta=delta_to_dict(delta),
                              update_id=update_id)
        delta.apply_to(self.global_policy)
        self.update_log.append(update)
        for name in self._systems:
            self.deliver_update(name, update)
        for listener in self._listeners:
            listener(delta)
        return self.check()

    def deliver_update(self, name: str, update: VersionedUpdate) -> bool:
        """Deliver one logged update to one backend, with retries.

        Safe to call repeatedly (duplicate delivery from a flaky network):
        application is idempotent through the applied-version vector.
        Returns True when the backend ends up holding the update.
        """
        if name in self._unreachable:
            self._record("propagate.delta", name, "unreachable",
                         version=update.version)
            self._count("health.propagate.missed")
            return False
        for attempt in range(1, self.retry_limit + 1):
            if (self.delivery_fault is not None
                    and self.delivery_fault(name, update.version, attempt)):
                self._count("health.propagate.retry")
                continue
            applied = self._apply_update(name, update)
            self._record("propagate.delta", name,
                         "ok" if applied else "duplicate",
                         version=update.version, attempt=attempt)
            return True
        self._record("propagate.delta", name, "lost", version=update.version)
        self._count("health.propagate.missed")
        return False

    def _apply_update(self, name: str, update: VersionedUpdate) -> bool:
        """Idempotently apply one update to one backend.

        A version at or below the backend's applied-version vector entry is
        a duplicate and must not double-apply; otherwise the delta's facts
        for the backend's domains are installed and the vector advances.
        """
        if self.applied_versions.get(name, 0) >= update.version:
            return False
        if self.store is not None:
            self.store.append("propagate.applied", system=name,
                              version=update.version)
        middleware, domains = self._systems[name]
        delta = update.delta
        for grant in delta.added_grants:
            if grant.domain in domains:
                middleware.apply_grant(grant)
        for assignment in delta.added_assignments:
            if assignment.domain in domains:
                middleware.apply_assignment(assignment)
        for assignment in delta.removed_assignments:
            if assignment.domain in domains:
                middleware.remove_assignment(assignment)
        self.applied_versions[name] = update.version
        return True

    def set_policy(self, new_policy: RBACPolicy) -> ConsistencyReport:
        """Replace the global policy, propagating the computed delta."""
        delta = diff_policies(self.global_policy, new_policy)
        return self.apply_delta(delta)

    # -- anti-entropy ---------------------------------------------------------

    def reconcile(self) -> ReconcileReport:
        """Converge every reachable replica with the authoritative policy.

        Two passes per backend.  First the fast path: replay logged updates
        the backend's applied-version vector says it missed, in version
        order.  Then the guarantee: diff the replica against the
        authoritative slice through the common RBAC format and repair the
        drift directly — this catches gaps the vector cannot see (a lost
        v3 under a delivered v4) and any out-of-band mutation of the
        backend.  Extra grants on middleware without a revoke hook are
        counted as ``residue`` rather than silently ignored.
        """
        report = ReconcileReport(unreachable=tuple(sorted(self._unreachable)))
        for name, (middleware, domains) in self._systems.items():
            if name in self._unreachable:
                continue
            replayed = 0
            floor = self.applied_versions.get(name, 0)
            for update in self.update_log:
                if update.version > floor:
                    if self._apply_update(name, update):
                        replayed += 1
            report.replayed[name] = replayed
            repaired = 0
            residue = 0
            want = _restrict(self.global_policy, domains, "want")
            have = _restrict(middleware.extract_rbac(), domains, "have")
            for grant in want.grants - have.grants:
                middleware.apply_grant(grant)
                repaired += 1
            for assignment in want.assignments - have.assignments:
                middleware.apply_assignment(assignment)
                repaired += 1
            for assignment in have.assignments - want.assignments:
                if middleware.remove_assignment(assignment):
                    repaired += 1
                else:
                    residue += 1
            residue += len(have.grants - want.grants)
            report.repaired[name] = repaired
            report.residue[name] = residue
            if repaired:
                self._count("health.reconcile.repaired", repaired)
            self._record("propagate.reconcile", name,
                         "repaired" if repaired else "clean",
                         replayed=replayed, repaired=repaired,
                         residue=residue)
        report.converged = all(
            self.replica_digest(name) == self.expected_digest(name)
            for name in self._systems if name not in self._unreachable)
        if self.obs is not None:
            now = self.clock.now() if self.clock is not None else 0.0
            self.obs.tracer.record(
                "health.reconcile", now, now,
                repaired=report.total_repaired(),
                converged=report.converged)
        return report

    def replica_digest(self, name: str) -> str:
        """One backend's policy slice in canonical (byte-comparable) form.

        The extraction is restricted to the backend's responsible domains
        and rebuilt under a fixed policy name, so two replicas holding the
        same facts serialise byte-identically regardless of middleware
        flavour or registration order.
        """
        middleware, domains = self._systems[name]
        return policy_to_json(
            _restrict(middleware.extract_rbac(), domains, "replica"))

    def expected_digest(self, name: str) -> str:
        """The authoritative policy slice a backend should hold, in the same
        canonical form as :meth:`replica_digest`."""
        _middleware, domains = self._systems[name]
        return policy_to_json(
            _restrict(self.global_policy, domains, "replica"))

    # -- verification ---------------------------------------------------------------------

    def check(self, strict: bool = False) -> ConsistencyReport:
        """Re-check global consistency.

        :param strict: raise :class:`InconsistentPolicyError` on drift.
        """
        report = check_consistency(
            self.global_policy,
            [middleware for middleware, _d in self._systems.values()],
            responsibilities=self.responsibilities())
        if strict and not report.is_consistent():
            raise InconsistentPolicyError(str(report))
        return report

    def _record(self, category: str, subject: str, outcome: str,
                **detail) -> None:
        if self.audit is not None:
            now = self.clock.now() if self.clock is not None else 0.0
            self.audit.record(now, category, subject, outcome, **detail)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc(amount)

    def health_snapshot(self) -> dict[str, object]:
        """Serialisable propagation health for the ``repro health`` report."""
        return {
            "version": self._version,
            "applied_versions": dict(sorted(self.applied_versions.items())),
            "unreachable": sorted(self._unreachable),
            "log_entries": len(self.update_log),
        }

"""Shared vocabulary of the WebCom credential encoding.

Secure WebCom "uses the attributes Domain, ObjectType, Role, Permission which
correspond to the RBAC attributes" (Section 4), with ``app_domain ==
"WebCom"`` scoping credentials to WebCom-mediated actions.
"""

from __future__ import annotations

WEBCOM_APP_DOMAIN = "WebCom"

ATTR_APP_DOMAIN = "app_domain"
ATTR_DOMAIN = "Domain"
ATTR_ROLE = "Role"
ATTR_OBJECT_TYPE = "ObjectType"
ATTR_PERMISSION = "Permission"

#: the four RBAC attributes of the WebCom encoding
RBAC_ATTRIBUTES = (ATTR_DOMAIN, ATTR_ROLE, ATTR_OBJECT_TYPE, ATTR_PERMISSION)


def action_attributes(domain: str, role: str, object_type: str,
                      permission: str,
                      app_domain: str = WEBCOM_APP_DOMAIN) -> dict[str, str]:
    """The action attribute set for one mediated WebCom action."""
    return {
        ATTR_APP_DOMAIN: app_domain,
        ATTR_DOMAIN: domain,
        ATTR_ROLE: role,
        ATTR_OBJECT_TYPE: object_type,
        ATTR_PERMISSION: permission,
    }


def membership_attributes(domain: str, role: str,
                          app_domain: str = WEBCOM_APP_DOMAIN) -> dict[str, str]:
    """The action attribute set for a role-membership check (no object)."""
    return {
        ATTR_APP_DOMAIN: app_domain,
        ATTR_DOMAIN: domain,
        ATTR_ROLE: role,
    }

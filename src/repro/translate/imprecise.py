"""Imprecise delegation via similarity measures ([13], cited in Section 4.3).

"Some interpretation of the security policies must be considered by the
translation tools, using techniques such as similarity metrics [13]" — where
[13] is Foley, *Supporting imprecise delegation in KeyNote using similarity
measures* (NordSec 2001).

The idea: a request whose action attributes don't *exactly* match any
credential may still be authorised if the mismatching values are
sufficiently similar to values the credentials do mention — e.g. a request
for ``Domain="FinanceDept"`` against credentials written for
``Domain="Finance"``.  The result carries a *similarity score* (1.0 for an
exact match) so callers can require stronger evidence for more sensitive
actions.

Implementation: the attribute vocabulary is harvested from the credentials'
condition DNF; for each query attribute the best sufficiently-similar
credential value is a candidate substitution; the checker re-queries over the
substitution lattice and returns the best authorised outcome with the
minimum substitution similarity as its score.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import ComprehensionError
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.translate.dnf import conditions_to_dnf
from repro.translate.similarity import name_similarity


@dataclass(frozen=True)
class ImpreciseResult:
    """Outcome of an imprecise query."""

    authorized: bool
    compliance_value: str
    similarity: float
    substitutions: Mapping[str, str]  # attribute -> credential value used

    def __bool__(self) -> bool:
        return self.authorized

    def is_exact(self) -> bool:
        """True when no substitution was needed."""
        return not self.substitutions


def harvest_vocabulary(assertions: Iterable[Credential],
                       ) -> dict[str, set[str]]:
    """Attribute -> string values mentioned across all credential
    conditions (non-relational conditions are skipped)."""
    vocabulary: dict[str, set[str]] = {}
    for assertion in assertions:
        try:
            conjuncts = conditions_to_dnf(assertion.conditions)
        except ComprehensionError:
            continue
        for conjunct in conjuncts:
            for attribute, value in conjunct.items():
                vocabulary.setdefault(attribute, set()).add(value)
    return vocabulary


class ImpreciseChecker:
    """A compliance checker with similarity-relaxed attribute matching.

    :param threshold: minimum per-attribute similarity for a substitution to
        be considered (below it, the attribute must match exactly).
    :param max_substitutions: cap on how many attributes may be relaxed in a
        single query (keeps the lattice small and the semantics reviewable).
    """

    def __init__(self, assertions: Sequence[Credential],
                 keystore: Keystore | None = None,
                 threshold: float = 0.7,
                 max_substitutions: int = 2,
                 verify_signatures: bool = True) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.max_substitutions = max_substitutions
        self._checker = ComplianceChecker(
            list(assertions), keystore=keystore,
            verify_signatures=verify_signatures)
        self.vocabulary = harvest_vocabulary(assertions)

    def query(self, attributes: Mapping[str, str],
              authorizers: Iterable[str]) -> ImpreciseResult:
        """Exact query first; on denial, explore similar substitutions."""
        authorizer_list = list(authorizers)
        exact = self._checker.query(attributes, authorizer_list)
        if exact != "false":
            return ImpreciseResult(authorized=True, compliance_value=exact,
                                   similarity=1.0, substitutions={})

        options: list[list[tuple[str, str, float]]] = []
        for attribute, value in attributes.items():
            choices = [(attribute, value, 1.0)]
            best_value, best_score = None, self.threshold
            for candidate in sorted(self.vocabulary.get(attribute, ())):
                if candidate == value:
                    continue
                score = name_similarity(value, candidate)
                if score >= best_score:
                    best_value, best_score = candidate, score
            if best_value is not None:
                choices.append((attribute, best_value, best_score))
            options.append(choices)

        best: ImpreciseResult | None = None
        for combo in itertools.product(*options):
            substitutions = {attr: val for attr, val, score in combo
                             if score < 1.0}
            if not substitutions:
                continue  # the exact query already failed
            if len(substitutions) > self.max_substitutions:
                continue
            candidate_attrs = {attr: val for attr, val, _score in combo}
            value = self._checker.query(candidate_attrs, authorizer_list)
            if value == "false":
                continue
            similarity = min(score for _a, _v, score in combo)
            result = ImpreciseResult(authorized=True,
                                     compliance_value=value,
                                     similarity=similarity,
                                     substitutions=substitutions)
            if best is None or result.similarity > best.similarity:
                best = result
        if best is not None:
            return best
        return ImpreciseResult(authorized=False, compliance_value="false",
                               similarity=0.0, substitutions={})

    def query_with_floor(self, attributes: Mapping[str, str],
                         authorizers: Iterable[str],
                         similarity_floor: float) -> ImpreciseResult:
        """Authorise only if the evidence reaches ``similarity_floor`` —
        sensitive actions demand near-exact delegation."""
        result = self.query(attributes, authorizers)
        if result.authorized and result.similarity < similarity_floor:
            return ImpreciseResult(authorized=False,
                                   compliance_value="false",
                                   similarity=result.similarity,
                                   substitutions=result.substitutions)
        return result

"""Disjunctive-normal-form analysis of KeyNote conditions.

Policy Comprehension (Section 4.2) must read RBAC relations *out of*
credential conditions.  The encoder emits conditions built from equality
atoms, ``&&`` and ``||``; this module normalises any such expression into a
set of conjuncts ``{attribute -> value}``, which the comprehension layer maps
back to ``HasPermission`` / ``UserAssignment`` rows.

Expressions outside this fragment (regex tests, arithmetic, negation) have no
relational reading and raise :class:`~repro.errors.ComprehensionError`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ComprehensionError
from repro.keynote.ast import Attribute, Binary, Clause, ConditionsProgram, Expr, StringLit

Conjunct = Mapping[str, str]


def conditions_to_dnf(program: ConditionsProgram) -> list[dict[str, str]]:
    """Normalise a Conditions program to a list of equality conjuncts.

    Clauses are alternatives (their values are joined), so the program's DNF
    is the union of each clause test's DNF.  Contradictory conjuncts (same
    attribute equated to two values) are dropped as unsatisfiable.

    :raises ComprehensionError: for non-relational condition fragments.
    """
    conjuncts: list[dict[str, str]] = []
    for clause in program.clauses:
        conjuncts.extend(expr_to_dnf(clause.test))
    return conjuncts


def expr_to_dnf(expr: Expr) -> list[dict[str, str]]:
    """DNF of a single expression over equality atoms.

    :raises ComprehensionError: for unsupported operators.
    """
    raw = _walk(expr)
    satisfiable: list[dict[str, str]] = []
    for conjunct in raw:
        if conjunct is not None:
            satisfiable.append(conjunct)
    return satisfiable


def _walk(expr: Expr) -> list[dict[str, str] | None]:
    if isinstance(expr, Binary):
        if expr.op == "||":
            return _walk(expr.left) + _walk(expr.right)
        if expr.op == "&&":
            result: list[dict[str, str] | None] = []
            for left in _walk(expr.left):
                for right in _walk(expr.right):
                    result.append(_merge(left, right))
            return result
        if expr.op == "==":
            attr, value = _equality_atom(expr)
            return [{attr: value}]
        raise ComprehensionError(
            f"operator {expr.op!r} has no relational reading")
    if isinstance(expr, StringLit) and expr.value == "true":
        return [{}]  # the trivially-true conjunct
    if isinstance(expr, StringLit) and expr.value == "false":
        return []  # the empty disjunction (an empty relation grants nothing)
    raise ComprehensionError(f"expression {expr!r} has no relational reading")


def _equality_atom(expr: Binary) -> tuple[str, str]:
    left, right = expr.left, expr.right
    if isinstance(left, Attribute) and isinstance(right, StringLit):
        return left.name, right.value
    if isinstance(right, Attribute) and isinstance(left, StringLit):
        return right.name, left.value
    raise ComprehensionError(
        "equality atoms must compare an attribute with a string literal")


def _merge(a: dict[str, str] | None,
           b: dict[str, str] | None) -> dict[str, str] | None:
    if a is None or b is None:
        return None
    merged = dict(a)
    for key, value in b.items():
        if key in merged and merged[key] != value:
            return None  # contradictory: attribute can't equal two values
        merged[key] = value
    return merged

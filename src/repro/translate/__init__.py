"""Policy translation: the paper's core contribution mechanics.

- :mod:`repro.translate.to_keynote` — encode RBAC relations as KeyNote
  credentials (Figures 5 and 6): Policy Configuration's source format.
- :mod:`repro.translate.from_keynote` — comprehend KeyNote credentials back
  into RBAC relations (Section 4.2) via condition normalisation.
- :mod:`repro.translate.to_spki` — the SPKI/SDSI alternative encoding
  (footnote 1).
- :mod:`repro.translate.migrate` — middleware-to-middleware migration
  (Section 4.3) through the common format, with similarity-based vocabulary
  mapping ([13]).
- :mod:`repro.translate.similarity` — the similarity metrics.
- :mod:`repro.translate.consistency` — global consistency checking
  (Section 4.4's invariant).
- :mod:`repro.translate.propagate` — maintenance propagation of policy
  deltas across every registered system.
"""

from repro.translate.common import (
    ATTR_DOMAIN,
    ATTR_OBJECT_TYPE,
    ATTR_PERMISSION,
    ATTR_ROLE,
    WEBCOM_APP_DOMAIN,
)
from repro.translate.consistency import ConsistencyReport, check_consistency
from repro.translate.from_keynote import comprehend_credentials, comprehend_policy
from repro.translate.imprecise import ImpreciseChecker, ImpreciseResult
from repro.translate.migrate import DomainMapping, migrate_policy
from repro.translate.propagate import PropagationEngine
from repro.translate.similarity import (
    best_match,
    jaccard,
    levenshtein,
    name_similarity,
    overlap,
)
from repro.translate.to_keynote import encode_policy, encode_user_credentials
from repro.translate.to_spki import spki_grant_tag, spki_policy_certificates

__all__ = [
    "ATTR_DOMAIN",
    "ATTR_OBJECT_TYPE",
    "ATTR_PERMISSION",
    "ATTR_ROLE",
    "ConsistencyReport",
    "DomainMapping",
    "ImpreciseChecker",
    "ImpreciseResult",
    "PropagationEngine",
    "WEBCOM_APP_DOMAIN",
    "best_match",
    "check_consistency",
    "comprehend_credentials",
    "comprehend_policy",
    "encode_policy",
    "encode_user_credentials",
    "jaccard",
    "levenshtein",
    "migrate_policy",
    "name_similarity",
    "overlap",
    "spki_grant_tag",
    "spki_policy_certificates",
]

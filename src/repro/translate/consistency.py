"""Global policy consistency (Section 4.4).

"The maintenance of a consistent global policy across the different
heterogeneous middlewares is important for the overall security of the
system.  Making changes to the underlying middleware security policies can
lead to inconsistencies between the authorisation of principals on different
systems."

A *reference* policy (usually the trust-management layer's view) is compared
against each system's extracted policy, restricted to the domains that system
is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.middleware.base import Middleware
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class SystemDrift:
    """One system's divergence from the reference policy."""

    system: str
    missing_grants: frozenset[Grant]
    extra_grants: frozenset[Grant]
    missing_assignments: frozenset[Assignment]
    extra_assignments: frozenset[Assignment]

    def is_consistent(self) -> bool:
        return not (self.missing_grants or self.extra_grants
                    or self.missing_assignments or self.extra_assignments)

    def __str__(self) -> str:
        if self.is_consistent():
            return f"{self.system}: consistent"
        return (f"{self.system}: -{len(self.missing_grants)}g "
                f"+{len(self.extra_grants)}g "
                f"-{len(self.missing_assignments)}a "
                f"+{len(self.extra_assignments)}a")


@dataclass
class ConsistencyReport:
    """Drift of every checked system."""

    drifts: list[SystemDrift] = field(default_factory=list)

    def is_consistent(self) -> bool:
        """True when every system matches the reference."""
        return all(d.is_consistent() for d in self.drifts)

    def inconsistent_systems(self) -> list[str]:
        """Names of systems that diverge."""
        return [d.system for d in self.drifts if not d.is_consistent()]

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self.drifts) or "(no systems)"


def _restrict(policy: RBACPolicy, domains: set[str],
              name: str) -> RBACPolicy:
    restricted = RBACPolicy(name)
    for grant in policy.grants:
        if grant.domain in domains:
            restricted.add_grant(grant)
    for assignment in policy.assignments:
        if assignment.domain in domains:
            restricted.add_assignment(assignment)
    return restricted


def check_consistency(reference: RBACPolicy,
                      systems: Iterable[Middleware],
                      responsibilities: Mapping[str, set[str]] | None = None,
                      ) -> ConsistencyReport:
    """Compare every system's extracted policy against the reference.

    :param responsibilities: system name -> domains it is responsible for;
        defaults to the domains appearing in that system's own extraction
        (which detects *drifted values* but not *wholly missing domains* —
        pass explicit responsibilities to catch those too).
    """
    report = ConsistencyReport()
    for system in systems:
        extracted = system.extract_rbac()
        if responsibilities and system.name in responsibilities:
            domains = set(responsibilities[system.name])
        else:
            domains = extracted.domains()
        want = _restrict(reference, domains, "want")
        have = _restrict(extracted, domains, "have")
        report.drifts.append(SystemDrift(
            system=system.name,
            missing_grants=frozenset(want.grants - have.grants),
            extra_grants=frozenset(have.grants - want.grants),
            missing_assignments=frozenset(want.assignments - have.assignments),
            extra_assignments=frozenset(have.assignments - want.assignments),
        ))
    return report

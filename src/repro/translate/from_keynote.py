"""Policy Comprehension (Section 4.2): KeyNote credentials → RBAC relations.

The inverse of :mod:`repro.translate.to_keynote`.  Conditions are normalised
to DNF (:mod:`repro.translate.dnf`); each conjunct carrying the four RBAC
attributes becomes a ``HasPermission`` row, and each role-membership
credential (conjunct with Domain and Role but no ObjectType/Permission)
becomes a ``UserAssignment`` row for the licensee.

"This process aids comprehension of the overall policy through the
definition of the entire policy in one common format."
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.keystore import Keystore
from repro.errors import ComprehensionError, UnknownKeyError
from repro.keynote.credential import Credential
from repro.keynote.licensees import Principal
from repro.rbac.policy import RBACPolicy
from repro.util.events import AuditLog
from repro.translate.common import (
    ATTR_APP_DOMAIN,
    ATTR_DOMAIN,
    ATTR_OBJECT_TYPE,
    ATTR_PERMISSION,
    ATTR_ROLE,
    WEBCOM_APP_DOMAIN,
)
from repro.translate.dnf import conditions_to_dnf


def comprehend_policy(credential: Credential, policy: RBACPolicy,
                      app_domain: str = WEBCOM_APP_DOMAIN) -> int:
    """Read HasPermission rows out of a Figure-5 style POLICY credential.

    Rows are added to ``policy``; the count of rows found is returned.

    :raises ComprehensionError: for credentials whose conditions fall outside
        the relational fragment.
    """
    rows = 0
    for conjunct in conditions_to_dnf(credential.conditions):
        if conjunct.get(ATTR_APP_DOMAIN, app_domain) != app_domain:
            continue  # scoped to some other application
        has_all = all(attr in conjunct for attr in
                      (ATTR_DOMAIN, ATTR_ROLE, ATTR_OBJECT_TYPE,
                       ATTR_PERMISSION))
        if has_all:
            policy.grant(conjunct[ATTR_DOMAIN], conjunct[ATTR_ROLE],
                         conjunct[ATTR_OBJECT_TYPE],
                         conjunct[ATTR_PERMISSION])
            rows += 1
    return rows


def _licensee_users(credential: Credential, keystore: Keystore | None,
                    audit: AuditLog | None = None) -> list[str]:
    """Map licensee principals back to user names.

    The Figure-6 convention is one principal per membership credential; the
    key name ``Kclaire`` maps back to user ``Claire`` when the keystore (or
    the comment) doesn't say otherwise.

    A principal the keystore cannot resolve falls back to its literal key
    name — but *only* for genuine lookup failures
    (:class:`~repro.errors.UnknownKeyError` / :class:`LookupError`), each
    disclosed as a ``translate.resolve_failed`` audit event.  Anything else
    (a TypeError from a malformed keystore, an attribute error from a stub)
    is a programming error and propagates: silently mapping it to the raw
    key would mistranslate the principal into a ghost user.
    """
    users: list[str] = []
    for key in sorted(credential.principals()):
        name = key
        if keystore is not None:
            try:
                name = keystore.name_of(keystore.resolve(key))
            except (UnknownKeyError, LookupError):
                if audit is not None:
                    audit.record(
                        0.0, "translate.resolve_failed", subject=key,
                        outcome="fallback",
                        credential=credential.authorizer or "?")
                name = key
        if name.startswith("K") and len(name) > 1:
            name = name[1:].capitalize()
        users.append(name)
    return users


def comprehend_membership(credential: Credential, policy: RBACPolicy,
                          keystore: Keystore | None = None,
                          app_domain: str = WEBCOM_APP_DOMAIN,
                          audit: AuditLog | None = None) -> int:
    """Read UserAssignment rows out of a Figure-6 style credential.

    :param audit: optional log receiving ``translate.resolve_failed``
        events for principals the keystore cannot resolve.
    :raises ComprehensionError: if the credential has compound licensees
        (memberships are per-user).
    """
    if not isinstance(credential.licensees, Principal):
        raise ComprehensionError(
            "membership credentials must license exactly one principal")
    rows = 0
    for conjunct in conditions_to_dnf(credential.conditions):
        if conjunct.get(ATTR_APP_DOMAIN, app_domain) != app_domain:
            continue
        if ATTR_DOMAIN not in conjunct or ATTR_ROLE not in conjunct:
            continue
        if ATTR_PERMISSION in conjunct or ATTR_OBJECT_TYPE in conjunct:
            continue  # that's a grant fragment, not a membership
        for user in _licensee_users(credential, keystore, audit):
            policy.assign(user, conjunct[ATTR_DOMAIN], conjunct[ATTR_ROLE])
            rows += 1
    return rows


def comprehend_credentials(credentials: Iterable[Credential],
                           keystore: Keystore | None = None,
                           app_domain: str = WEBCOM_APP_DOMAIN,
                           name: str = "comprehended",
                           verify_signatures: bool = True,
                           audit: AuditLog | None = None) -> RBACPolicy:
    """Synthesise one RBAC policy from a mixed bag of credentials.

    POLICY assertions contribute grants; signed membership credentials
    contribute assignments.  Credentials with invalid signatures are skipped
    (matching the compliance checker's behaviour).  Pass ``audit`` to
    surface ``translate.resolve_failed`` events for unresolvable licensees.
    """
    policy = RBACPolicy(name)
    for credential in credentials:
        if verify_signatures and not credential.verify(keystore):
            continue
        if credential.is_policy:
            comprehend_policy(credential, policy, app_domain)
        else:
            try:
                comprehend_membership(credential, policy, keystore,
                                      app_domain, audit=audit)
            except ComprehensionError:
                continue  # not a membership credential; nothing to read
    return policy

"""SPKI authorisation tags and the tag-intersection algebra (RFC 2693 s6.3).

A tag denotes a *set of permissions*.  Special forms::

    (*)                        the set of all permissions
    (* set e1 e2 ...)          union of the element sets
    (* prefix "abc")           all byte-strings starting "abc"
    (* range numeric ge 1 le 9)  numeric interval (bounds optional)

A literal list tag ``(t1 t2 ... tn)`` denotes all lists whose first n
elements are (elementwise) in the denoted sets — longer lists are implied,
which is what lets ``(ftp (host example.com))`` authorise the more specific
``(ftp (host example.com) (dir /pub))``.

``intersect_tags`` computes a tag denoting the intersection of two tags'
permission sets (or None when it is empty); ``tag_implies`` answers the
subset question used during chain reduction.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TagError
from repro.spki.sexp import SExp, sexp_to_text

Tag = SExp

STAR = ("*",)


def _is_star(tag: Tag) -> bool:
    return tag == STAR


def _is_special(tag: Tag) -> bool:
    return isinstance(tag, tuple) and len(tag) >= 1 and tag[0] == "*"


def _special_kind(tag: Tag) -> str:
    if tag == STAR:
        return "all"
    kind = tag[1]
    if kind not in ("set", "prefix", "range"):
        raise TagError(f"unknown *-form {kind!r} in {sexp_to_text(tag)}")
    return kind


def _range_bounds(tag: Tag) -> tuple[float | None, float | None,
                                     bool, bool]:
    """Return (low, high, low_strict, high_strict) for a range tag."""
    if len(tag) < 3 or tag[2] != "numeric":
        raise TagError(f"only numeric ranges are supported: {sexp_to_text(tag)}")
    low = high = None
    low_strict = high_strict = False
    items = list(tag[3:])
    while items:
        op = items.pop(0)
        if not items:
            raise TagError(f"range bound {op!r} missing a value")
        value = float(items.pop(0))
        if op == "ge":
            low, low_strict = value, False
        elif op == "gt":
            low, low_strict = value, True
        elif op == "le":
            high, high_strict = value, False
        elif op == "lt":
            high, high_strict = value, True
        else:
            raise TagError(f"unknown range operator {op!r}")
    return low, high, low_strict, high_strict


def _range_contains(tag: Tag, value: float) -> bool:
    low, high, low_strict, high_strict = _range_bounds(tag)
    if low is not None and (value < low or (low_strict and value == low)):
        return False
    if high is not None and (value > high or (high_strict and value == high)):
        return False
    return True


def _ranges_intersect(a: Tag, b: Tag) -> Optional[Tag]:
    alow, ahigh, als, ahs = _range_bounds(a)
    blow, bhigh, bls, bhs = _range_bounds(b)
    # Take the tighter bound on each side: for the low bound the larger
    # value wins (strictness wins ties); for the high bound the smaller
    # value wins (strictness wins ties).
    if alow is None:
        low, ls = blow, bls
    elif blow is None:
        low, ls = alow, als
    else:
        low = max(alow, blow)
        ls = (als if alow == low else False) or (bls if blow == low else False)
    if ahigh is None:
        high, hs = bhigh, bhs
    elif bhigh is None:
        high, hs = ahigh, ahs
    else:
        high = min(ahigh, bhigh)
        hs = (ahs if ahigh == high else False) or (bhs if bhigh == high else False)
    if low is not None and high is not None:
        if low > high or (low == high and (ls or hs)):
            return None
    parts: list[str] = ["*", "range", "numeric"]
    if low is not None:
        parts += ["gt" if ls else "ge", _fmt_num(low)]
    if high is not None:
        parts += ["lt" if hs else "le", _fmt_num(high)]
    return tuple(parts)


def _fmt_num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def intersect_tags(a: Tag, b: Tag) -> Optional[Tag]:
    """Intersection of two tags, or None if the permission sets are disjoint.

    :raises TagError: on malformed *-forms.
    """
    if _is_star(a):
        return b
    if _is_star(b):
        return a
    a_special = _is_special(a)
    b_special = _is_special(b)

    if a_special and _special_kind(a) == "set":
        results = [r for elt in a[2:] if (r := intersect_tags(elt, b)) is not None]
        if not results:
            return None
        if len(results) == 1:
            return results[0]
        return ("*", "set", *results)
    if b_special and _special_kind(b) == "set":
        return intersect_tags(b, a)

    if a_special and b_special:
        kind_a, kind_b = _special_kind(a), _special_kind(b)
        if kind_a == kind_b == "prefix":
            pa, pb = a[2], b[2]
            if pa.startswith(pb):
                return a
            if pb.startswith(pa):
                return b
            return None
        if kind_a == kind_b == "range":
            return _ranges_intersect(a, b)
        return None  # prefix ∩ range of strings: treat as disjoint

    if a_special:
        return intersect_tags(b, a) if not b_special else None

    if b_special:
        # a is concrete (atom or list), b is a *-form: a survives iff a ∈ b.
        kind = _special_kind(b)
        if kind == "prefix":
            if isinstance(a, str) and a.startswith(b[2]):
                return a
            return None
        if kind == "range":
            if isinstance(a, str):
                try:
                    if _range_contains(b, float(a)):
                        return a
                except ValueError:
                    return None
            return None
        raise TagError(f"unhandled *-form {sexp_to_text(b)}")

    # Both concrete.
    if isinstance(a, str) or isinstance(b, str):
        return a if a == b else None
    # Both lists: elementwise intersection; the shorter list implies (*) for
    # its missing tail, so the longer list's extra elements survive.
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    result: list[Tag] = []
    for i, elt in enumerate(longer):
        if i < len(shorter):
            merged = intersect_tags(shorter[i], elt)
            if merged is None:
                return None
            result.append(merged)
        else:
            result.append(elt)
    return tuple(result)


def tag_implies(granter: Tag, requested: Tag) -> bool:
    """True if ``granter`` authorises everything ``requested`` denotes.

    Implemented via intersection: granter implies requested iff their
    intersection equals the requested set.  For the tag forms supported here
    the syntactic check below is exact.
    """
    merged = intersect_tags(granter, requested)
    return merged == requested

"""SPKI/SDSI trust management (RFC 2693).

The paper (footnote 1) notes that Secure WebCom also supports SPKI/SDSI and
that its results carry over.  This package implements the SPKI machinery the
framework needs: S-expressions, authorisation tags with the standard
intersection algebra, authorisation and name certificates, and 5-tuple chain
reduction.

The translation layer (:mod:`repro.translate`) can target SPKI certificates
as an alternative to KeyNote credentials, and the test suite replays the
paper's Salaries scenario through both.
"""

from repro.spki.cert import AuthCert, NameCert, Validity
from repro.spki.chain import CertStore, FiveTuple, reduce_chain
from repro.spki.sexp import SExp, parse_sexp, sexp_to_text
from repro.spki.tags import Tag, intersect_tags, tag_implies

__all__ = [
    "AuthCert",
    "CertStore",
    "FiveTuple",
    "NameCert",
    "SExp",
    "Tag",
    "Validity",
    "intersect_tags",
    "parse_sexp",
    "reduce_chain",
    "sexp_to_text",
    "tag_implies",
]

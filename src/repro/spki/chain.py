"""SPKI certificate chain discovery and 5-tuple reduction (RFC 2693 s6.4).

The reduction rule composes two auth certs ``(I1, S1, d1, T1, V1)`` and
``(I2, S2, d2, T2, V2)`` when ``S1 == I2`` and ``d1`` is true, yielding
``(I1, S2, d2, T1 ∩ T2, V1 ∩ V2)``.  A request from key ``K`` for tag ``T``
at time ``t`` is authorised by a store when some chain starting at the
verifier's ACL entry reduces to a tuple whose subject is ``K``, whose tag
implies ``T`` and whose validity contains ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.crypto.keystore import Keystore
from repro.errors import ChainError
from repro.spki.cert import AuthCert, NameCert, Validity
from repro.spki.tags import Tag, intersect_tags, tag_implies


@dataclass(frozen=True)
class FiveTuple:
    """The reduced form of a chain of auth certs."""

    issuer: str
    subject: str
    delegate: bool
    tag: Tag
    validity: Validity

    @classmethod
    def from_cert(cls, cert: AuthCert) -> "FiveTuple":
        return cls(cert.issuer, cert.subject, cert.delegate, cert.tag,
                   cert.validity)

    def compose(self, other: "FiveTuple") -> Optional["FiveTuple"]:
        """Reduce ``self`` then ``other``, or None if composition fails."""
        if self.subject != other.issuer or not self.delegate:
            return None
        tag = intersect_tags(self.tag, other.tag)
        if tag is None:
            return None
        validity = self.validity.intersect(other.validity)
        if validity.is_empty():
            return None
        return FiveTuple(self.issuer, other.subject, other.delegate, tag,
                         validity)


def reduce_chain(certs: Iterable[AuthCert]) -> FiveTuple:
    """Reduce an explicit chain (in issuer-to-subject order) to one tuple.

    :raises ChainError: if adjacent certificates do not compose.
    """
    tuples = [FiveTuple.from_cert(c) for c in certs]
    if not tuples:
        raise ChainError("cannot reduce an empty chain")
    result = tuples[0]
    for nxt in tuples[1:]:
        composed = result.compose(nxt)
        if composed is None:
            raise ChainError(
                f"chain breaks between {result.subject!r} and {nxt.issuer!r}")
        result = composed
    return result


class CertStore:
    """A collection of certs supporting name resolution and chain search."""

    def __init__(self, keystore: Keystore | None = None,
                 verify_signatures: bool = True) -> None:
        self._keystore = keystore
        self._verify = verify_signatures and keystore is not None
        self._auth_certs: list[AuthCert] = []
        self._name_certs: list[NameCert] = []

    # -- population ----------------------------------------------------------

    def add_auth(self, cert: AuthCert) -> bool:
        """Add an auth cert; returns False (and skips) on bad signature."""
        if self._verify and not cert.verify(self._keystore):
            return False
        self._auth_certs.append(cert)
        return True

    def add_name(self, cert: NameCert) -> bool:
        """Add a name cert; returns False (and skips) on bad signature."""
        if self._verify and not cert.verify(self._keystore):
            return False
        self._name_certs.append(cert)
        return True

    @property
    def auth_certs(self) -> list[AuthCert]:
        return list(self._auth_certs)

    @property
    def name_certs(self) -> list[NameCert]:
        return list(self._name_certs)

    # -- SDSI name resolution --------------------------------------------------

    def resolve_name(self, issuer: str, name: str,
                     _seen: frozenset | None = None) -> set[str]:
        """All keys that ``issuer``'s local ``name`` resolves to.

        Linked names (a name cert whose subject is another name, written
        ``"key: name"``) are followed transitively; cycles resolve to
        nothing.
        """
        seen = _seen or frozenset()
        if (issuer, name) in seen:
            return set()
        seen = seen | {(issuer, name)}
        keys: set[str] = set()
        for cert in self._name_certs:
            if cert.issuer != issuer or cert.name != name:
                continue
            subject = cert.subject
            if ": " in subject:
                next_issuer, next_name = subject.split(": ", 1)
                keys |= self.resolve_name(next_issuer, next_name, seen)
            else:
                keys.add(subject)
        return keys

    def _subjects_of(self, cert: AuthCert) -> set[str]:
        """Concrete keys a cert's subject denotes (resolving names)."""
        if ": " in cert.subject:
            issuer, name = cert.subject.split(": ", 1)
            return self.resolve_name(issuer, name)
        return {cert.subject}

    # -- chain search ------------------------------------------------------------

    def find_chain(self, root: str, requester: str, tag: Tag,
                   at_time: float = 0.0) -> Optional[list[AuthCert]]:
        """Find a cert chain from ``root`` authorising ``requester`` for
        ``tag`` at ``at_time``; None if no chain exists.

        Depth-first over the delegation graph, tracking the accumulated tag
        intersection so dead branches prune early.
        """

        def search(issuer: str, needed: Tag,
                   path: tuple[AuthCert, ...],
                   visited: frozenset[str]) -> Optional[list[AuthCert]]:
            for cert in self._auth_certs:
                if cert.issuer != issuer:
                    continue
                if not cert.validity.contains(at_time):
                    continue
                remaining = intersect_tags(cert.tag, needed)
                if remaining is None or not tag_implies(remaining, tag):
                    continue
                for subject in self._subjects_of(cert):
                    if subject == requester:
                        return list(path) + [cert]
                    if cert.delegate and subject not in visited:
                        found = search(subject, remaining,
                                       path + (cert,), visited | {subject})
                        if found is not None:
                            return found
            return None

        return search(root, ("*",), (), frozenset({root}))

    def is_authorised(self, root: str, requester: str, tag: Tag,
                      at_time: float = 0.0) -> bool:
        """True if a valid chain authorises the request."""
        return self.find_chain(root, requester, tag, at_time) is not None

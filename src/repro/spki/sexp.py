"""S-expressions: the syntax of SPKI certificates and tags (RFC 2693).

An S-expression is an atom (string) or a list of S-expressions.  The textual
form uses parentheses with whitespace separation; atoms containing special
characters are double-quoted.
"""

from __future__ import annotations

from typing import Union

from repro.errors import SExpressionError

SExp = Union[str, tuple]  # atoms are str; lists are tuples of SExp

_SPECIAL = set('()" \t\r\n')


def parse_sexp(text: str) -> SExp:
    """Parse one S-expression.

    :raises SExpressionError: on malformed input or trailing garbage.
    """
    expr, pos = _parse(text, _skip_ws(text, 0))
    pos = _skip_ws(text, pos)
    if pos != len(text):
        raise SExpressionError(
            f"trailing garbage after S-expression: {text[pos:pos + 20]!r}")
    return expr


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def _parse(text: str, pos: int) -> tuple[SExp, int]:
    if pos >= len(text):
        raise SExpressionError("unexpected end of input")
    ch = text[pos]
    if ch == "(":
        pos += 1
        items: list[SExp] = []
        while True:
            pos = _skip_ws(text, pos)
            if pos >= len(text):
                raise SExpressionError("unterminated list")
            if text[pos] == ")":
                return tuple(items), pos + 1
            item, pos = _parse(text, pos)
            items.append(item)
    if ch == ")":
        raise SExpressionError(f"unexpected ')' at position {pos}")
    if ch == '"':
        pos += 1
        chars: list[str] = []
        while pos < len(text) and text[pos] != '"':
            if text[pos] == "\\" and pos + 1 < len(text):
                pos += 1
            chars.append(text[pos])
            pos += 1
        if pos >= len(text):
            raise SExpressionError("unterminated quoted atom")
        return "".join(chars), pos + 1
    # bare atom
    end = pos
    while end < len(text) and text[end] not in _SPECIAL:
        end += 1
    return text[pos:end], end


def sexp_to_text(expr: SExp) -> str:
    """Serialise an S-expression to its textual form.

    :raises SExpressionError: for non-SExp values.
    """
    if isinstance(expr, str):
        if not expr or any(c in _SPECIAL for c in expr) or expr.startswith('"'):
            escaped = expr.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return expr
    if isinstance(expr, tuple):
        return "(" + " ".join(sexp_to_text(item) for item in expr) + ")"
    raise SExpressionError(f"not an S-expression: {expr!r}")

"""SPKI certificates: authorisation certs and SDSI name certs (RFC 2693).

An authorisation cert is the 5-tuple ``(issuer, subject, delegate, tag,
validity)``: the issuer grants the subject the permissions denoted by the
tag, optionally with the right to delegate onward.  A name cert binds a
local name in the issuer's namespace to a subject key (SDSI linked names).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.keys import PrivateKey, Signature
from repro.crypto.keystore import Keystore
from repro.errors import ChainError
from repro.spki.sexp import SExp, parse_sexp, sexp_to_text
from repro.spki.tags import Tag


@dataclass(frozen=True)
class Validity:
    """A validity window in simulated time; None bounds are open."""

    not_before: float | None = None
    not_after: float | None = None

    def contains(self, timestamp: float) -> bool:
        """True if ``timestamp`` falls inside the window."""
        if self.not_before is not None and timestamp < self.not_before:
            return False
        if self.not_after is not None and timestamp > self.not_after:
            return False
        return True

    def intersect(self, other: "Validity") -> "Validity":
        """The overlap of two windows (used in 5-tuple reduction)."""
        nb = (self.not_before if other.not_before is None
              else other.not_before if self.not_before is None
              else max(self.not_before, other.not_before))
        na = (self.not_after if other.not_after is None
              else other.not_after if self.not_after is None
              else min(self.not_after, other.not_after))
        return Validity(nb, na)

    def is_empty(self) -> bool:
        """True if the window contains no instants."""
        return (self.not_before is not None and self.not_after is not None
                and self.not_before > self.not_after)


#: A window covering all of time.
ALWAYS = Validity()


@dataclass(frozen=True)
class AuthCert:
    """An SPKI authorisation certificate.

    :param issuer: principal granting the authority.
    :param subject: principal (or resolved name) receiving it.
    :param tag: the permission set granted.
    :param delegate: True if the subject may delegate onward.
    :param validity: validity window.
    :param signature: encoded signature over the canonical bytes.
    """

    issuer: str
    subject: str
    tag: Tag
    delegate: bool = False
    validity: Validity = Validity()
    signature: str = ""

    def canonical_bytes(self) -> bytes:
        body = (
            "(cert"
            f" (issuer {sexp_to_text(self.issuer)})"
            f" (subject {sexp_to_text(self.subject)})"
            + (" (propagate)" if self.delegate else "")
            + f" (tag {sexp_to_text(self.tag)})"
            + self._validity_text()
            + ")"
        )
        return body.encode("utf-8")

    def _validity_text(self) -> str:
        parts = []
        if self.validity.not_before is not None:
            parts.append(f"(not-before {self.validity.not_before})")
        if self.validity.not_after is not None:
            parts.append(f"(not-after {self.validity.not_after})")
        return (" " + " ".join(parts)) if parts else ""

    def sign(self, private_key: PrivateKey) -> "AuthCert":
        """Return a signed copy."""
        return replace(self, signature=private_key.sign(self.canonical_bytes()).encode())

    def verify(self, keystore: Keystore) -> bool:
        """Verify the issuer's signature via the keystore."""
        if not self.signature:
            return False
        try:
            public = keystore.public(self.issuer) if self.issuer in keystore \
                else None
            if public is None:
                from repro.crypto.keys import PublicKey

                public = PublicKey.decode(self.issuer)
            return public.verify(self.canonical_bytes(),
                                 Signature.decode(self.signature))
        except Exception:
            return False

    def to_text(self) -> str:
        """Human-readable serialisation (canonical body + signature)."""
        text = self.canonical_bytes().decode("utf-8")
        if self.signature:
            text += f"\n(signature {sexp_to_text(self.signature)})"
        return text

    @classmethod
    def tag_from_text(cls, text: str) -> Tag:
        """Parse a tag S-expression from text."""
        return parse_sexp(text)


@dataclass(frozen=True)
class NameCert:
    """An SDSI name certificate: ``issuer``'s local ``name`` is ``subject``.

    Subjects may themselves be names (``key: name``) forming linked names;
    resolution is in :class:`repro.spki.chain.CertStore`.
    """

    issuer: str
    name: str
    subject: str
    validity: Validity = Validity()
    signature: str = ""

    def canonical_bytes(self) -> bytes:
        return (
            f"(cert (issuer (name {sexp_to_text(self.issuer)} "
            f"{sexp_to_text(self.name)})) "
            f"(subject {sexp_to_text(self.subject)}))"
        ).encode("utf-8")

    def sign(self, private_key: PrivateKey) -> "NameCert":
        """Return a signed copy."""
        return replace(self, signature=private_key.sign(self.canonical_bytes()).encode())

    def verify(self, keystore: Keystore) -> bool:
        """Verify the issuer's signature."""
        if not self.signature:
            return False
        try:
            return keystore.public(self.issuer).verify(
                self.canonical_bytes(), Signature.decode(self.signature))
        except Exception:
            return False

    def full_name(self) -> str:
        """The ``issuer's name`` spelled as text."""
        return f"{self.issuer}'s {self.name}"


def require_subject_key(subject: SExp) -> str:
    """Assert a subject is a bare key (after name resolution).

    :raises ChainError: if it is still a compound name.
    """
    if not isinstance(subject, str):
        raise ChainError(f"subject is not a key: {sexp_to_text(subject)}")
    return subject

"""The hostile-traffic chaos pack: ``repro overload-bench`` (OVERLOAD_9).

BENCH_7 proved the serve plane is *fast* when traffic is polite.  This
bench proves it is *survivable* when traffic is hostile.  Three seeded
scenarios drive a real daemon (tight admission limits, fast brownout
hysteresis) with 4x its intended client population:

- **flash_crowd** — every client floods cacheable mediations at once: the
  classic synchronized stampede.  Admission must shed, brownout must
  engage, and goodput for admitted work must hold.
- **cache_busting** — every request carries a unique attribute, so the
  PR-3 mediation cache is useless and each admitted request pays the full
  stack.  The expensive-traffic worst case.
- **revocation_storm** — an admin client add/revokes a credential in a
  tight loop while the flood runs: every revocation flushes decision
  caches, so the flood keeps re-paying mediation *and* the control-plane
  revocations must land while the plane sheds data-plane load.

Every scenario also runs a **control client** (pings + status on the
CONTROL priority class) concurrently with the flood — the bench requires
it is *never* shed — and flood clients retry through the budgeted
:meth:`~repro.serve.client.ServeClient.call_with_retry` discipline, so the
run exercises the whole loop: refusal → hint → jittered backoff → budget.

The accounting identity at the heart of the report: the sum of admission
refusals *observed by clients* must equal the sum of sheds *counted by the
server*.  Together with ``lost == 0`` it proves no shed request was
silently dropped — and since a refusal is an error response, no shed
request was answered with an allow.  Oracle probes ride along in the
flood; every *accepted* probe must agree with the PR-5 conformance oracle.

A final deadline scenario sends pre-expired and generous deadlines and
checks expired work is refused before dispatch (counted apart from sheds).
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.keynote.credential import Credential
from repro.serve.admission import (
    AdmissionController,
    BrownoutController,
    RetryBudget,
)
from repro.serve.bench import ALLOWED_OPS, DENIED_OP, percentile
from repro.serve.client import ServeCallError, ServeClient
from repro.serve.plane import ServePolicyPlane
from repro.serve.server import ReproServer
from repro.util.clock import WallClock

#: the hostile scenarios, in the order they run
SCENARIOS = ("flash_crowd", "cache_busting", "revocation_storm")

#: offered load relative to the baseline population
OVERLOAD_FACTOR = 4

#: client-side refusal types that correspond to server-side sheds
REFUSAL_TYPES = ("OverloadedError", "RateLimitedError")


def _build_plane(root: "Path | str | None",
                 users: int) -> ServePolicyPlane:
    """A durable plane whose trust root authorises ``users`` principals."""
    plane = ServePolicyPlane(root=root, clock=WallClock(), cache_ttl=300.0)
    plane.keystore.create("KWebCom")
    keys = []
    for index in range(users):
        plane.keystore.create(f"Kuser{index:02d}")
        keys.append(f"Kuser{index:02d}")
    licensees = " || ".join(f'"{key}"' for key in keys)
    ops = " || ".join(f'op=="{op}"' for op in ALLOWED_OPS)
    plane.session.add_policy(
        f"Authorizer: POLICY\n"
        f"Licensees: {licensees}\n"
        f'Conditions: app_domain=="WebCom" && ({ops});')
    return plane


def _requests_for(scenario: str, index: int,
                  requests: int) -> list[dict[str, Any]]:
    """One client's request set under a scenario's traffic shape."""
    ops = ALLOWED_OPS + (DENIED_OP,)
    out = []
    for n in range(requests):
        attributes: dict[str, str] = {"app_domain": "WebCom"}
        if scenario == "cache_busting":
            # A unique attribute per request: every cache key is new, so
            # each admitted request pays the full mediation stack.
            attributes["nonce"] = f"bust-{index}-{n}"
        out.append({
            "user": f"user{index:02d}",
            "user_key": f"Kuser{index:02d}",
            "object_type": "graph",
            "operation": ops[n % len(ops)],
            "attributes": attributes,
        })
    return out


def _storm_grant(plane: ServePolicyPlane) -> str:
    """The credential the revocation storm add/revokes (a storm-only
    principal, so flood verdicts stay oracle-stable throughout)."""
    plane.keystore.create("Kstorm")
    return Credential.build(
        "KWebCom", '"Kstorm"', 'app_domain=="WebCom" && op=="stage"',
    ).sign(plane.keystore.pair("KWebCom").private).to_text()


#: concurrent requests each flood client keeps in the air — a stampede,
#: not a polite sequential trickle (that is what makes the flood hostile)
FLOOD_WAVE = 8


async def _flood_client(client: ServeClient,
                        requests: list[dict[str, Any]],
                        probe_every: int) -> dict[str, Any]:
    """One hostile client's pass: concurrent waves of budgeted retries."""
    latencies: list[float] = []
    stats = {"ok": 0, "denied": 0, "refused": 0, "deadline": 0,
             "errors": 0, "lost": 0, "probes": 0, "disagreements": 0}

    async def _one(n: int, params: dict[str, Any]) -> None:
        method = "probe" if probe_every and n % probe_every == 0 \
            else "mediate"
        started = time.perf_counter()
        try:
            result = await client.call_with_retry(method, params,
                                                  max_attempts=3,
                                                  timeout=30.0)
        except ServeCallError as exc:
            if exc.error_type in REFUSAL_TYPES:
                stats["refused"] += 1
            elif exc.error_type == "DeadlineExceededError":
                stats["deadline"] += 1
            else:
                stats["errors"] += 1
            return
        except Exception:
            stats["lost"] += 1
            return
        latencies.append(time.perf_counter() - started)
        if result["allowed"]:
            stats["ok"] += 1
        else:
            stats["denied"] += 1
        if method == "probe":
            stats["probes"] += 1
            if not result["agree"]:
                stats["disagreements"] += 1

    for start in range(0, len(requests), FLOOD_WAVE):
        wave = requests[start:start + FLOOD_WAVE]
        await asyncio.gather(*[_one(start + k, params)
                               for k, params in enumerate(wave)])
    return {**stats, "latencies": latencies}


async def _control_loop(client: ServeClient,
                        stop: asyncio.Event) -> dict[str, Any]:
    """CONTROL-priority traffic riding through the flood, un-sheddable."""
    calls = 0
    refused = 0
    errors = 0
    while not stop.is_set():
        for method in ("ping", "status"):
            try:
                await client.call(method, {})
            except ServeCallError as exc:
                if exc.error_type in REFUSAL_TYPES:
                    refused += 1
                else:
                    errors += 1
            calls += 1
        await asyncio.sleep(0.02)
    return {"calls": calls, "refused": refused, "errors": errors}


async def _storm_loop(client: ServeClient, grant: str,
                      stop: asyncio.Event) -> dict[str, Any]:
    """The revocation storm: install/revoke cycles until the flood ends."""
    cycles = 0
    refused = 0
    while not stop.is_set():
        try:
            await client.call_with_retry("add_credential", {"text": grant},
                                         max_attempts=3)
            await client.call("revoke", {"text": grant})
            cycles += 1
        except ServeCallError as exc:
            if exc.error_type in REFUSAL_TYPES:
                refused += 1
            else:
                raise
        await asyncio.sleep(0)
    return {"cycles": cycles, "refused": refused}


def _aggregate(outcomes: list[dict[str, Any]],
               elapsed: float) -> dict[str, Any]:
    latencies = [lat for out in outcomes for lat in out["latencies"]]
    accepted = len(latencies)
    return {
        "issued": sum(len(o["latencies"]) + o["refused"] + o["deadline"]
                      + o["errors"] + o["lost"] for o in outcomes),
        "accepted": accepted,
        "allowed": sum(o["ok"] for o in outcomes),
        "denied": sum(o["denied"] for o in outcomes),
        "refused_exhausted": sum(o["refused"] for o in outcomes),
        "deadline_refused": sum(o["deadline"] for o in outcomes),
        "errors": sum(o["errors"] for o in outcomes),
        "lost": sum(o["lost"] for o in outcomes),
        "probes": sum(o["probes"] for o in outcomes),
        "disagreements": sum(o["disagreements"] for o in outcomes),
        "seconds": elapsed,
        "goodput_per_sec": accepted / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
    }


async def _run_pass(scenario: str, *, clients: int, requests: int,
                    probe_every: int, max_inflight: int, peer_rate: float,
                    peer_burst: float, seed: int,
                    root: "Path | str") -> dict[str, Any]:
    """Boot one fresh daemon under tight limits and run one scenario."""
    plane = _build_plane(root, users=clients)
    admission = AdmissionController(
        clock=plane.clock, max_inflight=max_inflight, peer_rate=peer_rate,
        peer_burst=peer_burst, obs=plane.obs,
        brownout=BrownoutController(clock=plane.clock, window=0.5,
                                    sustain=0.1, cool=0.5, stale_ttl=60.0,
                                    obs=plane.obs))
    server = await ReproServer(plane, admission=admission).start()
    host, port = server.host, server.port
    rng = random.Random(seed)
    pool = [await ServeClient(
        f"{scenario}-{n}", retry_budget=RetryBudget(),
        rng=random.Random(rng.random())).connect(host, port)
        for n in range(clients)]
    control = await ServeClient("control").connect(host, port)
    observer = await ServeClient("observer").connect(host, port)
    storm_task = None
    storm_client = None
    try:
        for client in pool:
            await client.hello(role="flood")
        await control.hello(role="control")
        await observer.hello(role="observer")
        await observer.subscribe("decision", "server")
        stop = asyncio.Event()
        control_task = asyncio.create_task(_control_loop(control, stop))
        if scenario == "revocation_storm":
            storm_client = await ServeClient(
                "storm-admin", retry_budget=RetryBudget(capacity=50.0),
                rng=random.Random(seed + 1)).connect(host, port)
            await storm_client.hello(role="admin")
            storm_task = asyncio.create_task(
                _storm_loop(storm_client, _storm_grant(plane), stop))
        started = time.perf_counter()
        outcomes = await asyncio.gather(*[
            _flood_client(client, _requests_for(scenario, n, requests),
                          probe_every)
            for n, client in enumerate(pool)])
        elapsed = time.perf_counter() - started
        stop.set()
        control_stats = await control_task
        storm_stats = await storm_task if storm_task is not None else None
        status = await control.call("status")
        brownout_events = 0
        while observer.events.qsize() > 0:
            event = observer.events.get_nowait()
            if event.get("event") == "server" \
                    and event.get("data", {}).get("state") == "brownout":
                brownout_events += 1
    finally:
        for client in pool:
            await client.close()
        await control.close()
        await observer.close()
        if storm_client is not None:
            await storm_client.close()
    await server.shutdown(reason=f"{scenario} done")
    refusals_observed = (sum(c.refusals_seen for c in pool)
                        + control.refusals_seen
                        + (storm_client.refusals_seen
                           if storm_client is not None else 0))
    admission_snap = status["admission"]
    return {
        "traffic": _aggregate(list(outcomes), elapsed),
        "retries": sum(c.retry_budget.retries for c in pool),
        "retry_budget_exhausted": sum(c.retry_budget.exhausted
                                      for c in pool),
        "control": control_stats,
        "storm": storm_stats,
        "refusals_observed": refusals_observed,
        "brownout_events_seen": brownout_events,
        "server": {
            "admission": admission_snap,
            "brownout": status["brownout"],
            "deadlines": status["deadlines"],
            "events_shed": status["events_shed"],
            "reply_cache": status["reply_cache"],
            "stale_mediations": status["plane"]["stale_mediations"],
            "cache": status["plane"]["cache"],
            "oracle_disagreements": status["plane"]["oracle_disagreements"],
        },
        "accounting": {
            "sheds_total": admission_snap["shed"]["total"],
            "refusals_observed": refusals_observed,
            "refusals_match_sheds":
                refusals_observed == admission_snap["shed"]["total"],
        },
    }


async def _run_deadline_pass(root: "Path | str",
                             count: int = 20) -> dict[str, Any]:
    """Pre-expired deadlines must be refused before dispatch; generous
    deadlines must not be."""
    plane = _build_plane(root, users=1)
    server = await ReproServer(plane).start()
    client = await ServeClient("deadline").connect(server.host, server.port)
    try:
        await client.hello(role="deadline")  # syncs server time
        params = _requests_for("flash_crowd", 0, 1)[0]
        expired_refused = 0
        for _ in range(count):
            try:
                await client.call("mediate", dict(params),
                                  deadline=client.deadline(-5.0))
            except ServeCallError as exc:
                if exc.error_type == "DeadlineExceededError":
                    expired_refused += 1
        generous_ok = 0
        for _ in range(count):
            result = await client.call("mediate", dict(params),
                                       deadline=client.deadline(60.0))
            if "allowed" in result:
                generous_ok += 1
        status = await client.call("status")
    finally:
        await client.close()
        await server.shutdown(reason="deadline pass done")
    return {
        "sent_expired": count,
        "expired_refused": expired_refused,
        "sent_generous": count,
        "generous_answered": generous_ok,
        "server_expired_pre_dispatch":
            status["deadlines"]["expired_pre_dispatch"],
        "server_expired_before_write":
            status["deadlines"]["expired_before_write"],
    }


async def _run(clients: int, requests: int, probe_every: int,
               max_inflight: int, peer_rate: float, peer_burst: float,
               seed: int, root: "Path | str") -> dict[str, Any]:
    root = Path(root)
    baseline_clients = max(1, clients // OVERLOAD_FACTOR)
    baseline = await _run_pass(
        "flash_crowd", clients=baseline_clients, requests=requests,
        probe_every=probe_every, max_inflight=max_inflight,
        peer_rate=peer_rate, peer_burst=peer_burst, seed=seed,
        root=root / "baseline")
    scenarios = {}
    for n, scenario in enumerate(SCENARIOS):
        scenarios[scenario] = await _run_pass(
            scenario, clients=clients, requests=requests,
            probe_every=probe_every, max_inflight=max_inflight,
            peer_rate=peer_rate, peer_burst=peer_burst,
            seed=seed + 100 * (n + 1), root=root / scenario)
    deadlines = await _run_deadline_pass(root / "deadline")
    baseline_goodput = baseline["traffic"]["goodput_per_sec"]
    worst = min(s["traffic"]["goodput_per_sec"]
                for s in scenarios.values())
    return {
        "bench": "OVERLOAD_9",
        "timescale": "wall",
        "seed": seed,
        "clients": clients,
        "baseline_clients": baseline_clients,
        "overload_factor": OVERLOAD_FACTOR,
        "requests_per_client": requests,
        "limits": {"max_inflight": max_inflight, "peer_rate": peer_rate,
                   "peer_burst": peer_burst},
        "baseline": baseline,
        "scenarios": scenarios,
        "deadlines": deadlines,
        "goodput": {
            "baseline_per_sec": baseline_goodput,
            "worst_scenario_per_sec": worst,
            "ratio": (worst / baseline_goodput if baseline_goodput > 0
                      else 0.0),
        },
    }


def run_overload_bench(clients: int = 16, requests: int = 40,
                       probe_every: int = 5, max_inflight: int = 4,
                       peer_rate: float = 10.0, peer_burst: float = 5.0,
                       seed: int = 9,
                       root: "Path | str | None" = None) -> dict[str, Any]:
    """Run the hostile-traffic bench; returns the OVERLOAD_9 report."""
    if root is None:
        with tempfile.TemporaryDirectory(prefix="overload-bench-") as tmp:
            return asyncio.run(_run(clients, requests, probe_every,
                                    max_inflight, peer_rate, peer_burst,
                                    seed, tmp))
    return asyncio.run(_run(clients, requests, probe_every, max_inflight,
                            peer_rate, peer_burst, seed, root))


def check_overload(report: dict[str, Any],
                   goodput_floor: float = 0.5,
                   p99_ceiling_ms: float = 2500.0) -> list[str]:
    """The acceptance gates of ``repro overload-bench --check``.

    Returns the failed gates (empty means pass).  As with BENCH_7 the
    gates are correctness/robustness properties, not raw speed: goodput is
    gated as a *ratio* to the same hardware's baseline, and the p99 bound
    for accepted requests is generous — the property is "bounded", not
    "fast".
    """
    failures = []
    baseline_p99 = report["baseline"]["traffic"]["p99_ms"]
    p99_bound = max(p99_ceiling_ms, 25.0 * baseline_p99)
    if report["goodput"]["ratio"] < goodput_floor:
        failures.append(
            f"worst-scenario goodput is {report['goodput']['ratio']:.2f} "
            f"of baseline (floor {goodput_floor})")
    for name, scenario in report["scenarios"].items():
        traffic = scenario["traffic"]
        if traffic["lost"] != 0:
            failures.append(f"{name}: {traffic['lost']} requests lost "
                            f"(need 0 — every request must resolve)")
        if traffic["errors"] != 0:
            failures.append(f"{name}: {traffic['errors']} unexpected "
                            f"errors")
        if not scenario["accounting"]["refusals_match_sheds"]:
            failures.append(
                f"{name}: clients observed "
                f"{scenario['accounting']['refusals_observed']} refusals "
                f"but the server counted "
                f"{scenario['accounting']['sheds_total']} sheds — "
                f"silent drops or shed allows")
        if scenario["control"]["refused"] != 0:
            failures.append(f"{name}: control-plane traffic was shed "
                            f"{scenario['control']['refused']} times "
                            f"(must never be)")
        shed_control = (scenario["server"]["admission"]["shed"]
                        ["by_priority"]["control"])
        if shed_control != 0:
            failures.append(f"{name}: server shed {shed_control} "
                            f"control-priority requests")
        if traffic["disagreements"] != 0:
            failures.append(f"{name}: {traffic['disagreements']} oracle "
                            f"disagreements on accepted probes (need 0)")
        if traffic["accepted"] == 0:
            failures.append(f"{name}: no requests were accepted at all")
        if traffic["p99_ms"] > p99_bound:
            failures.append(f"{name}: accepted-request p99 "
                            f"{traffic['p99_ms']:.0f} ms exceeds the "
                            f"bound {p99_bound:.0f} ms")
    flash = report["scenarios"]["flash_crowd"]
    if flash["server"]["admission"]["shed"]["total"] == 0:
        failures.append("flash_crowd: the 4x flood produced no sheds — "
                        "admission control did not engage")
    if flash["server"]["brownout"]["max_level"] < 1:
        failures.append("flash_crowd: brownout never engaged under "
                        "sustained 4x overload")
    storm = report["scenarios"]["revocation_storm"]["storm"]
    if storm is None or storm["cycles"] == 0:
        failures.append("revocation_storm: no revocation cycles landed")
    deadlines = report["deadlines"]
    if deadlines["expired_refused"] != deadlines["sent_expired"]:
        failures.append(
            f"deadlines: only {deadlines['expired_refused']} of "
            f"{deadlines['sent_expired']} pre-expired requests were "
            f"refused")
    if deadlines["server_expired_pre_dispatch"] \
            != deadlines["sent_expired"]:
        failures.append("deadlines: server pre-dispatch expiry count "
                        "disagrees with the client's")
    if deadlines["generous_answered"] != deadlines["sent_generous"]:
        failures.append("deadlines: generous-deadline requests were not "
                        "all answered")
    return failures

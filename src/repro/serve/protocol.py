"""The ``repro serve`` wire protocol: newline-delimited JSON.

One TCP connection carries a stream of UTF-8 lines, each a JSON object.
Three shapes travel on the wire:

- **request** (client → server)::

      {"id": "cli-7", "method": "mediate", "params": {...}}

- **response** (server → client), matched to the request by ``id``::

      {"id": "cli-7", "ok": true, "result": {...}}
      {"id": "cli-7", "ok": false, "error": {"type": "...", "message": "..."}}

- **event** (server → subscribed clients, unsolicited)::

      {"event": "decision", "data": {...}}

Request ids double as idempotency tokens, mirroring the simulated network's
result-dedup semantics (``WebComClient`` keeps a reply cache and replays the
recorded reply for a duplicate request id instead of re-executing — see
:mod:`repro.webcom.node`): the server caches each response per connection
and replays it verbatim when the same id arrives again, so a client retry
after a lost reply cannot double-apply an update.

Framing is deliberately line-based: any language with a socket and a JSON
parser can speak it, which is the point of an always-on heterogeneous
middleware plane.  A line longer than :data:`MAX_LINE_BYTES` is a protocol
error — the peer is buggy or hostile, not just chatty.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ProtocolError

#: protocol revision spoken by this build; ``hello`` echoes it so clients
#: can refuse to talk across incompatible revisions
PROTOCOL_VERSION = 1

#: upper bound on one frame (1 MiB) — beyond this the peer is misbehaving
MAX_LINE_BYTES = 1 << 20


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline)."""
    line = json.dumps(message, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds "
                            f"MAX_LINE_BYTES ({MAX_LINE_BYTES})")
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line back into a message.

    :raises ProtocolError: for oversized, non-JSON or non-object frames.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds "
                            f"MAX_LINE_BYTES ({MAX_LINE_BYTES})")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}")
    return message


def make_request(request_id: str, method: str,
                 params: Mapping[str, Any] | None = None,
                 deadline: float | None = None) -> dict[str, Any]:
    """Build a request message.

    ``deadline`` is an absolute instant on the *server's* clock (clients
    learn the server's time from ``hello``/``ping``): work that would start
    or finish after it is pointless, and the server drops it pre-dispatch
    or pre-response-write with an explicit ``DeadlineExceededError``
    refusal instead of burning capacity on an answer nobody is waiting
    for.
    """
    message = {"id": request_id, "method": method,
               "params": dict(params or {})}
    if deadline is not None:
        message["deadline"] = float(deadline)
    return message


def ok_response(request_id: str, result: Any) -> dict[str, Any]:
    """Build a success response."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: str, error_type: str,
                   message: str) -> dict[str, Any]:
    """Build a failure response (the error *type* travels so clients can
    re-raise something meaningful, e.g. ``KeyComError``)."""
    return {"id": request_id, "ok": False,
            "error": {"type": error_type, "message": message}}


def refusal_response(request_id: str, error_type: str, message: str,
                     retry_after: float | None = None,
                     **detail: Any) -> dict[str, Any]:
    """Build a structured admission/deadline refusal.

    The same shape as :func:`error_response` plus machine-readable fields:
    ``retry_after`` (seconds — the backoff lower bound a well-behaved
    retrier honours) and any extra detail (``kind``, ``phase``).  A refusal
    is still ``ok: false`` — a shed authorisation request can never read as
    an allow.
    """
    response = error_response(request_id, error_type, message)
    if retry_after is not None:
        response["error"]["retry_after"] = round(float(retry_after), 6)
    response["error"].update(detail)
    return response


def make_event(topic: str, data: Mapping[str, Any]) -> dict[str, Any]:
    """Build an unsolicited event message."""
    return {"event": topic, "data": dict(data)}


def classify(message: Mapping[str, Any]) -> str:
    """Which of the three wire shapes a decoded message is.

    :returns: ``"request"``, ``"response"`` or ``"event"``.
    :raises ProtocolError: if the message fits none of them.
    """
    if "event" in message:
        return "event"
    if "method" in message:
        if not isinstance(message.get("id"), str) or not message["id"]:
            raise ProtocolError("request frames need a non-empty string id")
        if not isinstance(message["method"], str):
            raise ProtocolError("request method must be a string")
        params = message.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("request params must be an object")
        deadline = message.get("deadline")
        if deadline is not None and (isinstance(deadline, bool)
                                     or not isinstance(deadline,
                                                       (int, float))):
            raise ProtocolError("request deadline must be a number")
        return "request"
    if "ok" in message:
        if not isinstance(message.get("id"), str):
            raise ProtocolError("response frames need a string id")
        return "response"
    raise ProtocolError(
        f"frame is neither request, response nor event: "
        f"{sorted(message.keys())!r}")

"""The always-on authorisation daemon behind ``repro serve``.

:class:`ReproServer` is an :mod:`asyncio` TCP server speaking the
:mod:`newline-delimited JSON protocol <repro.serve.protocol>`.  Many
concurrent clients connect, register in the peer registry (``hello``), and
call the plane's APIs — ``mediate``, ``probe``, ``translate``, ``update``
(KeyCom), credential management — while subscribers receive ``decision``
events carrying each mediation's verdict and span tree.

Three properties an always-on plane needs beyond the request/response core:

- **Duplicate suppression.**  Each connection keeps a reply cache keyed on
  request id (the same discipline as the simulated network's
  :class:`~repro.webcom.node.WebComClient` result dedup): a retried id is
  answered with the recorded reply, never re-executed, so a client retry
  after a lost reply cannot double-apply a KeyCom install.
- **Liveness.**  A wall-clock heartbeat reaper marks peers dead when they
  go silent past ``heartbeat_timeout × max_missed`` (clients refresh with
  any request; ``ping`` exists for exactly this).  The intervals come from
  the shared :class:`~repro.util.clock.Clock` abstraction's scheduling
  defaults — the same knobs the simulated master resolves.
- **Graceful drain.**  Shutdown stops accepting work, waits for every
  in-flight wavefront (requests already being handled), flushes the PR-6
  WAL (snapshot + close), broadcasts a ``server`` shutdown event, and only
  then drops connections and the PID file.  The drain report records that
  nothing in flight was lost and the WAL went down clean.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve.admission import (
    AdmissionController,
    BrownoutController,
    Refusal,
)
from repro.serve.pidfile import PidFile
from repro.serve.plane import ServePolicyPlane
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    MAX_LINE_BYTES,
    classify,
    decode_frame,
    encode_frame,
    error_response,
    make_event,
    ok_response,
    refusal_response,
)

#: event topics clients may subscribe to
TOPICS = ("decision", "server")

#: consecutive missed heartbeat windows before a peer is marked dead
DEFAULT_MAX_MISSED = 3

#: per-connection reply-cache entries kept for idempotent retry replay; a
#: long-lived connection's cache is an LRU, not an unbounded transcript
DEFAULT_REPLY_CACHE_LIMIT = 256


@dataclass
class PeerInfo:
    """One connected client's registry entry."""

    peer_id: str
    name: str = ""
    role: str = "client"
    connected_at: float = 0.0
    last_seen: float = 0.0
    requests: int = 0
    duplicates: int = 0
    alive: bool = True
    subscriptions: set[str] = field(default_factory=set)

    def to_dict(self) -> dict[str, Any]:
        return {"peer_id": self.peer_id, "name": self.name,
                "role": self.role, "connected_at": self.connected_at,
                "last_seen": self.last_seen, "requests": self.requests,
                "duplicates": self.duplicates, "alive": self.alive,
                "subscriptions": sorted(self.subscriptions)}


class ReproServer:
    """The serve daemon: registry, dispatch, pub/sub, drain.

    :param plane: the policy plane to front (a default wall-clock,
        in-memory plane is built when omitted).
    :param heartbeat_interval: seconds between reaper passes; defaults to
        the plane clock's scheduling defaults (wall: 5 s).
    :param heartbeat_timeout: seconds of silence per missed window;
        defaults likewise (wall: 1 s).
    :param pidfile: optional path enforcing one daemon per durability root.
    :param admission: overload protection; a default controller (generous
        in-flight budget, no per-peer rate limit, brownout enabled) is
        built when omitted — admission control is always on, only its
        limits vary.
    :param reply_cache_limit: per-connection reply-cache entries kept for
        idempotent retry replay (LRU eviction beyond it).
    """

    def __init__(self, plane: ServePolicyPlane | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 heartbeat_interval: float | None = None,
                 heartbeat_timeout: float | None = None,
                 max_missed: int = DEFAULT_MAX_MISSED,
                 pidfile: str | None = None,
                 admission: AdmissionController | None = None,
                 reply_cache_limit: int = DEFAULT_REPLY_CACHE_LIMIT) -> None:
        self.plane = plane or ServePolicyPlane()
        self.clock = self.plane.clock
        if admission is None:
            admission = AdmissionController(
                clock=self.clock, max_inflight=256, obs=self.plane.obs,
                brownout=BrownoutController(clock=self.clock,
                                            obs=self.plane.obs))
        self.admission = admission
        if self.admission.brownout is not None \
                and self.admission.brownout.on_transition is None:
            self.admission.brownout.on_transition = \
                self._on_brownout_transition
        if reply_cache_limit < 1:
            raise ServeError("reply_cache_limit must be >= 1")
        self.reply_cache_limit = reply_cache_limit
        defaults = self.clock.scheduling_defaults()
        self.heartbeat_interval = (heartbeat_interval
                                   if heartbeat_interval is not None
                                   else defaults["heartbeat_interval"])
        self.heartbeat_timeout = (heartbeat_timeout
                                  if heartbeat_timeout is not None
                                  else defaults["heartbeat_timeout"])
        self.max_missed = max_missed
        self.host = host
        self._requested_port = port
        self._pidfile = PidFile(pidfile) if pidfile else None
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task | None = None
        self.registry: dict[str, PeerInfo] = {}
        self._writers: dict[str, asyncio.StreamWriter] = {}
        #: per-connection request-id reply caches (node.py dedup semantics),
        #: LRU-bounded at ``reply_cache_limit`` entries each
        self._replies: dict[str, OrderedDict[str, dict[str, Any]]] = {}
        self._next_peer = 0
        #: requests currently being handled — the in-flight wavefront a
        #: graceful shutdown must drain before the WAL goes down
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False
        self.requests_served = 0
        self.duplicates_served = 0
        self.events_broadcast = 0
        self.events_shed = 0
        self.reply_cache_evictions = 0
        #: expired work dropped *before dispatch* (never run) vs expired
        #: work whose response write was refused — accounted separately
        #: from admission sheds, as the issue demands
        self.deadline_expired_pre = 0
        self.deadline_expired_post = 0
        self.started_at = 0.0
        self.drain_report: dict[str, Any] | None = None
        self._shutdown_done = asyncio.Event()
        self._methods: dict[str, Callable[[PeerInfo, Mapping[str, Any]],
                                          Any]] = {
            "hello": self._on_hello,
            "ping": self._on_ping,
            "subscribe": self._on_subscribe,
            "unsubscribe": self._on_unsubscribe,
            "status": self._on_status,
            "mediate": lambda peer, p: self.plane.mediate(
                p, stale_ok=self._stale_ok()),
            "probe": lambda peer, p: self.plane.probe(p),
            "translate": lambda peer, p: self.plane.translate(p),
            "update": lambda peer, p: self.plane.keycom_update(p),
            "add_policy": lambda peer, p: self.plane.add_policy(p),
            "add_credential": lambda peer, p: self.plane.add_credential(p),
            "revoke": lambda peer, p: self.plane.revoke_credential(p),
            "sweep": lambda peer, p: self.plane.sweep(p),
            "spans": self._on_spans,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the socket (claiming the pidfile first) and start the
        heartbeat reaper.

        :raises AlreadyRunningError: when another daemon holds the pidfile.
        """
        if self._pidfile is not None:
            self._pidfile.acquire()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=MAX_LINE_BYTES)
        self.started_at = self.clock.now()
        self._reaper = asyncio.create_task(self._reap_loop())
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolved after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> dict[str, Any]:
        """Block until a shutdown drains the server; returns the report."""
        await self._shutdown_done.wait()
        assert self.drain_report is not None
        return self.drain_report

    async def shutdown(self, reason: str = "shutdown") -> dict[str, Any]:
        """Gracefully drain and stop the daemon.

        Order matters: stop accepting → drain the in-flight wavefront →
        flush the WAL → notify subscribers → drop connections → release
        the pidfile.  Idempotent (subsequent calls return the report).
        """
        if self.drain_report is not None:
            return self.drain_report
        self.draining = True
        if self._server is not None:
            self._server.close()
        inflight_at_drain = self._inflight
        await self._idle.wait()
        # Settle: requests already buffered on a socket but not yet read
        # belong to the wavefront too — yield so their reader tasks can
        # start (each new arrival is refused with a drain error, but it
        # *gets a response*), then wait for quiescence again.
        for _ in range(3):
            await asyncio.sleep(0)
            await self._idle.wait()
        flush = self.plane.close()
        await self.broadcast("server", {"state": "stopping",
                                        "reason": reason,
                                        "wal_flushed": flush["wal_flushed"]})
        if self._reaper is not None:
            self._reaper.cancel()
        for peer_id, writer in list(self._writers.items()):
            writer.close()
        self._writers.clear()
        if self._server is not None:
            await self._server.wait_closed()
        if self._pidfile is not None:
            self._pidfile.release()
        self.drain_report = {
            "reason": reason,
            "inflight_at_drain": inflight_at_drain,
            "inflight_after_drain": self._inflight,
            "requests_served": self.requests_served,
            "duplicates_served": self.duplicates_served,
            "events_broadcast": self.events_broadcast,
            **flush,
        }
        self._shutdown_done.set()
        return self.drain_report

    # -- connection handling ----------------------------------------------

    def _begin_request(self) -> None:
        self._inflight += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._next_peer += 1
        peer = PeerInfo(peer_id=f"peer-{self._next_peer}",
                        connected_at=self.clock.now(),
                        last_seen=self.clock.now())
        self.registry[peer.peer_id] = peer
        self._writers[peer.peer_id] = writer
        self._replies[peer.peer_id] = OrderedDict()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                # The wavefront spans decode → dispatch → response *write*:
                # a graceful drain must not tear the writer down between a
                # completed dispatch and its reply reaching the wire.
                self._begin_request()
                try:
                    response = await self._handle_line(peer, line)
                    if response is not None:
                        try:
                            writer.write(encode_frame(response))
                            await writer.drain()
                        except (ConnectionResetError, RuntimeError):
                            break
                finally:
                    self._end_request()
        finally:
            peer.alive = False
            self._writers.pop(peer.peer_id, None)
            self._replies.pop(peer.peer_id, None)
            self.admission.forget_peer(peer.peer_id)
            peer.subscriptions.clear()
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    async def _handle_line(self, peer: PeerInfo,
                           line: bytes) -> dict[str, Any] | None:
        """Decode, dedup, admit and dispatch one frame.

        The order is deliberate: dedup replay first (idempotency is free
        and must survive overload), then drain refusal, then the deadline
        check (expired work is dropped before any budget is spent on it,
        accounted apart from sheds), then admission.  Every refused path
        returns a structured response — a request that made it through the
        decoder is *always* answered, never silently dropped.
        """
        try:
            message = decode_frame(line)
            shape = classify(message)
        except ProtocolError as exc:
            return error_response("", "ProtocolError", str(exc))
        if shape != "request":
            return error_response("", "ProtocolError",
                                  f"server only accepts requests, got "
                                  f"{shape}")
        request_id = message["id"]
        peer.last_seen = self.clock.now()
        peer.alive = True
        replies = self._replies[peer.peer_id]
        cached = replies.get(request_id)
        if cached is not None:
            # Same discipline as the simulated network's result dedup:
            # replay the recorded reply, never re-execute the request.
            replies.move_to_end(request_id)
            peer.duplicates += 1
            self.duplicates_served += 1
            return cached
        if self.draining and message["method"] != "status":
            return error_response(request_id, "ServeError",
                                  "server is draining")
        deadline = message.get("deadline")
        if deadline is not None and self.clock.now() > deadline:
            self.deadline_expired_pre += 1
            self.plane.obs.metrics.counter(
                "serve.deadline.expired_pre_dispatch").inc()
            return refusal_response(
                request_id, "DeadlineExceededError",
                f"deadline {deadline:g} expired before dispatch "
                f"(now {self.clock.now():g})", phase="pre_dispatch")
        admitted = self.admission.admit(peer.peer_id, message["method"])
        if isinstance(admitted, Refusal):
            # Shed = refuse, explicitly: never an allow, never silence.
            # Refusals are not cached — a retried id must be re-admitted.
            return refusal_response(
                request_id, admitted.error_type, admitted.message,
                retry_after=admitted.retry_after, kind=admitted.kind)
        try:
            response = await self._dispatch(peer, request_id,
                                            message["method"],
                                            message.get("params", {}))
        finally:
            self.admission.release(admitted)
        replies[request_id] = response
        while len(replies) > self.reply_cache_limit:
            replies.popitem(last=False)
            self.reply_cache_evictions += 1
        if deadline is not None and self.clock.now() > deadline:
            # The work ran, but its caller's deadline passed while it did:
            # answer with a refusal instead of a result nobody is waiting
            # for.  The real response stays recorded above, so an
            # idempotent retry under the same id replays it.
            self.deadline_expired_post += 1
            self.plane.obs.metrics.counter(
                "serve.deadline.expired_before_write").inc()
            return refusal_response(
                request_id, "DeadlineExceededError",
                f"deadline {deadline:g} expired before response write",
                phase="response_write")
        return response

    def _stale_ok(self) -> float | None:
        """TTL'd-stale cache window for mediate, when brownout tier 2 is
        active (``None`` otherwise — full mediation)."""
        brownout = self.admission.brownout
        if brownout is not None and brownout.serve_stale():
            return brownout.stale_ttl
        return None

    def _on_brownout_transition(self, old: int, new: int,
                                pressure: float) -> None:
        """Announce every brownout tier change on the ``server`` topic."""
        data = {"state": "brownout", "from_level": old, "to_level": new,
                "pressure": round(pressure, 4), "at": self.clock.now()}
        try:
            asyncio.get_running_loop()
        except RuntimeError:  # pragma: no cover - no loop (direct use)
            return
        asyncio.ensure_future(self.broadcast("server", data))

    async def _dispatch(self, peer: PeerInfo, request_id: str, method: str,
                        params: Mapping[str, Any]) -> dict[str, Any]:
        handler = self._methods.get(method)
        if handler is None and method != "shutdown":
            return error_response(request_id, "ProtocolError",
                                  f"unknown method {method!r}")
        try:
            if method == "shutdown":
                # Respond first, then drain: the requester must get its
                # acknowledgement before its connection is torn down.
                asyncio.get_running_loop().call_soon(
                    lambda: asyncio.ensure_future(
                        self.shutdown(str(params.get("reason", "client")))))
                result: Any = {"draining": True}
            else:
                result = handler(peer, params)
            peer.requests += 1
            self.requests_served += 1
            response = ok_response(request_id, result)
        except ReproError as exc:
            response = error_response(request_id, type(exc).__name__,
                                      str(exc))
        except Exception as exc:  # deliberate: a handler bug must produce
            # a protocol-level error, never kill the connection task
            response = error_response(request_id, "InternalError",
                                      repr(exc))
        if method in ("mediate", "probe") and response.get("ok"):
            await self._broadcast_decision(peer, response["result"])
        return response

    # -- built-in methods --------------------------------------------------

    def _on_hello(self, peer: PeerInfo,
                  params: Mapping[str, Any]) -> dict[str, Any]:
        peer.name = str(params.get("name", peer.peer_id))
        peer.role = str(params.get("role", "client"))
        return {"peer_id": peer.peer_id,
                "protocol_version": PROTOCOL_VERSION,
                "timescale": self.clock.timescale,
                "now": self.clock.now(),
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_timeout": self.heartbeat_timeout}

    def _on_ping(self, peer: PeerInfo,
                 params: Mapping[str, Any]) -> dict[str, Any]:
        return {"pong": True, "now": self.clock.now()}

    def _on_subscribe(self, peer: PeerInfo,
                      params: Mapping[str, Any]) -> dict[str, Any]:
        topics = params.get("topics") or []
        unknown = [t for t in topics if t not in TOPICS]
        if unknown:
            raise ServeError(f"unknown topics: {', '.join(unknown)}")
        peer.subscriptions.update(topics)
        return {"subscribed": sorted(peer.subscriptions)}

    def _on_unsubscribe(self, peer: PeerInfo,
                        params: Mapping[str, Any]) -> dict[str, Any]:
        for topic in params.get("topics") or []:
            peer.subscriptions.discard(topic)
        return {"subscribed": sorted(peer.subscriptions)}

    def _on_status(self, peer: PeerInfo,
                   params: Mapping[str, Any]) -> dict[str, Any]:
        brownout = self.admission.brownout
        return {
            "uptime": self.clock.now() - self.started_at,
            "draining": self.draining,
            "requests_served": self.requests_served,
            "duplicates_served": self.duplicates_served,
            "events_broadcast": self.events_broadcast,
            "events_shed": self.events_shed,
            "inflight": self._inflight,
            "admission": self.admission.snapshot(),
            "brownout": brownout.snapshot() if brownout else None,
            "deadlines": {
                "expired_pre_dispatch": self.deadline_expired_pre,
                "expired_before_write": self.deadline_expired_post,
            },
            "reply_cache": {
                "entries": sum(len(r) for r in self._replies.values()),
                "evictions": self.reply_cache_evictions,
                "limit": self.reply_cache_limit,
            },
            "peers": [p.to_dict() for p in self.registry.values()],
            "plane": self.plane.status(),
        }

    def _on_spans(self, peer: PeerInfo,
                  params: Mapping[str, Any]) -> dict[str, Any]:
        correlation_id = str(params.get("correlation_id", ""))
        if not correlation_id:
            raise ServeError("spans params need a correlation_id")
        return {"spans": self.plane.span_tree(correlation_id)}

    # -- pub/sub -----------------------------------------------------------

    async def _broadcast_decision(self, peer: PeerInfo,
                                  result: Mapping[str, Any]) -> None:
        brownout = self.admission.brownout
        if brownout is not None and brownout.shed_broadcast():
            # Brownout tier 1: span/event broadcasting is the first load to
            # go — counted, never silent.
            self.events_shed += 1
            self.plane.obs.metrics.counter("serve.events.shed").inc()
            return
        if not any("decision" in p.subscriptions
                   for p in self.registry.values()):
            return  # don't assemble span trees nobody will receive
        correlation_id = result.get("correlation_id", "")
        await self.broadcast("decision", {
            "peer": peer.name or peer.peer_id,
            "allowed": result.get("allowed"),
            "stale": result.get("stale"),
            "user": result.get("user"),
            "operation": result.get("operation"),
            "correlation_id": correlation_id,
            "spans": self.plane.span_tree(correlation_id),
        })

    async def broadcast(self, topic: str,
                        data: Mapping[str, Any]) -> int:
        """Push one event to every live subscriber of ``topic``."""
        frame = encode_frame(make_event(topic, data))
        delivered = 0
        for peer_id, peer in list(self.registry.items()):
            if topic not in peer.subscriptions:
                continue
            writer = self._writers.get(peer_id)
            if writer is None:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionResetError, RuntimeError):
                peer.alive = False
                continue
            delivered += 1
        self.events_broadcast += delivered
        return delivered

    # -- liveness ----------------------------------------------------------

    def reap_once(self) -> list[str]:
        """Mark peers dead whose silence exceeds the allowed windows."""
        deadline = self.heartbeat_timeout * self.max_missed
        now = self.clock.now()
        reaped = []
        for peer in self.registry.values():
            if peer.alive and now - peer.last_seen > deadline:
                peer.alive = False
                reaped.append(peer.peer_id)
        return reaped

    async def _reap_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                self.reap_once()
                if self.admission.brownout is not None:
                    # Idle cool-down: with no requests arriving the
                    # pressure window drains and tiers step back down.
                    self.admission.brownout.poll()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass

"""The policy plane behind the ``repro serve`` daemon.

:class:`ServePolicyPlane` assembles the framework's components — keystore,
trust-management session, authorisation stack, KeyCom administration
service, middleware — into the one object the server's request handlers
call.  With a durability ``root`` the whole assembly is recovered through
:class:`~repro.store.durable.DurablePolicyNode`, so every mutating API path
(credential add/revoke, KeyCom install) journals ahead to the PR-6 WAL
before touching memory, and a crashed daemon reboots into exactly its
acknowledged trust state (with every cache cold).

Every handler's work is also cross-checkable: :meth:`probe` mediates a
request through the production stack *and* re-derives the expected verdict
from the PR-5 conformance oracles (naive KeyNote fixpoint + relational RBAC
evaluation), reporting whether they agree.  ``repro serve-bench`` runs
probes continuously and requires zero disagreements.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.crypto.keystore import Keystore
from repro.errors import ServeError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.corba import CorbaOrb
from repro.obs import Observability, spans_to_dicts
from repro.oracle.keynote_oracle import oracle_compliance_value
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.policy import RBACPolicy
from repro.rbac.serialize import policy_to_dict
from repro.store.durable import DurablePolicyNode
from repro.translate.from_keynote import comprehend_credentials
from repro.util.clock import Clock, WallClock
from repro.util.events import AuditLog
from repro.webcom.keycom import KeyComService, PolicyUpdateRequest
from repro.webcom.stack import (
    AuthorisationStack,
    Layer,
    MediationRequest,
    StackDecision,
)

#: recorded spans kept before the oldest are pruned — an always-on daemon
#: would otherwise grow its trace buffer without bound
SPAN_BUFFER_LIMIT = 5000


def decision_to_dict(decision: StackDecision) -> dict[str, Any]:
    """Serialise a stack decision for the wire."""
    denied = decision.deciding_layer()
    return {
        "allowed": decision.allowed,
        "stale": decision.stale,
        "degraded": [layer.name for layer in decision.degraded],
        "denied_by": denied.name if denied is not None else None,
        "layers": [{"layer": d.layer.name, "allowed": d.allowed,
                    "detail": d.detail, "error": d.error}
                   for d in decision.decisions],
    }


class ServePolicyPlane:
    """Keystore + session + stack + KeyCom behind the serve APIs.

    :param root: durability root directory; when given the whole plane is
        recovered via :class:`DurablePolicyNode` and journals ahead.
    :param clock: shared clock; defaults to a fresh
        :class:`~repro.util.clock.WallClock` (the daemon runs in real
        time), but a :class:`~repro.util.clock.SimulatedClock` plane is
        fully supported — the simulated-time test path and the wall-clock
        serve path share every component underneath.
    :param cache_ttl: mediation-cache TTL in clock seconds (None disables).
    :param machine: host name of the administered CORBA ORB.
    :param orb_name: ORB instance name (KeyCom domain is
        ``machine/orb_name``).
    :param plug_middleware: also mediate requests through the ORB's RBAC
        policy (L1).  Off by default: a bare plane starts with no RBAC
        content, and an empty L1 would veto everything.
    """

    def __init__(self, root: "Path | str | None" = None,
                 clock: Clock | None = None,
                 keystore: Keystore | None = None,
                 cache_ttl: float | None = 30.0,
                 machine: str = "serve", orb_name: str = "orb",
                 plug_middleware: bool = False,
                 verify_signatures: bool = True) -> None:
        self.clock: Clock = clock or WallClock()
        self.keystore = keystore or Keystore()
        self.obs = Observability(clock=self.clock)
        self.audit = AuditLog()
        self.middleware = CorbaOrb(machine, orb_name)
        self.node: DurablePolicyNode | None = None
        if root is not None:
            self.node = DurablePolicyNode.recover(
                root, keystore=self.keystore, clock=self.clock,
                keycom_middleware=self.middleware,
                verify_signatures=verify_signatures)
            self.session = self.node.session
            self.keycom = self.node.keycom
            self.session.audit = self.audit
            self.session.obs = self.obs
            assert self.keycom is not None
            self.keycom.audit = self.audit
        else:
            self.session = KeyNoteSession(
                keystore=self.keystore, audit=self.audit, clock=self.clock,
                verify_signatures=verify_signatures, obs=self.obs)
            self.keycom = KeyComService(self.middleware, self.session,
                                        audit=self.audit)
        self.stack = AuthorisationStack(
            audit=self.audit, clock=self.clock, obs=self.obs,
            cache_ttl=cache_ttl)
        self.stack.plug_trust_management(self.session)
        if plug_middleware:
            self.stack.plug_middleware(self.middleware)
        self.mediations = 0
        self.stale_mediations = 0
        self.probes = 0
        self.oracle_disagreements = 0
        self._closed = False
        # Compiled view of the ORB's RBAC content (the bitset engine,
        # PR 8): extracted once and reused across probes, invalidated
        # whenever a KeyCom update actually lands.
        self._rbac_view: "RBACPolicy | None" = None

    # -- compiled RBAC view ------------------------------------------------

    def middleware_rbac(self) -> "RBACPolicy":
        """The ORB's RBAC policy, extracted once and engine-compiled.

        Probes used to re-extract (and the oracle to re-close) the whole
        policy per request; the cached view keeps the compiled engine's
        interning tables and hierarchy closure warm across probes.
        """
        if self._rbac_view is None:
            self._rbac_view = self.middleware.extract_rbac()
            self._rbac_view.compiled = True
        return self._rbac_view

    def _invalidate_rbac_view(self) -> None:
        self._rbac_view = None

    # -- request plumbing --------------------------------------------------

    def _request(self, params: Mapping[str, Any],
                 pin_time: bool = False) -> MediationRequest:
        """Build a :class:`MediationRequest` from wire params.

        :raises ServeError: when required fields are missing.
        """
        missing = [name for name in ("user", "user_key", "object_type",
                                     "operation")
                   if not isinstance(params.get(name), str)
                   or not params[name]]
        if missing:
            raise ServeError(
                f"mediate params missing fields: {', '.join(missing)}")
        attributes = dict(params.get("attributes") or {})
        if pin_time and "_cur_time" not in attributes:
            # Pin the evaluation instant so the production mediation and
            # the oracle re-derivation below read the same clock even on
            # wall time, where "now" moves between the two.
            attributes["_cur_time"] = repr(self.clock.now())
        return MediationRequest(
            user=params["user"], user_key=params["user_key"],
            object_type=params["object_type"], operation=params["operation"],
            os_object=str(params.get("os_object", "")),
            os_access=str(params.get("os_access", "read")),
            attributes=attributes)

    def prune_spans(self) -> None:
        """Bound the trace buffer (drop the oldest recorded spans)."""
        spans = self.obs.tracer.spans
        if len(spans) > SPAN_BUFFER_LIMIT:
            del spans[:len(spans) - SPAN_BUFFER_LIMIT]

    def span_tree(self, correlation_id: str) -> list[dict[str, Any]]:
        """The serialised span tree of one correlation."""
        return spans_to_dicts(
            self.obs.tracer.find(correlation_id=correlation_id))

    # -- serve APIs --------------------------------------------------------

    def mediate(self, params: Mapping[str, Any],
                stale_ok: float | None = None) -> dict[str, Any]:
        """Run one request down the authorisation stack.

        ``stale_ok`` is the brownout path (tier 2): when set, a cached
        decision within that many clock seconds past its freshness bound
        is served marked ``stale=True`` instead of re-mediating — the
        overloaded plane trades bounded, *disclosed* staleness for not
        collapsing.  Cache misses still mediate for real.
        """
        request = self._request(params)
        correlation_id = self.obs.tracer.new_correlation_id()
        decision = None
        if stale_ok is not None:
            decision = self.stack.serve_stale(request, stale_ok)
            if decision is not None and decision.stale:
                self.stale_mediations += 1
        if decision is None:
            decision = self.stack.mediate(request,
                                          correlation_id=correlation_id)
        self.mediations += 1
        result = decision_to_dict(decision)
        result["correlation_id"] = correlation_id
        result["user"] = request.user
        result["operation"] = request.operation
        self.prune_spans()
        return result

    def probe(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Mediate *and* cross-check against the conformance oracles.

        The expected verdict is the conjunction of the per-layer oracle
        verdicts, exactly as the PR-5 differ derives it: the naive KeyNote
        fixpoint for L2 and the relational RBAC evaluation for L1 (when
        plugged).  Degraded or stale production decisions are exempt from
        the comparison — they are, by construction, not fresh mediations.
        """
        request = self._request(params, pin_time=True)
        correlation_id = self.obs.tracer.new_correlation_id()
        decision = self.stack.mediate(request, correlation_id=correlation_id)
        self.mediations += 1
        self.probes += 1
        attributes = dict(request.attributes)
        attributes.setdefault("op", request.operation)
        value = oracle_compliance_value(
            self.session.policies + self.session.credentials, attributes,
            [request.user_key], self.session.values, self.keystore)
        expected = self.session.values.at_least(value,
                                                self.session.values.maximum)
        if Layer.MIDDLEWARE in self.stack.configured_layers():
            oracle = RBACOracle.from_policy(self.middleware_rbac())
            expected = expected and oracle.check_access(
                request.user, request.object_type, request.operation)
        agree = decision.is_degraded() or (decision.allowed == expected)
        if not agree:
            self.oracle_disagreements += 1
        result = decision_to_dict(decision)
        result.update({
            "correlation_id": correlation_id,
            "oracle_allowed": expected,
            "oracle_value": value,
            "agree": agree,
        })
        self.prune_spans()
        return result

    def translate(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Comprehend KeyNote credentials into one RBAC policy (§4.2)."""
        texts = params.get("credentials") or []
        if not isinstance(texts, list):
            raise ServeError("translate params need a credentials list")
        credentials = [Credential.from_text(str(text)) for text in texts]
        policy = comprehend_credentials(
            credentials, keystore=self.keystore, audit=self.audit,
            name=str(params.get("name", "comprehended")))
        return {"policy": policy_to_dict(policy),
                "grants": len(policy.sorted_grants()),
                "assignments": len(policy.assignments)}

    def keycom_update(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one credential-backed KeyCom policy update (Figure 8).

        :raises KeyComError: malformed or unauthorised requests (rejected,
            not dropped — the caller is a remote client).
        """
        texts = params.get("credentials") or []
        request = PolicyUpdateRequest(
            user=str(params.get("user", "")),
            user_key=str(params.get("user_key", "")),
            domain=str(params.get("domain", "")),
            role=str(params.get("role", "")),
            credentials=tuple(Credential.from_text(str(t)) for t in texts),
            request_id=str(params.get("request_id", "")))
        before = self.keycom.duplicates
        applied = self.keycom.submit(request)
        if applied:
            self._invalidate_rbac_view()
        return {"applied": applied,
                "duplicate": self.keycom.duplicates > before,
                "domain": request.domain, "role": request.role,
                "user": request.user}

    def add_policy(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Install a local POLICY assertion (journalled when durable)."""
        credential = self.session.add_policy(str(params.get("text", "")))
        return {"added": True, "authorizer": credential.authorizer,
                "fingerprint": list(self.session.state_fingerprint())}

    def add_credential(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Install a signed credential, optionally with structured expiry."""
        expires_at = params.get("expires_at")
        credential = self.session.add_credential(
            str(params.get("text", "")),
            expires_at=float(expires_at) if expires_at is not None else None)
        return {"added": True, "authorizer": credential.authorizer,
                "fingerprint": list(self.session.state_fingerprint())}

    def revoke_credential(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Revoke a previously installed credential by its text."""
        credential = Credential.from_text(str(params.get("text", "")))
        revoked = self.session.revoke_credential(credential)
        return {"revoked": revoked,
                "fingerprint": list(self.session.state_fingerprint())}

    def sweep(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Run one structured-expiry sweep."""
        expired = self.session.sweep_expired()
        return {"expired": len(expired)}

    # -- lifecycle ---------------------------------------------------------

    def wal_info(self) -> dict[str, Any] | None:
        """WAL position info for status reports (None when in-memory)."""
        if self.node is None:
            return None
        wal = self.node.store.wal
        return {"root": str(self.node.store.root),
                "next_lsn": wal.next_lsn, "base_lsn": wal.base_lsn}

    def status(self) -> dict[str, Any]:
        """Serialisable plane state."""
        return {
            "timescale": self.clock.timescale,
            "now": self.clock.now(),
            "durable": self.node is not None,
            "wal": self.wal_info(),
            "fingerprint": list(self.session.state_fingerprint()),
            "mediations": self.mediations,
            "stale_mediations": self.stale_mediations,
            "probes": self.probes,
            "oracle_disagreements": self.oracle_disagreements,
            "cache": self.stack.cache_info(),
            "tm_cache": self.session.checker_cache_info(),
            "health": self.stack.health_snapshot(),
            "keycom": {"applied_ids": len(self.keycom.applied_ids),
                       "duplicates": self.keycom.duplicates},
            "rbac_engine": (self._rbac_view.engine_stats()
                            if self._rbac_view is not None else None),
        }

    def close(self) -> dict[str, Any]:
        """Flush durable state: snapshot the node and close the WAL.

        Idempotent; returns what was flushed so the server's drain report
        can prove the WAL went down clean.
        """
        if self._closed:
            return {"wal_flushed": self.node is not None, "snapshot": None}
        self._closed = True
        if self.node is None:
            return {"wal_flushed": False, "snapshot": None}
        path = self.node.snapshot()
        self.node.close()
        return {"wal_flushed": True, "snapshot": str(path)}

"""Asyncio client for the ``repro serve`` daemon.

:class:`ServeClient` multiplexes calls over one connection: requests carry
monotonically numbered ids, a background reader task resolves each response
into the matching pending future, and unsolicited events are queued for
whoever subscribed.  ``call`` retries nothing by itself — but because the
server deduplicates request ids, :meth:`call` with an explicit ``request_id``
is safe to reissue after a lost reply (the reply cache replays the recorded
response instead of re-executing).

:meth:`call_with_retry` layers the disciplined retry on top: jittered
exponential backoff between attempts, the server's ``retry_after`` hint
honoured as a floor, the *same* request id across attempts (so the server's
dedup makes the retry idempotent), and a per-client
:class:`~repro.serve.admission.RetryBudget` so a fleet of misbehaving
clients cannot amplify an overload into a retry storm — when the budget is
spent, the refusal propagates instead of another attempt.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Mapping

from repro.errors import ServeError
from repro.serve.admission import RetryBudget, backoff_delay
from repro.serve.protocol import (
    classify,
    decode_frame,
    encode_frame,
    make_request,
)

#: default bound on the client event queue; beyond it the *oldest* queued
#: event is dropped (and counted) so a slow consumer lags, never leaks
DEFAULT_EVENT_LIMIT = 4096

#: server error types a retry can help with — anything else (authz denial,
#: protocol error, deadline expiry) will fail identically on reissue
RETRYABLE = frozenset({"OverloadedError", "RateLimitedError"})

# indirection so tests can observe/neutralise backoff sleeps
_sleep = asyncio.sleep


class ServeCallError(ServeError):
    """A server-side error response, re-raised client-side.

    :attr:`error_type` carries the server's exception class name
    (``KeyComError``, ``ProtocolError``, ...) so callers can branch without
    string-matching messages; :attr:`retry_after` carries the server's
    backoff hint (seconds) when the error was an admission refusal.
    """

    def __init__(self, error_type: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        return self.error_type in RETRYABLE


class ServeClient:
    """One connection to a serve daemon.

    >>> # client = await ServeClient("bench-1").connect("127.0.0.1", 4747)
    >>> # await client.call("mediate", {...})
    """

    def __init__(self, name: str = "client",
                 event_limit: int = DEFAULT_EVENT_LIMIT,
                 retry_budget: RetryBudget | None = None,
                 rng: random.Random | None = None) -> None:
        if event_limit < 1:
            raise ServeError("event_limit must be >= 1")
        self.name = name
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._seq = 0
        self.event_limit = event_limit
        self.events: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        #: events discarded because the queue was full (drop-oldest)
        self.events_dropped = 0
        #: frames that failed to decode/classify (surfaced, not swallowed)
        self.decode_failures = 0
        #: admission refusals observed (overloaded / rate_limited / brownout)
        self.refusals_seen = 0
        #: request frames written to the wire, retries included
        self.attempts_sent = 0
        self.retry_budget = retry_budget or RetryBudget()
        self._rng = rng or random.Random()
        #: (server_now, local_now) from the last hello/ping — lets
        #: :meth:`deadline` compute absolute deadlines in the *server's*
        #: clock domain, which is where the server evaluates them
        self._server_sync: tuple[float, float] | None = None
        self.closed = asyncio.Event()

    async def connect(self, host: str, port: int) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(host,
                                                                   port)
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = decode_frame(line)
                except ServeError:
                    # A frame too broken to parse at all: count it, and if
                    # it still carries a recognisable request id, fail that
                    # caller *now* rather than leaving it to time out.
                    self.decode_failures += 1
                    self._fail_pending_from_broken(line)
                    continue
                try:
                    shape = classify(message)
                except ServeError:
                    self.decode_failures += 1
                    request_id = message.get("id")
                    if isinstance(request_id, str):
                        self._fail_pending(request_id,
                                           "server sent a malformed frame "
                                           "for this request")
                    continue
                if shape == "event":
                    self._enqueue_event(message)
                    continue
                future = self._pending.pop(message.get("id", ""), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            self.closed.set()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServeError("connection closed mid-call"))
            self._pending.clear()

    def _enqueue_event(self, message: dict[str, Any]) -> None:
        """Queue an event, dropping the oldest beyond the bound."""
        while self.events.qsize() >= self.event_limit:
            try:
                self.events.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race guard
                break
            self.events_dropped += 1
        self.events.put_nowait(message)

    def _fail_pending(self, request_id: str, reason: str) -> None:
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_exception(ServeError(reason))

    def _fail_pending_from_broken(self, line: bytes) -> None:
        """Best-effort id recovery from an undecodable frame."""
        try:
            payload = json.loads(line.decode("utf-8", errors="replace"))
        except ValueError:
            return
        if isinstance(payload, dict) and isinstance(payload.get("id"), str):
            self._fail_pending(payload["id"],
                               "server sent an undecodable frame for this "
                               "request")

    def next_request_id(self) -> str:
        self._seq += 1
        return f"{self.name}-{self._seq}"

    # -- server time / deadlines ------------------------------------------

    def _note_server_time(self, server_now: Any) -> None:
        if isinstance(server_now, (int, float)) \
                and not isinstance(server_now, bool):
            loop = asyncio.get_running_loop()
            self._server_sync = (float(server_now), loop.time())

    def server_time(self) -> float | None:
        """Estimated current time on the *server's* clock, or ``None``
        before the first ``hello``/``ping`` response carried one."""
        if self._server_sync is None:
            return None
        server_now, local_then = self._server_sync
        return server_now + (asyncio.get_running_loop().time() - local_then)

    def deadline(self, seconds: float) -> float | None:
        """Absolute deadline ``seconds`` from now, in the server's clock
        domain (``None`` when no server time sync exists yet)."""
        now = self.server_time()
        return None if now is None else now + seconds

    # -- calls -------------------------------------------------------------

    async def call_raw(self, method: str,
                       params: Mapping[str, Any] | None = None,
                       request_id: str | None = None,
                       timeout: float = 30.0,
                       deadline: float | None = None) -> dict[str, Any]:
        """Send one request and return the full response frame."""
        if self._writer is None:
            raise ServeError("client is not connected")
        request_id = request_id or self.next_request_id()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self.attempts_sent += 1
        self._writer.write(encode_frame(make_request(request_id, method,
                                                     params,
                                                     deadline=deadline)))
        await self._writer.drain()
        return await asyncio.wait_for(future, timeout)

    async def call(self, method: str,
                   params: Mapping[str, Any] | None = None,
                   request_id: str | None = None,
                   timeout: float = 30.0,
                   deadline: float | None = None) -> Any:
        """Send one request and return its result.

        :raises ServeCallError: for an error response.
        """
        response = await self.call_raw(method, params,
                                       request_id=request_id,
                                       timeout=timeout, deadline=deadline)
        if not response.get("ok"):
            error = response.get("error") or {}
            error_type = error.get("type", "ServeError")
            if error_type in RETRYABLE:
                self.refusals_seen += 1
            raise ServeCallError(error_type,
                                 error.get("message", "unknown error"),
                                 retry_after=error.get("retry_after"))
        result = response["result"]
        if method in ("hello", "ping") and isinstance(result, dict):
            self._note_server_time(result.get("now"))
        return result

    async def call_with_retry(self, method: str,
                              params: Mapping[str, Any] | None = None,
                              max_attempts: int = 4,
                              timeout: float = 30.0,
                              deadline: float | None = None,
                              base_delay: float = 0.05,
                              max_delay: float = 2.0) -> Any:
        """``call`` with budgeted, jittered, hint-honouring retries.

        Reuses one request id across attempts, so a retry that races a
        late first reply is replayed from the server's reply cache instead
        of re-executed.  Retries only admission refusals
        (:data:`RETRYABLE`); the retry budget is consulted before every
        retry and refilled a little on every success.
        """
        if max_attempts < 1:
            raise ServeError("max_attempts must be >= 1")
        request_id = self.next_request_id()
        last_error: ServeCallError | None = None
        for attempt in range(max_attempts):
            if attempt > 0:
                if not self.retry_budget.allow_retry():
                    break  # budget spent: propagate, don't amplify
                self.retry_budget.on_retry()
                retry_after = (last_error.retry_after
                               if last_error is not None else None)
                await _sleep(backoff_delay(attempt - 1, base=base_delay,
                                           cap=max_delay, rng=self._rng,
                                           retry_after=retry_after))
            try:
                result = await self.call(method, params,
                                         request_id=request_id,
                                         timeout=timeout,
                                         deadline=deadline)
            except ServeCallError as exc:
                if not exc.retryable:
                    raise
                last_error = exc
                continue
            self.retry_budget.on_success()
            return result
        assert last_error is not None
        raise last_error

    async def hello(self, role: str = "client") -> dict[str, Any]:
        return await self.call("hello", {"name": self.name, "role": role})

    async def subscribe(self, *topics: str) -> dict[str, Any]:
        return await self.call("subscribe", {"topics": list(topics)})

    async def next_event(self, timeout: float = 5.0) -> dict[str, Any]:
        """The next queued event (FIFO)."""
        return await asyncio.wait_for(self.events.get(), timeout)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

"""Asyncio client for the ``repro serve`` daemon.

:class:`ServeClient` multiplexes calls over one connection: requests carry
monotonically numbered ids, a background reader task resolves each response
into the matching pending future, and unsolicited events are queued for
whoever subscribed.  ``call`` retries nothing by itself — but because the
server deduplicates request ids, :meth:`call` with an explicit ``request_id``
is safe to reissue after a lost reply (the reply cache replays the recorded
response instead of re-executing).
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.errors import ServeError
from repro.serve.protocol import (
    classify,
    decode_frame,
    encode_frame,
    make_request,
)


class ServeCallError(ServeError):
    """A server-side error response, re-raised client-side.

    :attr:`error_type` carries the server's exception class name
    (``KeyComError``, ``ProtocolError``, ...) so callers can branch without
    string-matching messages.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


class ServeClient:
    """One connection to a serve daemon.

    >>> # client = await ServeClient("bench-1").connect("127.0.0.1", 4747)
    >>> # await client.call("mediate", {...})
    """

    def __init__(self, name: str = "client") -> None:
        self.name = name
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._seq = 0
        self.events: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self.closed = asyncio.Event()

    async def connect(self, host: str, port: int) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(host,
                                                                   port)
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = decode_frame(line)
                    shape = classify(message)
                except ServeError:
                    continue  # a broken frame fails its caller by timeout
                if shape == "event":
                    self.events.put_nowait(message)
                    continue
                future = self._pending.pop(message.get("id", ""), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            self.closed.set()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServeError("connection closed mid-call"))
            self._pending.clear()

    def next_request_id(self) -> str:
        self._seq += 1
        return f"{self.name}-{self._seq}"

    async def call_raw(self, method: str,
                       params: Mapping[str, Any] | None = None,
                       request_id: str | None = None,
                       timeout: float = 30.0) -> dict[str, Any]:
        """Send one request and return the full response frame."""
        if self._writer is None:
            raise ServeError("client is not connected")
        request_id = request_id or self.next_request_id()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(make_request(request_id, method,
                                                     params)))
        await self._writer.drain()
        return await asyncio.wait_for(future, timeout)

    async def call(self, method: str,
                   params: Mapping[str, Any] | None = None,
                   request_id: str | None = None,
                   timeout: float = 30.0) -> Any:
        """Send one request and return its result.

        :raises ServeCallError: for an error response.
        """
        response = await self.call_raw(method, params,
                                       request_id=request_id,
                                       timeout=timeout)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeCallError(error.get("type", "ServeError"),
                                 error.get("message", "unknown error"))
        return response["result"]

    async def hello(self, role: str = "client") -> dict[str, Any]:
        return await self.call("hello", {"name": self.name, "role": role})

    async def subscribe(self, *topics: str) -> dict[str, Any]:
        return await self.call("subscribe", {"topics": list(topics)})

    async def next_event(self, timeout: float = 5.0) -> dict[str, Any]:
        """The next queued event (FIFO)."""
        return await asyncio.wait_for(self.events.get(), timeout)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

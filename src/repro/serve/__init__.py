"""The always-on authorisation service plane (``repro serve``).

Everything before this package runs on the simulated clock inside one
process; this package is where the framework meets real deployments: an
:mod:`asyncio` daemon (:mod:`repro.serve.server`) fronts the full policy
plane (:mod:`repro.serve.plane`) over a newline-delimited-JSON TCP protocol
(:mod:`repro.serve.protocol`), with an asyncio client
(:mod:`repro.serve.client`), a PID-file singleton guard
(:mod:`repro.serve.pidfile`) and the repo's first wall-clock benchmark
(:mod:`repro.serve.bench`).  The simulated path is untouched: both share
the :class:`~repro.util.clock.Clock` abstraction, so the same stack,
session, KeyCom service and durable store run under either timescale.
"""

from repro.serve.bench import check_bench, run_serve_bench
from repro.serve.client import ServeCallError, ServeClient
from repro.serve.pidfile import PidFile
from repro.serve.plane import ServePolicyPlane, decision_to_dict
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    classify,
    decode_frame,
    encode_frame,
    error_response,
    make_event,
    make_request,
    ok_response,
)
from repro.serve.server import PeerInfo, ReproServer

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PeerInfo",
    "PidFile",
    "ReproServer",
    "ServeCallError",
    "ServeClient",
    "ServePolicyPlane",
    "check_bench",
    "classify",
    "decision_to_dict",
    "decode_frame",
    "encode_frame",
    "error_response",
    "make_event",
    "make_request",
    "ok_response",
    "run_serve_bench",
]

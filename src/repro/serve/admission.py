"""Overload protection for the serve plane: admission, brownout, retries.

PR 4 made the policy plane survive *backend* failure (circuit breakers,
degraded modes); nothing yet protected the PR 7 daemon from its *clients*.
An unbounded burst of ``mediate`` requests used to queue without limit,
expired work was still dispatched, and synchronized retriers amplified load
exactly when the plane was slowest.  This module is the missing discipline,
one deliberate property per class:

- :class:`AdmissionController` — a bounded global in-flight budget plus
  per-peer :class:`TokenBucket` rate limits, applied at dispatch.  A
  request that cannot be admitted receives an explicit structured refusal
  (``OverloadedError`` / ``RateLimitedError`` with a ``retry_after`` hint)
  — **never a silent drop, never a fail-open allow**: a shed authorisation
  request is a refusal, full stop.  Methods carry priority classes
  (:data:`CONTROL` < :data:`ADMIN` < :data:`DATA` < :data:`BULK`) so
  control-plane traffic — ``hello``, heartbeats, ``revoke``, drain — is
  never shed behind a data-plane ``mediate`` flood.

- :class:`BrownoutController` — self-regulating degradation under
  *sustained* pressure (the adaptable-middleware discipline): the plane
  steps through declared tiers — shed span/event broadcasting, then serve
  TTL'd-stale cached decisions with ``stale=True`` disclosure (the PR 4
  fail-static machinery), then shed the lowest-priority work — and steps
  back down when pressure stays low.  Every transition is emitted as an
  ``obs`` metric/span and surfaced to the server for a ``server`` pub/sub
  event, so brownout is always attributable.

- :class:`RetryBudget` + :func:`backoff_delay` — the client half.
  Retries consume budget and successes refill it, so a synchronized retry
  storm decays geometrically instead of amplifying; jittered exponential
  backoff desynchronises the survivors, and server ``retry_after`` hints
  are honoured as a lower bound.

Everything runs on the shared :class:`~repro.util.clock.Clock` protocol,
so every behaviour here — refill arithmetic, sustain/cool hysteresis,
stale windows — is testable to the exact second on the simulated clock and
identical in kind on the wall clock.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.util.clock import Clock, SimulatedClock
from repro.webcom.health import PressureWindow

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

# -- priority classes --------------------------------------------------------

#: control plane: registration, liveness, status, revocation, drain.  Never
#: shed — an overloaded plane that cannot be drained or revoked is worse
#: than an overloaded plane.
CONTROL = 0
#: administrative mutations (KeyCom installs, credential adds)
ADMIN = 1
#: the data plane: mediation and oracle probes — the floodable surface
DATA = 2
#: bulk/ancillary work: translation jobs, span-tree fetches
BULK = 3

PRIORITY_NAMES = {CONTROL: "control", ADMIN: "admin",
                  DATA: "data", BULK: "bulk"}

#: serve method -> priority class; unknown methods sort with BULK (they are
#: refused by dispatch anyway, but they must not consume data-plane budget)
METHOD_PRIORITY: dict[str, int] = {
    "hello": CONTROL, "ping": CONTROL, "subscribe": CONTROL,
    "unsubscribe": CONTROL, "status": CONTROL, "shutdown": CONTROL,
    "revoke": CONTROL, "sweep": CONTROL,
    "update": ADMIN, "add_policy": ADMIN, "add_credential": ADMIN,
    "mediate": DATA, "probe": DATA,
    "translate": BULK, "spans": BULK,
}


def method_priority(method: str) -> int:
    """The priority class a serve method is admitted under."""
    return METHOD_PRIORITY.get(method, BULK)


# -- token bucket ------------------------------------------------------------


class TokenBucket:
    """A per-peer rate limiter on the shared clock.

    ``rate`` tokens accrue per clock second up to ``burst``; each admitted
    request takes one.  :meth:`retry_after` reports how long until the next
    token exists — the hint a rate-limit refusal carries back to the client.

    >>> clock = SimulatedClock()
    >>> bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    >>> bucket.take(), bucket.take(), bucket.take()
    (True, True, False)
    >>> bucket.retry_after()
    0.5
    >>> _ = clock.advance(0.5)
    >>> bucket.take()
    True
    """

    def __init__(self, rate: float, burst: float,
                 clock: Clock | None = None) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if not burst > 0:
            raise ValueError(f"burst must be positive, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock: Clock = clock or SimulatedClock()
        self.tokens = float(burst)
        self._refilled_at = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._refilled_at) * self.rate)
        self._refilled_at = now

    def take(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False means rate-limited."""
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Clock seconds until ``cost`` tokens will exist."""
        self._refill()
        deficit = cost - self.tokens
        return max(0.0, deficit / self.rate)


# -- refusals ----------------------------------------------------------------


@dataclass(frozen=True)
class Refusal:
    """A structured admission refusal (the anti-silent-drop contract).

    The server turns this into an error *response* carrying the type, the
    kind and the ``retry_after`` hint — the shed request is answered, not
    dropped, and it is never answered with an allow.
    """

    kind: str           #: "overloaded" | "rate_limited" | "brownout"
    error_type: str     #: wire error type clients branch on
    message: str
    retry_after: float | None = None
    priority: int = DATA


@dataclass
class Ticket:
    """One admitted request; must be released exactly once."""

    priority: int
    counted: bool  #: whether it holds a slot of the in-flight budget


# -- brownout ----------------------------------------------------------------


@dataclass(frozen=True)
class BrownoutTier:
    """One declared degradation step with enter/exit hysteresis bounds."""

    level: int
    name: str
    enter: float  #: sustained pressure at or above this escalates into it
    exit: float   #: sustained pressure at or below this de-escalates out


#: the declared ladder: cheap disclosure first, shed work last
DEFAULT_TIERS: tuple[BrownoutTier, ...] = (
    BrownoutTier(1, "shed_broadcast", enter=0.60, exit=0.30),
    BrownoutTier(2, "serve_stale", enter=0.75, exit=0.45),
    BrownoutTier(3, "shed_bulk", enter=0.90, exit=0.60),
)


class BrownoutController:
    """Steps the plane through degradation tiers under sustained pressure.

    Pressure is the :class:`~repro.webcom.health.PressureWindow` estimate
    (max of in-flight utilisation and windowed shed ratio).  Escalation
    needs pressure at or above the next tier's ``enter`` bound sustained
    for ``sustain`` clock seconds; de-escalation needs pressure at or below
    the current tier's ``exit`` bound for ``cool`` seconds — classic
    hysteresis so the plane does not flap at a boundary.

    Tier effects are *queries* (:meth:`shed_broadcast`,
    :meth:`serve_stale`, :meth:`shed_bulk`); the server and the admission
    controller consult them per request.  ``stale_ttl`` bounds how far past
    its TTL a cached decision may be served at tier 2 (disclosure via the
    PR 4 ``stale=True`` machinery).

    Every transition is recorded, counted (``serve.brownout.*``), traced,
    and handed to ``on_transition`` so the server can broadcast it.
    """

    def __init__(self, clock: Clock | None = None,
                 tiers: tuple[BrownoutTier, ...] = DEFAULT_TIERS,
                 window: float = 1.0, sustain: float = 0.5,
                 cool: float = 1.0, stale_ttl: float = 30.0,
                 obs: "Observability | None" = None,
                 on_transition: Callable[[int, int, float], None] | None
                 = None) -> None:
        if list(tiers) != sorted(tiers, key=lambda t: t.level) or any(
                tier.level != n + 1 for n, tier in enumerate(tiers)):
            raise ValueError("tiers must be consecutive levels from 1")
        self.clock: Clock = clock or SimulatedClock()
        self.tiers = tuple(tiers)
        self.sustain = float(sustain)
        self.cool = float(cool)
        self.stale_ttl = float(stale_ttl)
        self.obs = obs
        self.on_transition = on_transition
        self.window = PressureWindow(clock=self.clock, window=window)
        self.level = 0
        self.max_level = 0
        #: (at, from_level, to_level, pressure) for every transition
        self.transitions: list[dict[str, Any]] = []
        self._above_since: float | None = None
        self._below_since: float | None = None

    # -- tier effects ------------------------------------------------------

    def shed_broadcast(self) -> bool:
        """Tier >= 1: drop event broadcasting / span-tree assembly."""
        return self.level >= 1

    def serve_stale(self) -> bool:
        """Tier >= 2: serve TTL'd-stale cached decisions (disclosed)."""
        return self.level >= 2

    def shed_bulk(self) -> bool:
        """Tier >= 3: refuse the lowest-priority work outright."""
        return self.level >= 3

    # -- pressure feed -----------------------------------------------------

    def record(self, shed: bool, utilization: float) -> None:
        """One admission outcome lands in the pressure window."""
        self.window.record(shed, utilization)
        self._evaluate()

    def poll(self) -> None:
        """Re-evaluate without new traffic (lets an idle plane cool)."""
        self._evaluate()

    def pressure(self) -> float:
        return self.window.pressure()

    # -- hysteresis --------------------------------------------------------

    def _evaluate(self) -> None:
        now = self.clock.now()
        pressure = self.window.pressure()
        next_tier = (self.tiers[self.level]
                     if self.level < len(self.tiers) else None)
        current = self.tiers[self.level - 1] if self.level > 0 else None
        if next_tier is not None and pressure >= next_tier.enter:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            elif now - self._above_since >= self.sustain:
                self._step(self.level + 1, pressure, now)
                self._above_since = None
            return
        self._above_since = None
        if current is not None and pressure <= current.exit:
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= self.cool:
                self._step(self.level - 1, pressure, now)
                self._below_since = None
        else:
            self._below_since = None

    def _step(self, new_level: int, pressure: float, now: float) -> None:
        old_level = self.level
        self.level = new_level
        self.max_level = max(self.max_level, new_level)
        record = {"at": now, "from": old_level, "to": new_level,
                  "pressure": round(pressure, 4),
                  "tier": (self.tiers[new_level - 1].name if new_level
                           else "normal")}
        self.transitions.append(record)
        if self.obs is not None:
            self.obs.metrics.counter(
                f"serve.brownout.to_level.{new_level}").inc()
            self.obs.metrics.gauge("serve.brownout.level").set(new_level)
            self.obs.tracer.record(
                "serve.brownout.transition", now, now,
                from_level=old_level, to_level=new_level,
                pressure=record["pressure"], tier=record["tier"])
        if self.on_transition is not None:
            self.on_transition(old_level, new_level, pressure)

    def snapshot(self) -> dict[str, Any]:
        """Serialisable state for ``status()`` and the overload report."""
        return {"level": self.level, "max_level": self.max_level,
                "pressure": round(self.window.pressure(), 4),
                "stale_ttl": self.stale_ttl,
                "tiers": [{"level": t.level, "name": t.name,
                           "enter": t.enter, "exit": t.exit}
                          for t in self.tiers],
                "transitions": list(self.transitions)}


# -- admission ---------------------------------------------------------------


class AdmissionController:
    """Bounded in-flight budget + per-peer rate limits + priority classes.

    :param max_inflight: global budget of concurrently dispatched non-control
        requests.  Control-plane traffic is **never** counted against it and
        never shed — registration, liveness, revocation and drain must work
        precisely when the plane is busiest.
    :param peer_rate: per-peer admitted requests per clock second (None
        disables rate limiting).
    :param peer_burst: per-peer burst allowance (defaults to ``2 x rate``).
    :param brownout: optional :class:`BrownoutController` fed by every
        admission outcome; at tier 3 the lowest-priority class is refused
        and the data-plane budget is halved (graceful, declared shedding).
    """

    def __init__(self, clock: Clock | None = None,
                 max_inflight: int = 64,
                 peer_rate: float | None = None,
                 peer_burst: float | None = None,
                 brownout: BrownoutController | None = None,
                 obs: "Observability | None" = None) -> None:
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, "
                             f"got {max_inflight!r}")
        self.clock: Clock = clock or SimulatedClock()
        self.max_inflight = int(max_inflight)
        self.peer_rate = peer_rate
        self.peer_burst = (float(peer_burst) if peer_burst is not None
                           else (2.0 * peer_rate if peer_rate else None))
        self.brownout = brownout
        self.obs = obs
        self.inflight = 0
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted: dict[str, int] = {name: 0
                                         for name in PRIORITY_NAMES.values()}
        self.shed_overloaded = 0
        self.shed_rate_limited = 0
        self.shed_brownout = 0
        self.shed_by_priority: dict[str, int] = {
            name: 0 for name in PRIORITY_NAMES.values()}

    # -- the admission decision -------------------------------------------

    def admit(self, peer_id: str, method: str) -> "Ticket | Refusal":
        """Admit or refuse one decoded request before dispatch.

        Control-plane methods are always admitted.  Everything else runs
        the gauntlet: brownout bulk-shedding, the per-peer token bucket,
        then the global in-flight budget.  Refusals are returned (never
        raised) so the server can answer them on the wire.
        """
        priority = method_priority(method)
        if priority == CONTROL:
            self.admitted["control"] += 1
            return Ticket(priority=CONTROL, counted=False)
        budget = self.max_inflight
        if self.brownout is not None and self.brownout.shed_bulk():
            if priority >= BULK:
                refusal = self._refuse(
                    priority, "brownout", "OverloadedError",
                    f"brownout tier {self.brownout.level}: lowest-priority "
                    f"work is shed", retry_after=self.brownout.cool)
                return refusal
            budget = max(1, budget // 2)
        if self.peer_rate is not None:
            bucket = self._buckets.get(peer_id)
            if bucket is None:
                assert self.peer_burst is not None
                bucket = TokenBucket(self.peer_rate, self.peer_burst,
                                     clock=self.clock)
                self._buckets[peer_id] = bucket
            if not bucket.take():
                return self._refuse(
                    priority, "rate_limited", "RateLimitedError",
                    f"peer {peer_id} exceeded {self.peer_rate:g} "
                    f"requests/s",
                    retry_after=bucket.retry_after())
        if self.inflight >= budget:
            return self._refuse(
                priority, "overloaded", "OverloadedError",
                f"in-flight budget exhausted "
                f"({self.inflight}/{budget})",
                retry_after=self._overload_retry_after())
        self.inflight += 1
        self.admitted[PRIORITY_NAMES[priority]] += 1
        self._record(shed=False)
        if self.obs is not None:
            self.obs.metrics.gauge("serve.admission.inflight").set(
                self.inflight)
        return Ticket(priority=priority, counted=True)

    def release(self, ticket: Ticket) -> None:
        """Return an admitted request's budget slot (exactly once)."""
        if ticket.counted:
            ticket.counted = False
            self.inflight -= 1
            assert self.inflight >= 0

    def forget_peer(self, peer_id: str) -> None:
        """Drop a disconnected peer's rate-limit state."""
        self._buckets.pop(peer_id, None)

    # -- internals ---------------------------------------------------------

    def _overload_retry_after(self) -> float:
        """A deliberately spread hint: proportional to oversubscription so
        a synchronized flood does not come back as a synchronized retry."""
        if self.max_inflight <= 0:
            return 0.1
        return 0.05 * (1.0 + self.inflight / self.max_inflight)

    def _refuse(self, priority: int, kind: str, error_type: str,
                message: str, retry_after: float | None) -> Refusal:
        if kind == "overloaded":
            self.shed_overloaded += 1
        elif kind == "rate_limited":
            self.shed_rate_limited += 1
        else:
            self.shed_brownout += 1
        self.shed_by_priority[PRIORITY_NAMES[priority]] += 1
        self._record(shed=True)
        if self.obs is not None:
            self.obs.metrics.counter(f"serve.admission.shed.{kind}").inc()
        return Refusal(kind=kind, error_type=error_type, message=message,
                       retry_after=retry_after, priority=priority)

    def _record(self, shed: bool) -> None:
        if self.brownout is not None:
            utilization = (self.inflight / self.max_inflight
                           if self.max_inflight > 0 else 1.0)
            self.brownout.record(shed, utilization)

    # -- reporting ---------------------------------------------------------

    @property
    def sheds_total(self) -> int:
        return (self.shed_overloaded + self.shed_rate_limited
                + self.shed_brownout)

    def snapshot(self) -> dict[str, Any]:
        """Serialisable state for ``status()`` and the overload report."""
        return {
            "max_inflight": self.max_inflight,
            "inflight": self.inflight,
            "peer_rate": self.peer_rate,
            "peer_burst": self.peer_burst,
            "peers_tracked": len(self._buckets),
            "admitted": dict(self.admitted),
            "shed": {"overloaded": self.shed_overloaded,
                     "rate_limited": self.shed_rate_limited,
                     "brownout": self.shed_brownout,
                     "total": self.sheds_total,
                     "by_priority": dict(self.shed_by_priority)},
        }


# -- client-side retry discipline -------------------------------------------


class RetryBudget:
    """Token-bucket retry budget: retries spend, successes refill.

    Under a persistent outage every client's budget drains and the retry
    storm decays to the refill rate instead of multiplying offered load;
    under a blip the refill from resumed successes restores full retry
    capacity.  (The budget is per *client*, deliberately: a thousand
    well-behaved clients are a thousand small budgets, not one big one.)
    """

    def __init__(self, capacity: float = 10.0, refill: float = 0.5,
                 cost: float = 1.0) -> None:
        if capacity <= 0 or refill < 0 or cost <= 0:
            raise ValueError("capacity and cost must be positive, "
                             "refill non-negative")
        self.capacity = float(capacity)
        self.refill = float(refill)
        self.cost = float(cost)
        self.tokens = float(capacity)
        self.retries = 0
        self.exhausted = 0

    def allow_retry(self) -> bool:
        """May another retry be sent?  (Does not spend.)"""
        if self.tokens >= self.cost:
            return True
        self.exhausted += 1
        return False

    def on_retry(self) -> None:
        """Spend budget for one retry actually sent."""
        self.tokens = max(0.0, self.tokens - self.cost)
        self.retries += 1

    def on_success(self) -> None:
        """A completed call refills a fraction of the budget."""
        self.tokens = min(self.capacity, self.tokens + self.refill)

    def snapshot(self) -> dict[str, Any]:
        return {"capacity": self.capacity, "tokens": round(self.tokens, 3),
                "retries": self.retries, "exhausted": self.exhausted}


def backoff_delay(attempt: int, base: float = 0.05, cap: float = 2.0,
                  rng: "random.Random | None" = None,
                  retry_after: float | None = None) -> float:
    """Jittered exponential backoff for retry ``attempt`` (0-based).

    The exponential term doubles per attempt up to ``cap``; jitter spreads
    each delay uniformly over its upper half so synchronized losers
    desynchronise.  A server ``retry_after`` hint is honoured as a lower
    bound (with its own jitter on top — everyone told "0.5 s" must not
    come back in the same millisecond).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    roll = (rng or random).random()
    delay = min(cap, base * (2.0 ** attempt)) * (0.5 + 0.5 * roll)
    if retry_after is not None and retry_after > 0:
        delay = max(delay, retry_after * (1.0 + 0.25 * roll))
    return delay

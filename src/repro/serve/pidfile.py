"""PID-file singleton guard for the ``repro serve`` daemon.

An always-on authorisation plane owns durable state (the WAL root): two
daemons journalling to the same root would interleave their write-ahead
records and corrupt the acknowledged history.  The guard is the classic
Unix one — write our PID to a well-known file, and refuse to start while
the recorded PID names a live process.  A stale file (dead PID, e.g. after
a crash) is reclaimed silently: crash recovery is the WAL's job, not the
pidfile's.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import AlreadyRunningError


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours to signal
    except OSError:
        return False
    return True


class PidFile:
    """Exclusive-run guard around one pidfile path.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "serve.pid")
    >>> guard = PidFile(path).acquire()
    >>> int(open(path).read()) == os.getpid()
    True
    >>> guard.release()
    >>> os.path.exists(path)
    False
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self._held = False

    def acquire(self) -> "PidFile":
        """Claim the pidfile for this process.

        :raises AlreadyRunningError: when the file records a live PID.
        """
        other = self.stale_pid()
        if other is not None:
            raise AlreadyRunningError(other, str(self.path))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(f"{os.getpid()}\n", encoding="utf-8")
        self._held = True
        return self

    def stale_pid(self) -> int | None:
        """The live PID recorded in the file, or None if absent/stale."""
        try:
            recorded = int(self.path.read_text(encoding="utf-8").strip())
        except (FileNotFoundError, ValueError):
            return None
        if recorded != os.getpid() and _pid_alive(recorded):
            return recorded
        return None

    def release(self) -> None:
        """Drop the claim (removing the file if it still records our PID)."""
        if not self._held:
            return
        self._held = False
        try:
            recorded = int(self.path.read_text(encoding="utf-8").strip())
        except (FileNotFoundError, ValueError):
            return
        if recorded == os.getpid():
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "PidFile":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

"""The first wall-clock benchmark: ``repro serve-bench``.

Every earlier benchmark in this repo runs on the simulated clock; the serve
plane is the first component whose performance is *real*.  The bench boots
an in-process daemon on a durable root, connects ``clients`` concurrent
:class:`~repro.serve.client.ServeClient` connections (the acceptance floor
is 32), and drives two mediation passes over distinct per-client requests:

- **cold** — every request is new, so each mediation runs the full stack
  (compliance fixpoint included);
- **warm** — the identical requests again, now served by the PR-3
  mediation cache.

Every ``probe_every``-th request goes through the ``probe`` API instead,
which re-derives the expected verdict from the PR-5 conformance oracle and
reports agreement; the bench requires **zero** disagreements.  The run ends
with a deliberately contended drain: a final wave of calls is launched and
``shutdown`` is issued while they are in flight — every call must complete
(succeed or be refused with a drain error; none lost), and the drain report
must show the WAL flushed.

The emitted ``BENCH_7.json`` carries requests/sec, p50/p99 per-request
latency for both passes, oracle agreement and the drain proof.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.serve.client import ServeCallError, ServeClient
from repro.serve.plane import ServePolicyPlane
from repro.serve.server import ReproServer
from repro.util.clock import WallClock

#: operations the bench's trust root authorises; ``admin`` is deliberately
#: left out so the run exercises agreed-upon denials too
ALLOWED_OPS = ("stage", "execute", "fetch")
DENIED_OP = "admin"


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (0.0 for an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _client_requests(index: int, requests: int) -> list[dict[str, Any]]:
    """The per-client request set (identical across cold/warm passes)."""
    ops = ALLOWED_OPS + (DENIED_OP,)
    return [{
        "user": f"user{index:02d}",
        "user_key": f"Kuser{index:02d}",
        "object_type": "graph",
        "operation": ops[n % len(ops)],
        "attributes": {"app_domain": "WebCom"},
    } for n in range(requests)]


async def _drive_client(client: ServeClient, requests: list[dict[str, Any]],
                        probe_every: int) -> dict[str, Any]:
    """One client's pass: timed mediations with periodic oracle probes."""
    latencies: list[float] = []
    disagreements = 0
    probes = 0
    denials = 0
    for n, params in enumerate(requests):
        method = "probe" if probe_every and n % probe_every == 0 \
            else "mediate"
        started = time.perf_counter()
        result = await client.call(method, params)
        latencies.append(time.perf_counter() - started)
        if not result["allowed"]:
            denials += 1
        if method == "probe":
            probes += 1
            if not result["agree"]:
                disagreements += 1
    return {"latencies": latencies, "probes": probes,
            "disagreements": disagreements, "denials": denials}


def _pass_stats(outcomes: list[dict[str, Any]],
                elapsed: float) -> dict[str, Any]:
    latencies = [lat for out in outcomes for lat in out["latencies"]]
    return {
        "requests": len(latencies),
        "seconds": elapsed,
        "requests_per_sec": (len(latencies) / elapsed if elapsed > 0
                             else 0.0),
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
        "probes": sum(out["probes"] for out in outcomes),
        "disagreements": sum(out["disagreements"] for out in outcomes),
        "denials": sum(out["denials"] for out in outcomes),
    }


async def _drain_wave(host: str, port: int, clients: int) -> dict[str, Any]:
    """Launch a wave of calls and shut the server down mid-flight.

    Every call must resolve — an ``ok`` response or an explicit drain
    refusal — and none may be lost to a torn-down connection or timeout.
    """
    wave = [await ServeClient(f"wave-{n}").connect(host, port)
            for n in range(clients)]
    control = await ServeClient("control").connect(host, port)
    await control.hello(role="control")
    try:
        calls = [asyncio.create_task(
            client.call("mediate", _client_requests(n, 1)[0], timeout=30.0))
            for n, client in enumerate(wave)]
        shutdown_ack = await control.call("shutdown",
                                          {"reason": "bench drain"})
        completed = 0
        refused = 0
        lost = 0
        for call in calls:
            try:
                await call
                completed += 1
            except ServeCallError as exc:
                if "draining" in str(exc):
                    refused += 1
                else:
                    lost += 1
            except Exception:
                lost += 1
        return {"draining_ack": bool(shutdown_ack.get("draining")),
                "wave": len(calls), "completed": completed,
                "refused": refused, "lost": lost}
    finally:
        for client in wave:
            await client.close()
        await control.close()


async def _run(clients: int, requests: int, probe_every: int,
               root: "Path | str") -> dict[str, Any]:
    plane = ServePolicyPlane(root=root, clock=WallClock(), cache_ttl=300.0)
    keys = []
    for index in range(clients):
        plane.keystore.create(f"Kuser{index:02d}")
        keys.append(f"Kuser{index:02d}")
    licensees = " || ".join(f'"{key}"' for key in keys)
    ops = " || ".join(f'op=="{op}"' for op in ALLOWED_OPS)
    plane.session.add_policy(
        f"Authorizer: POLICY\n"
        f"Licensees: {licensees}\n"
        f'Conditions: app_domain=="WebCom" && ({ops});')
    server = await ReproServer(plane).start()
    host, port = server.host, server.port
    pool = [await ServeClient(f"bench-{n}").connect(host, port)
            for n in range(clients)]
    observer = await ServeClient("observer").connect(host, port)
    try:
        for client in pool:
            await client.hello(role="bench")
        await observer.hello(role="observer")
        await observer.subscribe("decision", "server")
        workloads = [_client_requests(n, requests)
                     for n in range(clients)]
        passes = {}
        for label in ("cold", "warm"):
            started = time.perf_counter()
            outcomes = await asyncio.gather(*[
                _drive_client(client, workload, probe_every)
                for client, workload in zip(pool, workloads)])
            passes[label] = _pass_stats(list(outcomes),
                                        time.perf_counter() - started)
        status = await observer.call("status")
        events_seen = observer.events.qsize()
    finally:
        for client in pool:
            await client.close()
        await observer.close()
    drain = await _drain_wave(host, port, clients)
    report = await server.serve_until_shutdown()
    cache = status["plane"]["cache"]
    return {
        "bench": "BENCH_7",
        "timescale": "wall",
        "clients": clients,
        "requests_per_client": requests,
        "cold": passes["cold"],
        "warm": passes["warm"],
        "cache": cache,
        "oracle": {
            "probes": passes["cold"]["probes"] + passes["warm"]["probes"],
            "disagreements": (passes["cold"]["disagreements"]
                              + passes["warm"]["disagreements"]),
        },
        "events_observed": events_seen,
        "drain": {**drain,
                  "wal_flushed": report["wal_flushed"],
                  "inflight_after_drain": report["inflight_after_drain"],
                  "snapshot": report.get("snapshot")},
        "server": {
            "requests_served": report["requests_served"],
            "duplicates_served": report["duplicates_served"],
            "events_broadcast": report["events_broadcast"],
        },
    }


def run_serve_bench(clients: int = 32, requests: int = 12,
                    probe_every: int = 4,
                    root: "Path | str | None" = None) -> dict[str, Any]:
    """Run the wall-clock serve benchmark; returns the BENCH_7 report."""
    if root is None:
        with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
            return asyncio.run(_run(clients, requests, probe_every, tmp))
    return asyncio.run(_run(clients, requests, probe_every, root))


def check_bench(report: dict[str, Any],
                min_clients: int = 32) -> list[str]:
    """The acceptance gates of ``repro serve-bench --check``.

    Returns the list of failed gates (empty means the run passes).  The
    gates are correctness properties, not speed thresholds — wall-clock
    speed on shared CI hardware is reported, never asserted.
    """
    failures = []
    if report["clients"] < min_clients:
        failures.append(f"only {report['clients']} concurrent clients "
                        f"(need >= {min_clients})")
    if report["oracle"]["probes"] == 0:
        failures.append("no oracle probes ran")
    if report["oracle"]["disagreements"] != 0:
        failures.append(f"{report['oracle']['disagreements']} oracle "
                        f"disagreements (need 0)")
    drain = report["drain"]
    if drain["lost"] != 0:
        failures.append(f"{drain['lost']} in-flight calls lost at drain "
                        f"(need 0)")
    if not drain["wal_flushed"]:
        failures.append("WAL was not flushed at shutdown")
    if drain["inflight_after_drain"] != 0:
        failures.append("drain finished with requests still in flight")
    if not drain["draining_ack"]:
        failures.append("shutdown was not acknowledged")
    for label in ("cold", "warm"):
        if report[label]["requests"] == 0:
            failures.append(f"{label} pass ran no requests")
    if report["warm"]["denials"] != report["cold"]["denials"]:
        failures.append("cold and warm passes disagree on denials")
    if report["cache"]["hits"] == 0:
        failures.append("warm pass produced no mediation-cache hits")
    return failures

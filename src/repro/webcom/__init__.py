"""WebCom: the distributed metacomputing substrate and Secure WebCom on top.

WebCom applications are condensed graphs [21] whose nodes are middleware
components; a master schedules fireable nodes to clients across a (simulated)
network, and Secure WebCom mediates every scheduling decision through the
trust-management layer in both directions (Figure 3).

Modules:

- :mod:`repro.webcom.graph` — condensed graphs: nodes, ports, condensation.
- :mod:`repro.webcom.engine` — the graph execution engine
  (availability-, coercion- and control-driven firing).
- :mod:`repro.webcom.network` — deterministic simulated network with latency
  and fault injection.
- :mod:`repro.webcom.faults` — seeded fault plans (drop/duplicate/reorder/
  jitter/crash windows) for chaos testing.
- :mod:`repro.webcom.node` — WebCom masters and clients.
- :mod:`repro.webcom.secure` — the KeyNote handshake of Figure 3.
- :mod:`repro.webcom.keycom` — the KeyCOM administration service (Figure 8).
- :mod:`repro.webcom.stack` — stacked authorisation L0-L3 (Figure 10).
- :mod:`repro.webcom.ide` — IDE interrogation and placement (Figure 11).
- :mod:`repro.webcom.scenario` — a fully observed Figure-3 run (one
  correlated trace through master, network, client and stack; the substrate
  of ``repro trace`` / ``repro metrics``).
"""

from repro.webcom.engine import EvaluationMode, GraphEngine
from repro.webcom.failover import GraphCheckpoint, MasterGroup
from repro.webcom.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.webcom.graph import CondensedGraph, GraphNode
from repro.webcom.ide import ComponentPalette, PlacementSpec, WebComIDE
from repro.webcom.keycom import KeyComService, PolicyUpdateRequest
from repro.webcom.network import Message, SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.scenario import ObservedRun, run_observed_scenario
from repro.webcom.secure import SecureWebComEnvironment
from repro.webcom.stack import (
    AuthorisationStack,
    FrozenAttributes,
    Layer,
    MediationRequest,
)
from repro.webcom.workflow import WorkflowGuard, WorkflowPolicy

__all__ = [
    "AuthorisationStack",
    "ComponentPalette",
    "CondensedGraph",
    "CrashWindow",
    "EvaluationMode",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FrozenAttributes",
    "GraphCheckpoint",
    "GraphEngine",
    "GraphNode",
    "KeyComService",
    "Layer",
    "MasterGroup",
    "MediationRequest",
    "Message",
    "ObservedRun",
    "PlacementSpec",
    "PolicyUpdateRequest",
    "SecureWebComEnvironment",
    "SimulatedNetwork",
    "WebComClient",
    "WebComIDE",
    "WebComMaster",
    "WorkflowGuard",
    "WorkflowPolicy",
    "run_observed_scenario",
]

"""The condensed-graph execution engine.

Implements Morrison's three firing disciplines [21]:

- **availability-driven** (eager): every node whose operands are all present
  fires;
- **coercion-driven** (lazy): only nodes the exit transitively demands fire;
- **control-driven**: like eager, but nodes fire one at a time in a
  deterministic sequence (for components with side effects).

Executing an operator is delegated to an *executor* callable — in plain use
a local function table, in Secure WebCom the master's scheduler, which is how
the security mediation gets between "fireable" and "fired".  Condensed nodes
evaporate into a nested engine run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import GraphError, SchedulingError
from repro.webcom.graph import CondensedGraph, GraphNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: executor(node, args) -> result
Executor = Callable[[GraphNode, tuple], Any]

#: batch_executor([(node, args), ...]) -> [result, ...] in the same order
BatchExecutor = Callable[[list], list]


class EvaluationMode(enum.Enum):
    """The firing discipline."""

    AVAILABILITY = "availability"  # eager dataflow
    COERCION = "coercion"          # lazy, demand-driven from the exit
    CONTROL = "control"            # sequential, deterministic order


@dataclass
class ExecutionTrace:
    """What an engine run did (for tests, benchmarks and the IDE).

    ``fired`` lists only nodes this run actually executed; nodes whose
    results were restored from a failover checkpoint appear in ``restored``
    instead (their values still land in ``results``).
    """

    fired: list[str] = field(default_factory=list)
    results: dict[str, Any] = field(default_factory=dict)
    restored: list[str] = field(default_factory=list)

    def fired_count(self) -> int:
        return len(self.fired)


class GraphEngine:
    """Executes one condensed graph to completion.

    >>> g = CondensedGraph("inc")
    >>> _ = g.add_node("n", operator="inc", arity=1)
    >>> g.entry("x", "n", 0)
    >>> g.set_exit("n")
    >>> engine = GraphEngine(g, executor=lambda node, args: args[0] + 1)
    >>> engine.run({"x": 41})
    42
    """

    def __init__(self, graph: CondensedGraph, executor: Executor,
                 mode: EvaluationMode = EvaluationMode.AVAILABILITY,
                 obs: "Observability | None" = None,
                 batch_executor: "BatchExecutor | None" = None) -> None:
        graph.validate()
        self.graph = graph
        self.executor = executor
        self.mode = mode
        self.obs = obs
        #: when set, whole wavefronts of plain (non-condensed) nodes are
        #: handed over in one call instead of one executor call per node —
        #: safe because every fireable node already holds all its operands,
        #: so intra-wavefront results cannot change the batch's inputs.
        #: CONTROL mode never batches (it is strictly one node at a time).
        self.batch_executor = batch_executor
        self.trace = ExecutionTrace()

    def run(self, inputs: Mapping[str, Any], *,
            resume_from: Mapping[str, Any] | None = None,
            on_node_fired: "Callable[[str, Any], None] | None" = None) -> Any:
        """Execute the graph on ``inputs`` and return the exit node's result.

        The trace is reset on every call, so repeated runs (e.g.
        re-execution after failover) report the firing counts of that run
        alone.

        :param resume_from: node id -> result of nodes already completed
            (e.g. from a failover checkpoint); they are restored instead of
            re-fired.
        :param on_node_fired: callback ``(node_id, result)`` invoked after
            each live firing — checkpointing hooks in here.
        :raises GraphError: if inputs don't match the declared entries, or
            execution stalls before the exit fires.
        """
        declared = set(self.graph.entries)
        provided = set(inputs)
        if declared != provided:
            raise GraphError(
                f"graph {self.graph.name!r} expects inputs {sorted(declared)}, "
                f"got {sorted(provided)}")

        self.trace = ExecutionTrace()
        operands: dict[str, dict[int, Any]] = {
            node_id: {} for node_id in self.graph.nodes}
        for name, refs in self.graph.entries.items():
            for ref in refs:
                operands[ref.node_id][ref.port] = inputs[name]

        fired: set[str] = set()
        for node_id, result in dict(resume_from or {}).items():
            if node_id not in self.graph.nodes:
                continue
            fired.add(node_id)
            self.trace.restored.append(node_id)
            self.trace.results[node_id] = result
            for dest in self.graph.node(node_id).destinations:
                operands[dest.node_id][dest.port] = result
        needed = (self.graph.needed_for_exit()
                  if self.mode is EvaluationMode.COERCION
                  else set(self.graph.nodes))
        exit_id = self.graph.exit_node

        while exit_id not in fired:
            fireable = sorted(
                node_id for node_id, node in self.graph.nodes.items()
                if node_id not in fired
                and node_id in needed
                and len(operands[node_id]) == node.arity)
            if not fireable:
                stalled = sorted(set(needed) - fired)
                raise GraphError(
                    f"execution stalled; unfired needed nodes: {stalled}")
            if self.mode is EvaluationMode.CONTROL:
                fireable = fireable[:1]  # strictly one at a time
            batch_results = self._fire_wavefront(fireable, operands)
            for node_id in fireable:
                node = self.graph.node(node_id)
                args = tuple(operands[node_id][port]
                             for port in range(node.arity))
                if node_id in batch_results:
                    result = batch_results[node_id]
                else:
                    result = self._fire(node, args)
                fired.add(node_id)
                self.trace.fired.append(node_id)
                self.trace.results[node_id] = result
                if on_node_fired is not None:
                    on_node_fired(node_id, result)
                for dest in node.destinations:
                    operands[dest.node_id][dest.port] = result
        return self.trace.results[exit_id]

    def _fire_wavefront(self, fireable: list[str],
                        operands: dict[str, dict[int, Any]]) -> dict[str, Any]:
        """Fire a wavefront's plain nodes through the batch executor.

        Returns {node_id: result} for the nodes it handled; condensed nodes
        (which evaporate into nested runs) and singleton wavefronts stay on
        the per-node path.
        """
        if (self.batch_executor is None
                or self.mode is EvaluationMode.CONTROL):
            return {}
        plain = [node_id for node_id in fireable
                 if not self.graph.node(node_id).is_condensed]
        if len(plain) < 2:
            return {}
        items = []
        for node_id in plain:
            node = self.graph.node(node_id)
            items.append((node, tuple(operands[node_id][port]
                                      for port in range(node.arity))))
        if self.obs is None:
            results = self.batch_executor(items)
        else:
            with self.obs.tracer.span("engine.fire_batch", size=len(items),
                                      nodes=",".join(plain)):
                results = self.batch_executor(items)
            self.obs.metrics.counter("engine.fired").inc(len(items))
        if len(results) != len(items):
            raise SchedulingError(
                f"batch executor returned {len(results)} results "
                f"for {len(items)} nodes")
        return {node_id: result for node_id, result in zip(plain, results)}

    def _fire(self, node: GraphNode, args: tuple) -> Any:
        if self.obs is None:
            return self._fire_inner(node, args)
        with self.obs.tracer.span("engine.fire", node=node.node_id,
                                  operator=node.operator_name):
            with self.obs.metrics.time("engine.node_latency"):
                result = self._fire_inner(node, args)
        self.obs.metrics.counter("engine.fired").inc()
        return result

    def _fire_inner(self, node: GraphNode, args: tuple) -> Any:
        if node.is_condensed:
            # Condensation: the node evaporates into a nested run.  The
            # subgraph's entries bind positionally in sorted-name order.
            subgraph: CondensedGraph = node.operator  # type: ignore[assignment]
            names = sorted(subgraph.entries)
            if len(names) != len(args):
                raise GraphError(
                    f"condensed node {node.node_id!r}: {len(args)} operands "
                    f"for {len(names)} subgraph entries")
            nested = GraphEngine(subgraph, self.executor, self.mode,
                                 obs=self.obs,
                                 batch_executor=self.batch_executor)
            result = nested.run(dict(zip(names, args)))
            self.trace.fired.extend(
                f"{node.node_id}/{inner}" for inner in nested.trace.fired)
            return result
        return self.executor(node, args)


def function_table_executor(table: Mapping[str, Callable[..., Any]],
                            ) -> Executor:
    """An executor backed by a local function table (no middleware).

    :raises SchedulingError: at fire time for unknown operators.
    """

    def execute(node: GraphNode, args: tuple) -> Any:
        operator = node.operator
        assert isinstance(operator, str)
        fn = table.get(operator)
        if fn is None:
            raise SchedulingError(f"no implementation for operator "
                                  f"{operator!r} (node {node.node_id!r})")
        return fn(*args)

    return execute

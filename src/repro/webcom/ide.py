"""The WebCom IDE's security-aware development support (Section 6, Fig 11).

"To incorporate the existing middleware components as part of a WebCom
application, the middleware services need to be interrogated ... and make
them available to application developers through the use of a component
palette.  ...the middleware interrogation process also extracts security
policy information related to the middleware components.  The IDE analyses
the middleware component currently highlighted, and determines which
combinations of domain, role and user is suitably authorised (holds
permissions) to execute the selected component."

The GUI is presentation; this module reproduces the computation: palette
construction, per-component authorised-combination analysis, and placement
specifications (full or partial) that the scheduler enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError, UnknownComponentError
from repro.middleware.base import MiddlewareComponent
from repro.middleware.registry import MiddlewareRegistry
from repro.rbac.diff import merge_policies
from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class PlacementSpec:
    """A (domain, role[, user]) execution constraint for one graph node.

    "A partial specification is also supported, for example, allowing the
    programmer to specify a domain and role for a given component, in which
    case it will be scheduled to any authorised user in the specified domain
    and role."
    """

    domain: str
    role: str
    user: str | None = None

    def is_partial(self) -> bool:
        """True when the user is left to the scheduler."""
        return self.user is None

    def __str__(self) -> str:
        user = self.user if self.user is not None else "*"
        return f"{self.domain}/{self.role}:{user}"


@dataclass(frozen=True)
class AuthorisedCombination:
    """One (domain, role, user, operation) tuple that may run a component."""

    domain: str
    role: str
    user: str
    operation: str


@dataclass(frozen=True)
class PaletteEntry:
    """A palette item: a component plus its security analysis."""

    component: MiddlewareComponent
    combinations: tuple[AuthorisedCombination, ...]

    def users(self) -> set[str]:
        """Users that can execute the component at all."""
        return {c.user for c in self.combinations}

    def domain_roles(self) -> set[tuple[str, str]]:
        """(domain, role) pairs holding any permission on the component."""
        return {(c.domain, c.role) for c in self.combinations}


class ComponentPalette:
    """The palette shown in Figure 11, computed from interrogation."""

    def __init__(self, entries: list[PaletteEntry]) -> None:
        self._entries = {e.component.component_id: e for e in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        for key in sorted(self._entries):
            yield self._entries[key]

    def entry(self, component_id: str) -> PaletteEntry:
        """Look up a palette entry.

        :raises UnknownComponentError: if absent.
        """
        try:
            return self._entries[component_id]
        except KeyError:
            raise UnknownComponentError(
                f"component {component_id!r} is not on the palette") from None


class WebComIDE:
    """Interrogation + analysis + placement validation."""

    def __init__(self, registry: MiddlewareRegistry) -> None:
        self.registry = registry

    # -- interrogation ---------------------------------------------------------

    def global_policy(self) -> RBACPolicy:
        """The merged RBAC view of every middleware (comprehension)."""
        merged, _conflicts = merge_policies(
            "ide-global", self.registry.extract_all())
        return merged

    def interrogate(self) -> ComponentPalette:
        """Build the component palette with security analysis."""
        policy = self.global_policy()
        entries = []
        for component in self.registry.all_components():
            entries.append(PaletteEntry(
                component=component,
                combinations=tuple(self._analyse(component, policy))))
        return ComponentPalette(entries)

    def _analyse(self, component: MiddlewareComponent,
                 policy: RBACPolicy) -> list[AuthorisedCombination]:
        combos: list[AuthorisedCombination] = []
        for grant in policy.sorted_grants():
            if grant.object_type != component.object_type:
                continue
            for user in sorted(policy.members_of(grant.domain, grant.role)):
                combos.append(AuthorisedCombination(
                    domain=grant.domain, role=grant.role, user=user,
                    operation=grant.permission))
        return combos

    # -- placement -------------------------------------------------------------------

    def valid_placements(self, component_id: str,
                         operation: str | None = None) -> list[PlacementSpec]:
        """Every full placement spec authorised for a component."""
        entry = self.interrogate().entry(component_id)
        specs = []
        seen = set()
        for combo in entry.combinations:
            if operation is not None and combo.operation != operation:
                continue
            key = (combo.domain, combo.role, combo.user)
            if key not in seen:
                seen.add(key)
                specs.append(PlacementSpec(domain=combo.domain,
                                           role=combo.role, user=combo.user))
        return specs

    def check_placement(self, component_id: str, spec: PlacementSpec,
                        operation: str | None = None) -> None:
        """Validate a (possibly partial) placement against the analysis.

        :raises SchedulingError: when no authorised combination matches.
        """
        entry = self.interrogate().entry(component_id)
        for combo in entry.combinations:
            if operation is not None and combo.operation != operation:
                continue
            if combo.domain != spec.domain or combo.role != spec.role:
                continue
            if spec.user is None or combo.user == spec.user:
                return
        raise SchedulingError(
            f"no authorised combination matches placement {spec} for "
            f"component {component_id!r}")

    def resolve_user(self, component_id: str, spec: PlacementSpec,
                     operation: str | None = None) -> str:
        """Resolve a partial spec to a concrete authorised user
        (deterministically the first in sorted order).

        :raises SchedulingError: when nothing matches.
        """
        if spec.user is not None:
            self.check_placement(component_id, spec, operation)
            return spec.user
        entry = self.interrogate().entry(component_id)
        users = sorted(
            combo.user for combo in entry.combinations
            if combo.domain == spec.domain and combo.role == spec.role
            and (operation is None or combo.operation == operation))
        if not users:
            raise SchedulingError(
                f"no authorised user for placement {spec} on "
                f"component {component_id!r}")
        return users[0]

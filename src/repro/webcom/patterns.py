"""Reusable condensed-graph builders.

The WebCom IDE lets developers compose applications from standard dataflow
shapes; these constructors build the common ones programmatically (pipeline,
fan-out/fan-in, map-reduce) with validated wiring.  The benchmark suite uses
them as workloads.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GraphError
from repro.webcom.graph import CondensedGraph


def pipeline(name: str, operators: Sequence[str],
             entry_name: str = "x") -> CondensedGraph:
    """A linear chain: each stage feeds the next.

    :raises GraphError: for an empty stage list.
    """
    if not operators:
        raise GraphError("a pipeline needs at least one stage")
    graph = CondensedGraph(name)
    previous = None
    for i, operator in enumerate(operators):
        node_id = f"stage{i:03d}"
        graph.add_node(node_id, operator=operator, arity=1)
        if previous is None:
            graph.entry(entry_name, node_id, 0)
        else:
            graph.connect(previous, node_id, 0)
        previous = node_id
    graph.set_exit(previous)
    return graph


def fan_out_in(name: str, worker_op: str, join_op: str, width: int,
               entry_name: str = "x") -> CondensedGraph:
    """``width`` parallel workers over the same input, joined by one node.

    :raises GraphError: for width < 1.
    """
    if width < 1:
        raise GraphError("fan-out width must be at least 1")
    graph = CondensedGraph(name)
    graph.add_node("join", operator=join_op, arity=width)
    for i in range(width):
        node_id = f"worker{i:03d}"
        graph.add_node(node_id, operator=worker_op, arity=1)
        graph.entry(entry_name, node_id, 0)
        graph.connect(node_id, "join", i)
    graph.set_exit("join")
    return graph


def map_reduce(name: str, map_op: str, reduce_op: str,
               partitions: int) -> CondensedGraph:
    """One mapper per partition (each with its own entry), one reducer.

    Entries are named ``part000``, ``part001``, ... so callers provide one
    input per partition.

    :raises GraphError: for partitions < 1.
    """
    if partitions < 1:
        raise GraphError("map-reduce needs at least one partition")
    graph = CondensedGraph(name)
    graph.add_node("reduce", operator=reduce_op, arity=partitions)
    for i in range(partitions):
        node_id = f"map{i:03d}"
        graph.add_node(node_id, operator=map_op, arity=1)
        graph.entry(f"part{i:03d}", node_id, 0)
        graph.connect(node_id, "reduce", i)
    graph.set_exit("reduce")
    return graph


def diamond(name: str, split_op: str, left_op: str, right_op: str,
            join_op: str, entry_name: str = "x") -> CondensedGraph:
    """The classic diamond: split feeding two branches that re-join."""
    graph = CondensedGraph(name)
    graph.add_node("split", operator=split_op, arity=1)
    graph.add_node("left", operator=left_op, arity=1)
    graph.add_node("right", operator=right_op, arity=1)
    graph.add_node("join", operator=join_op, arity=2)
    graph.entry(entry_name, "split", 0)
    graph.connect("split", "left", 0)
    graph.connect("split", "right", 0)
    graph.connect("left", "join", 0)
    graph.connect("right", "join", 1)
    graph.set_exit("join")
    return graph
